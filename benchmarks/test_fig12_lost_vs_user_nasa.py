"""Figure 12 — total work lost vs user threshold at a = 1, NASA log.

Paper shape: as Figure 11 on the NASA log — a steep decline with U, an
order of magnitude below SDSC in absolute terms.
"""

from __future__ import annotations

from _support import show, time_representative_point


def test_figure_12(benchmark, catalog, nasa_context):
    figure = catalog.figure(12)
    show(figure)

    series = figure.series[0]
    # Falls with U (or is already ~zero throughout on a light load).
    assert series.ys[-1] <= series.ys[0] + 1e-9
    assert min(series.ys) >= 0.0

    time_representative_point(benchmark, nasa_context, accuracy=1.0, user=0.6)
