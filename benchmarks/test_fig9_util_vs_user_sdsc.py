"""Figure 9 — average utilization vs user threshold at a = 1, SDSC log.

Paper shape: utilization improves as users extend deadlines (≈0.68 → 0.72
in the paper): avoided failures save more capacity than the extra waiting
costs, because the vacated slots are backfilled by later arrivals.
"""

from __future__ import annotations

from _support import show, time_representative_point


def test_figure_9(benchmark, catalog, sdsc_context):
    figure = catalog.figure(9)
    show(figure)

    series = figure.series[0]
    # Risk-averse users do not cost utilization overall.
    assert series.ys[-1] >= series.ys[0] - 0.01
    assert all(0.2 <= y <= 0.95 for y in series.ys)

    time_representative_point(benchmark, sdsc_context, accuracy=1.0, user=0.3)
