"""Figure 8 — QoS vs user threshold at a = 1, SDSC and NASA logs.

Paper shape: QoS increases with U — "the higher the probability of success
required by the users, the better the system is able to meet promised
deadlines" — reaching (nearly) 1 at U = 1 with the idealised predictor.
"""

from __future__ import annotations

from _support import broadly_non_decreasing, show, time_representative_point


def test_figure_8(benchmark, catalog, sdsc_context):
    figure = catalog.figure(8)
    show(figure)

    for label in ("SDSC", "NASA"):
        series = figure.series_by_label(label)
        assert broadly_non_decreasing(series.ys, slack=0.05), label
        assert series.ys[-1] >= series.ys[0] - 1e-9, label
        # Perfect prediction + fully risk-averse users: promises all kept.
        assert series.ys[-1] >= 0.98, label

    time_representative_point(benchmark, sdsc_context, accuracy=1.0, user=1.0)
