"""Ablation — the price of promises: conservative vs EASY backfilling.

The paper's negotiation requires conservative backfilling (a booking per
job is what makes a deadline quotable).  EASY backfilling — one reservation
for the queue head, aggressive backfill behind it — is the classical
no-promises discipline.  This bench measures what the guarantee machinery
costs in responsiveness and utilization on the same workload and failure
trace (prediction off in both, periodic checkpointing in both, so the
*only* difference is the discipline).
"""

from __future__ import annotations

from _support import time_representative_point
from repro.scheduling.easy import EasyConfig, simulate_easy


def test_scheduler_discipline(benchmark, sdsc_context):
    setup = sdsc_context.setup
    conservative = sdsc_context.run_point(0.0, 0.5, checkpoint_policy="periodic")
    easy = simulate_easy(
        EasyConfig(
            node_count=setup.node_count,
            downtime=setup.downtime,
            checkpoint_overhead=setup.checkpoint_overhead,
            checkpoint_interval=setup.checkpoint_interval,
            checkpointing=True,
        ),
        sdsc_context.log,
        sdsc_context.failures,
    )

    print()
    print(f"{'discipline':>14}  {'util':>7}  {'mean wait (s)':>14}  "
          f"{'lost (node-s)':>14}  {'completed':>9}")
    for name, m in (("conservative", conservative), ("easy", easy)):
        print(
            f"{name:>14}  {m.utilization:7.4f}  {m.mean_wait:14.0f}  "
            f"{m.lost_work:14.3e}  {m.completed_jobs:9d}"
        )

    assert easy.completed_jobs == conservative.completed_jobs
    # EASY's flexibility buys responsiveness; promises cost waiting time.
    assert easy.mean_wait <= conservative.mean_wait * 1.1 + 60.0
    # Utilization should be in the same band (EASY usually a touch higher).
    assert easy.utilization >= conservative.utilization - 0.03

    time_representative_point(benchmark, sdsc_context, accuracy=0.0, user=0.5)
