"""Ablation — allocation-shape constraints (flat vs ring vs mesh).

The paper evaluates on a flat (all-to-all) cluster and notes that odd job
sizes drive "temporal fragmentation".  Machines with contiguity
constraints fragment harder: the ring needs contiguous runs, the 2-D mesh
needs rectangles (and wastes nodes to internal fragmentation on awkward
sizes).  This bench quantifies the queueing cost of shape constraints on
the odd-sized SDSC mix.
"""

from __future__ import annotations

from _support import time_representative_point

ACCURACY = 0.5
USER = 0.5


def test_topology_ablation(benchmark, sdsc_context):
    rows = []
    for topology in ("flat", "ring", "mesh"):
        metrics = sdsc_context.run_point(ACCURACY, USER, topology=topology)
        rows.append((topology, metrics))

    print()
    print(f"{'topology':>8}  {'util':>7}  {'mean wait (s)':>14}  {'qos':>7}")
    for name, m in rows:
        print(f"{name:>8}  {m.utilization:7.4f}  {m.mean_wait:14.0f}  {m.qos:7.4f}")

    flat = rows[0][1]
    ring = rows[1][1]
    mesh = rows[2][1]
    # Everything completes under every topology.
    assert flat.completed_jobs == ring.completed_jobs == mesh.completed_jobs
    # Shape constraints can only hurt responsiveness: flat waits are the
    # floor (generous tolerance — constrained placement occasionally gets
    # lucky with failure avoidance).
    assert flat.mean_wait <= min(ring.mean_wait, mesh.mean_wait) * 1.15 + 120.0

    time_representative_point(benchmark, sdsc_context, accuracy=ACCURACY, user=USER)
