"""Figure 11 — total work lost vs user threshold at a = 1, SDSC log.

Paper shape: lost work falls steeply as U rises (≈2.3e7 → ≈0.25e7
node-seconds in the paper — the "9 times less work lost" users): attentive
users steer their jobs off partitions with predicted failures.
"""

from __future__ import annotations

from _support import endpoint_ratio, show, time_representative_point


def test_figure_11(benchmark, catalog, sdsc_context):
    figure = catalog.figure(11)
    show(figure)

    series = figure.series[0]
    assert endpoint_ratio(series) >= 2.0
    assert series.ys[-1] <= min(series.ys) + 1e-9 or series.ys[-1] <= series.ys[0]

    time_representative_point(benchmark, sdsc_context, accuracy=1.0, user=0.6)
