"""Sensitivity — the checkpoint interval I the paper fixes at 3600 s.

The paper's companion study (periodic checkpointing, IPDPS'05 workshop)
motivates the choice of I: too small burns overhead, too large loses more
work per failure.  This bench sweeps I under the *periodic* policy (where
the trade-off is raw) and under the *cooperative* policy (which should
flatten it — mis-tuned intervals matter less when low-risk checkpoints are
skipped).
"""

from __future__ import annotations

from _support import time_representative_point
from repro.experiments.sensitivity import sweep_checkpoint_interval

INTERVALS = [900.0, 1800.0, 3600.0, 7200.0, 14400.0]
ACCURACY = 0.5
USER = 0.5


def test_checkpoint_interval_sensitivity(benchmark, sdsc_context):
    periodic = sweep_checkpoint_interval(
        sdsc_context, INTERVALS, ACCURACY, USER, checkpoint_policy="periodic"
    )
    cooperative = sweep_checkpoint_interval(
        sdsc_context, INTERVALS, ACCURACY, USER, checkpoint_policy="cooperative"
    )

    print()
    print(f"{'I (s)':>7}  {'policy':>12}  {'util':>7}  {'lost (node-s)':>14}  "
          f"{'ckpt overhead (s)':>18}")
    for series, name in ((periodic, "periodic"), (cooperative, "cooperative")):
        for point in series:
            m = point.metrics
            print(
                f"{point.value:7.0f}  {name:>12}  {m.utilization:7.4f}  "
                f"{m.lost_work:14.3e}  {m.checkpoint_overhead:18.0f}"
            )

    # Periodic: overhead falls monotonically as I grows...
    overheads = [p.metrics.checkpoint_overhead for p in periodic]
    assert all(a >= b for a, b in zip(overheads, overheads[1:]))
    # ...while the per-failure exposure (lost work) trends up.
    assert periodic[-1].metrics.lost_work >= periodic[0].metrics.lost_work * 0.8
    # Cooperative pays far less overhead at every interval.
    for c, p in zip(cooperative, periodic):
        assert c.metrics.checkpoint_overhead <= p.metrics.checkpoint_overhead

    # Cooperative flattens the interval sensitivity: utilization spread
    # across intervals is no larger than periodic's (with slack for noise).
    def spread(series):
        values = [p.metrics.utilization for p in series]
        return max(values) - min(values)

    assert spread(cooperative) <= spread(periodic) + 0.02

    time_representative_point(benchmark, sdsc_context, accuracy=ACCURACY, user=USER)
