"""Table 2 — the simulation parameters the evaluation fixes."""

from __future__ import annotations

from repro.core.system import SystemConfig
from repro.experiments.reporting import format_pairs
from repro.experiments.tables import table_2


def test_table2(benchmark):
    """Regenerate Table 2 and check it matches the defaults the system
    actually simulates with."""
    pairs = benchmark.pedantic(table_2, rounds=1, iterations=1)
    print()
    print(format_pairs("Table 2: Simulation parameters", pairs))

    values = dict(pairs)
    config = SystemConfig()
    assert int(values["N (nodes)"]) == config.node_count == 128
    assert float(values["C (s)"]) == config.checkpoint_overhead == 720.0
    assert float(values["I (s)"]) == config.checkpoint_interval == 3600.0
    assert float(values["downtime (s)"]) == config.downtime == 120.0
    assert values["a"] == "[0, 1]"
    assert values["U"] == "[0, 1]"
