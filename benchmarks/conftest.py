"""Shared fixtures for the figure/table regeneration benchmarks.

All benchmarks share one :class:`FigureCatalog` per session, so sweep
points computed for one figure are reused by every other figure that needs
them (the QoS/utilization/lost-work figures share their underlying 33-run
accuracy grid, for example).

Size knobs (see ``repro.experiments.config``):

* default — reduced logs (``BENCH_JOB_COUNT`` jobs) for minute-scale runs;
* ``REPRO_FULL=1`` — paper-size 10,000-job logs;
* ``REPRO_BENCH_JOBS=n`` / ``REPRO_SEED=n`` — explicit overrides.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import bench_setup
from repro.experiments.figures import FigureCatalog
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="session")
def catalog() -> FigureCatalog:
    """One memoising catalog for the whole benchmark session."""
    return FigureCatalog()


@pytest.fixture(scope="session")
def sdsc_context(catalog: FigureCatalog) -> ExperimentContext:
    return catalog.context("sdsc")


@pytest.fixture(scope="session")
def nasa_context(catalog: FigureCatalog) -> ExperimentContext:
    return catalog.context("nasa")
