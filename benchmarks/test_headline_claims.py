"""The abstract's headline claims: prediction buys QoS, utilization, and a
near-order-of-magnitude lost-work reduction.

Paper numbers (SDSC, attentive users): QoS and utilization improvements of
up to ~6 percentage points and an ~89% (factor ≈9) lost-work reduction
between no prediction (a = 0) and perfect prediction (a = 1).
"""

from __future__ import annotations

from _support import time_representative_point
from repro.experiments.reporting import format_headline


def test_headline_claims(benchmark, catalog, sdsc_context):
    comparison = catalog.headline_comparison("sdsc")
    print()
    print(format_headline(comparison))

    qos_base, qos_perfect = comparison["qos"]
    util_base, util_perfect = comparison["utilization"]
    lost_base, lost_perfect = comparison["lost_work"]

    # QoS improves with prediction; utilization does not degrade.
    assert qos_perfect > qos_base
    assert util_perfect >= util_base - 0.005
    # The lost-work collapse: the paper reports ~9x; we require at least
    # a factor 3 and report the measured factor in EXPERIMENTS.md.
    assert lost_base >= 3.0 * max(lost_perfect, 1.0)

    time_representative_point(benchmark, sdsc_context, accuracy=0.0, user=0.9)
