"""Headline claims under replication — beyond the paper's single trace.

The paper runs one trace per point and acknowledges the resulting
jaggedness.  Here the no-prediction vs perfect-prediction comparison is
replicated across three independent synthetic draws (fresh workload +
failure trace + detectability per seed) and the headline directions are
asserted on the replicated means, with 95% intervals printed.
"""

from __future__ import annotations

from _support import time_representative_point
from repro.experiments.config import bench_job_count
from repro.experiments.replication import ReplicatedExperiment

SEEDS = [101, 202, 303]
USER = 0.9


def test_replicated_headline(benchmark, sdsc_context):
    experiment = ReplicatedExperiment(
        "sdsc", job_count=min(bench_job_count(), 1000), seeds=SEEDS
    )
    baseline = experiment.run_point(0.0, USER)
    perfect = experiment.run_point(1.0, USER)

    print()
    print(f"{'metric':>12}  {'a=0 mean±95%':>22}  {'a=1 mean±95%':>22}")
    for metric in ("qos", "utilization", "lost_work"):
        b, p = baseline[metric], perfect[metric]
        print(
            f"{metric:>12}  {b.mean:12.4g} ±{b.ci95_halfwidth:8.3g}  "
            f"{p.mean:12.4g} ±{p.ci95_halfwidth:8.3g}"
        )

    # Directions must hold on the replicated means.
    assert perfect["qos"].mean > baseline["qos"].mean
    assert perfect["utilization"].mean >= baseline["utilization"].mean - 0.005
    assert perfect["lost_work"].mean < baseline["lost_work"].mean / 3.0
    # Every individual replication agrees on the QoS direction.
    for b, p in zip(baseline["qos"].values, perfect["qos"].values):
        assert p >= b - 1e-9

    time_representative_point(benchmark, sdsc_context, accuracy=1.0, user=USER)
