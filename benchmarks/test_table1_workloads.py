"""Table 1 — job-log characteristics of the NASA and SDSC logs."""

from __future__ import annotations

from repro.experiments.config import bench_job_count, bench_seed
from repro.experiments.reporting import format_table1
from repro.experiments.tables import PAPER_TABLE1, table_1


def test_table1(benchmark):
    """Regenerate Table 1 and check the marginals against the paper."""
    seed = bench_seed()
    jobs = bench_job_count()

    rows = benchmark.pedantic(
        lambda: table_1(seed=seed, job_count=jobs), rounds=1, iterations=1
    )
    print()
    print(format_table1(rows))

    by_name = {row.log_name.lower(): row for row in rows}
    for name, reference in PAPER_TABLE1.items():
        row = by_name[name]
        # Means within 20% of the paper (synthetic logs, finite samples).
        assert abs(row.avg_nodes - reference["avg_nodes"]) <= 0.2 * reference[
            "avg_nodes"
        ], f"{name}: avg size {row.avg_nodes} too far from {reference['avg_nodes']}"
        assert abs(row.avg_runtime - reference["avg_runtime"]) <= 0.2 * reference[
            "avg_runtime"
        ], f"{name}: avg runtime {row.avg_runtime} off {reference['avg_runtime']}"
        # Max runtime bounded by the paper's machine limit.
        assert row.max_runtime_hours <= reference["max_runtime_hours"] + 1e-6

    # The SDSC log is the long-job workload: order-of-magnitude longer jobs.
    assert by_name["sdsc"].avg_runtime > 10 * by_name["nasa"].avg_runtime
