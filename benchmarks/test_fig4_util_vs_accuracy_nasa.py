"""Figure 4 — average utilization vs prediction accuracy, NASA log.

Paper shape: a gentler version of Figure 3 (lighter load, smaller jobs);
utilization does not degrade as prediction improves.
"""

from __future__ import annotations

from _support import endpoint_gain, show, time_representative_point


def test_figure_4(benchmark, catalog, nasa_context):
    figure = catalog.figure(4)
    show(figure)

    # NASA's utilization movements are small in the paper (≈0.55 → 0.59)
    # and on reduced logs the drain tail dominates; require only that
    # prediction does not meaningfully degrade utilization.
    high_u = figure.series_by_label("U=0.9")
    assert endpoint_gain(high_u) >= -0.02
    for series in figure.series:
        assert all(0.2 <= y <= 0.95 for y in series.ys), series

    time_representative_point(benchmark, nasa_context, accuracy=0.8, user=0.5)
