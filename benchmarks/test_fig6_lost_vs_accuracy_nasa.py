"""Figure 6 — total work lost vs prediction accuracy, NASA log.

Paper shape: same falling trend as Figure 5 but roughly an order of
magnitude smaller in absolute terms ("the SDSC log typically resulted in 10
times the amount of lost work as the NASA log"); even low accuracy reduces
lost work.
"""

from __future__ import annotations

from _support import endpoint_ratio, show, time_representative_point


def test_figure_6(benchmark, catalog, nasa_context):
    figure_nasa = catalog.figure(6)
    show(figure_nasa)
    figure_sdsc = catalog.figure(5)

    high_u = figure_nasa.series_by_label("U=0.9")
    assert endpoint_ratio(high_u) >= 2.0 or high_u.ys[0] == 0.0

    # Cross-log claim: SDSC loses roughly an order of magnitude more work.
    sdsc_baseline = figure_sdsc.series_by_label("U=0.1").ys[0]
    nasa_baseline = figure_nasa.series_by_label("U=0.1").ys[0]
    assert sdsc_baseline > 4.0 * nasa_baseline

    time_representative_point(benchmark, nasa_context, accuracy=0.2, user=0.1)
