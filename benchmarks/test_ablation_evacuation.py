"""Ablation (extension) — proactive evacuation of predicted-doomed jobs.

Beyond the paper: when a failure is predicted on a running job's partition
right after a checkpoint completes (zero work at risk), move the job to a
strictly safer slot instead of riding the failure out.  With impatient
users (U = 0.1) — where the paper shows prediction value largely negated —
evacuation recovers much of it: lost work falls without harming QoS.
"""

from __future__ import annotations

from _support import time_representative_point

ACCURACY = 0.8
USER = 0.1  # impatient users accept risky slots; evacuation saves them


def test_evacuation_ablation(benchmark, sdsc_context):
    base = sdsc_context.run_point(ACCURACY, USER, proactive_evacuation=False)
    evac = sdsc_context.run_point(ACCURACY, USER, proactive_evacuation=True)

    print()
    print(f"{'mode':>12}  {'qos':>7}  {'util':>7}  {'lost (node-s)':>14}  "
          f"{'hits':>5}  {'evacuations':>11}")
    for name, m in (("ride-out", base), ("evacuate", evac)):
        print(
            f"{name:>12}  {m.qos:7.4f}  {m.utilization:7.4f}  "
            f"{m.lost_work:14.3e}  {m.failures_hitting_jobs:5d}  "
            f"{m.evacuations:11d}"
        )

    assert evac.evacuations > 0, "expected some evacuations at a=0.8"
    # Evacuation dodges hits and their losses without degrading QoS.
    assert evac.failures_hitting_jobs <= base.failures_hitting_jobs
    assert evac.lost_work <= base.lost_work * 1.05
    assert evac.qos >= base.qos - 0.02

    time_representative_point(benchmark, sdsc_context, accuracy=ACCURACY, user=USER)
