"""Figure 5 — total work lost vs prediction accuracy, SDSC log.

Paper shape: lost work is the most accuracy-sensitive metric, falling
roughly an order of magnitude from a = 0 to a = 1 (4.5e7 → 0.5e7
node-seconds in the paper, a factor of ~9); higher-U users lose less at
every accuracy.
"""

from __future__ import annotations

from _support import endpoint_ratio, show, time_representative_point


def test_figure_5(benchmark, catalog, sdsc_context):
    figure = catalog.figure(5)
    show(figure)

    high_u = figure.series_by_label("U=0.9")
    low_u = figure.series_by_label("U=0.1")
    # Strong reduction across the sweep for every user strategy.
    assert endpoint_ratio(high_u) >= 3.0
    assert endpoint_ratio(low_u) >= 3.0
    # Lost work ends far below where it starts; the maximum sits at or
    # near the no-prediction end.
    assert high_u.ys[-1] < min(high_u.ys[0], max(high_u.ys)) + 1e-9
    # Risk-averse users lose no more than risk-ignoring users at a = 1.
    assert high_u.ys[-1] <= low_u.ys[-1] + 1e-9

    time_representative_point(benchmark, sdsc_context, accuracy=0.2, user=0.1)
