"""Figure 7 — QoS vs user threshold at a = 0.5, SDSC log.

Paper shape: a plateau where the user parameter never binds, because the
predictor never reports a failure probability above its accuracy cap.

Interpretation note (DESIGN.md note 1): implementing Equation 3 literally
(accept when ``1 − p_f ≥ U`` with ``p_f ≤ a``) puts the plateau at
``U ≤ 1 − a`` — the low-U half at a = 0.5 — rather than the paper's
worded ``a < U`` region; the *existence and width* of the plateau is the
reproduced phenomenon.
"""

from __future__ import annotations

from _support import plateau_width, show, time_representative_point


def test_figure_7(benchmark, catalog, sdsc_context):
    figure = catalog.figure(7)
    show(figure)

    series = figure.series[0]
    # U is swept 0..1 in 0.1 steps; with a = 0.5 the first six points
    # (U <= 0.5 = 1 - a) cannot bind and must be exactly constant.
    assert plateau_width(series.ys) >= 6
    # The varying region is jagged — exactly as the paper's Figure 7 is
    # (its own curve dips non-monotonically within a ~0.04 band): half the
    # failures are invisible at a = 0.5, so demanding higher promises
    # reshuffles rather than reliably improves outcomes.  Assert the band,
    # not monotonicity.
    assert all(abs(y - series.ys[0]) <= 0.05 for y in series.ys)

    time_representative_point(benchmark, sdsc_context, accuracy=0.5, user=0.7)
