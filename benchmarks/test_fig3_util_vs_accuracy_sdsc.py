"""Figure 3 — average utilization vs prediction accuracy, SDSC log.

Paper shape: utilization *increases* with accuracy (the guarantees do not
come at utilization's expense — Section 5.1), by a few points across the
sweep for attentive users.
"""

from __future__ import annotations

from _support import endpoint_gain, show, time_representative_point


def test_figure_3(benchmark, catalog, sdsc_context):
    figure = catalog.figure(3)
    show(figure)

    high_u = figure.series_by_label("U=0.9")
    # Prediction never costs utilization at the endpoint, and typically
    # buys a few points (the paper reports up to ~6%).
    assert endpoint_gain(high_u) >= -0.005
    assert high_u.ys[-1] >= max(high_u.ys) - 0.05
    # All series stay in a plausible utilization band for this load.
    for series in figure.series:
        assert all(0.2 <= y <= 0.95 for y in series.ys), series

    time_representative_point(benchmark, sdsc_context, accuracy=0.8, user=0.5)
