"""Figure 1 — QoS vs prediction accuracy, SDSC log, U in {0.1, 0.5, 0.9}.

Paper shape: QoS in the ~0.9-1 band; for U = 0.9 QoS rises with accuracy
("nondecreasing as accuracy increases") and approaches 1 at perfect
prediction; SDSC shows benefit even at low accuracy.
"""

from __future__ import annotations

from _support import broadly_non_decreasing, endpoint_gain, show, time_representative_point


def test_figure_1(benchmark, catalog, sdsc_context):
    figure = catalog.figure(1)
    show(figure)

    high_u = figure.series_by_label("U=0.9")
    # Rising trend (tolerating trace jaggedness) and a real endpoint gain.
    assert broadly_non_decreasing(high_u.ys, slack=0.05)
    assert endpoint_gain(high_u) > 0.0
    # Perfect prediction with risk-averse users keeps nearly every promise.
    assert high_u.ys[-1] >= 0.95
    # Risk-averse users never fare worse than risk-ignoring ones at a = 1.
    low_u = figure.series_by_label("U=0.1")
    assert high_u.ys[-1] >= low_u.ys[-1] - 1e-9

    time_representative_point(benchmark, sdsc_context, accuracy=0.5, user=0.9)
