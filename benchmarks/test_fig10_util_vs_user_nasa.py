"""Figure 10 — average utilization vs user threshold at a = 1, NASA log.

Paper shape: as Figure 9 but on the lighter NASA load; smaller absolute
movement, no degradation as users become risk-averse.
"""

from __future__ import annotations

from _support import show, time_representative_point


def test_figure_10(benchmark, catalog, nasa_context):
    figure = catalog.figure(10)
    show(figure)

    series = figure.series[0]
    assert series.ys[-1] >= series.ys[0] - 0.02
    assert all(0.2 <= y <= 0.95 for y in series.ys)

    time_representative_point(benchmark, nasa_context, accuracy=1.0, user=0.3)
