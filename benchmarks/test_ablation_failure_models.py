"""Ablation — trace-style bursty failures vs smooth renewal models.

Section 5.1 justifies trace-driven evaluation: "typical statistical failure
models are poor indicators of actual system behavior".  Holding the overall
failure *rate* fixed, we swap the bursty trace for exponential and Weibull
renewal processes and show (a) the burstiness statistic really differs and
(b) system outcomes move — the smooth models understate the clustering that
prediction and placement exploit.
"""

from __future__ import annotations

from _support import time_representative_point
from repro.experiments.runner import ExperimentContext, estimate_horizon
from repro.failures.models import (
    RenewalSpec,
    burstiness_coefficient,
    generate_renewal_trace,
)

ACCURACY = 0.7
USER = 0.5


def test_failure_model_ablation(benchmark, sdsc_context):
    setup = sdsc_context.setup
    horizon = estimate_horizon(sdsc_context.log, setup.node_count)
    exponential = generate_renewal_trace(
        horizon, RenewalSpec(nodes=setup.node_count, shape=1.0), seed=setup.seed
    )
    weibull = generate_renewal_trace(
        horizon, RenewalSpec(nodes=setup.node_count, shape=0.6), seed=setup.seed
    )

    cv_trace = burstiness_coefficient(sdsc_context.failures)
    cv_exp = burstiness_coefficient(exponential)
    print()
    print(f"burstiness CV: trace={cv_trace:.2f} exponential={cv_exp:.2f}")
    # The bursty trace is over-dispersed; the Poisson model is not.
    assert cv_trace > 1.05
    assert cv_exp < 1.25

    rows = []
    for name, trace in (
        ("bursty-trace", sdsc_context.failures),
        ("exponential", exponential),
        ("weibull-0.6", weibull),
    ):
        ctx = ExperimentContext(setup=setup, log=sdsc_context.log, failures=trace)
        metrics = ctx.run_point(ACCURACY, USER)
        rows.append((name, metrics))

    print(f"{'failure model':>14}  {'qos':>7}  {'util':>7}  {'lost (node-s)':>14}  "
          f"{'hits':>5}")
    for name, m in rows:
        print(
            f"{name:>14}  {m.qos:7.4f}  {m.utilization:7.4f}  "
            f"{m.lost_work:14.3e}  {m.failures_hitting_jobs:5d}"
        )

    # The distribution shape matters: outcomes under the smooth model are
    # measurably different from the bursty trace at identical rates.
    bursty = rows[0][1]
    smooth = rows[1][1]
    moved = (
        abs(bursty.lost_work - smooth.lost_work)
        > 0.1 * max(bursty.lost_work, smooth.lost_work, 1.0)
        or abs(bursty.qos - smooth.qos) > 0.005
        or bursty.failures_hitting_jobs != smooth.failures_hitting_jobs
    )
    assert moved, "renewal and bursty traces produced indistinguishable outcomes"

    time_representative_point(benchmark, sdsc_context, accuracy=ACCURACY, user=USER)
