"""Big-cluster replay driver for the ``scale`` BENCH scenario.

Runs ONE configuration — ``(nodes, jobs, ledger impl, event-loop
backend)`` — as a standalone process and prints a JSON record with
events/sec, peak RSS, and a trajectory checksum.  One process per
configuration is the point: ``ru_maxrss`` is a high-water mark for the
whole process, so the only way to attribute peak memory to a
configuration is to give it a process of its own
(``benchmarks/perf/ledger_bench.py::bench_scale`` orchestrates the
matrix).

The replay is a lean conservative-backfilling loop, not the full QoS
system: jobs stream in from :func:`repro.workload.synthetic.stream_jobs`
(never materialised as a list), each arrival books the earliest
first-fit slot (``find_slot`` + ``reserve``) and schedules its release,
and each finish releases the booking.  That exercises exactly the
substrate this scenario watches — the event queue, the skyline profile,
the free-node queries, and booking mutation — with nothing else on the
profile.

The trajectory checksum hashes every booking (job id, exact start, full
node membership), so two configurations agree iff they booked the exact
same schedule.  Seed-vs-current and heap-vs-calendar identity checks in
``bench_scale`` are byte-equality on this digest.

Usage (normally via bench_scale, but hand-runnable):

    PYTHONPATH=src python benchmarks/perf/scale_bench.py \
        --nodes 10000 --jobs 2000 --impl current --event-loop calendar
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import sys
import time
from typing import Dict, List, Optional

from repro.cluster.reference import SeedReservationLedger
from repro.cluster.reservations import ReservationLedger
from repro.sim.engine import EventLoop
from repro.sim.events import EventKind
from repro.workload.synthetic import BigClusterSpec, stream_jobs

#: Ledger implementations selectable via ``--impl``.
IMPLS = ("current", "seed")


def peak_rss_bytes() -> int:
    """This process's high-water resident set size, in bytes.

    Linux reports ``ru_maxrss`` in KiB (macOS in bytes; this harness
    targets the Linux CI runners, where the KiB reading applies).
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_config(
    nodes: int,
    jobs: int,
    impl: str = "current",
    event_loop: str = "calendar",
    seed: int = 20050628,
    offered_load: float = 0.7,
) -> Dict[str, object]:
    """Replay ``jobs`` streamed arrivals through one substrate config.

    Returns a JSON-ready dict with throughput (``events_per_s``), the
    trajectory ``checksum``, peak booking depth, and — when called as the
    only work in a process — a meaningful ``peak_rss_bytes``.
    """
    if impl not in IMPLS:
        raise ValueError(f"impl must be one of {IMPLS}, got {impl!r}")
    if impl == "current":
        ledger = ReservationLedger(nodes)
    else:
        ledger = SeedReservationLedger(nodes)
    spec = BigClusterSpec(nodes=nodes, offered_load=offered_load)
    stream = stream_jobs(spec, seed=seed, job_count=jobs)
    loop = EventLoop(queue=event_loop)
    digest = hashlib.sha256()
    state = {"peak_bookings": 0}

    def on_arrival(event) -> None:
        job = event.payload["job"]
        duration = job.runtime
        start, chosen = ledger.find_slot(job.size, duration, loop.now)
        ledger.reserve(job.job_id, chosen, start, start + duration)
        if len(ledger) > state["peak_bookings"]:
            state["peak_bookings"] = len(ledger)
        digest.update(
            f"{job.job_id}:{start!r}:{','.join(str(n) for n in chosen)};".encode()
        )
        loop.schedule(start + duration, EventKind.FINISH, job_id=job.job_id)
        nxt = next(stream, None)
        if nxt is not None:
            loop.schedule(nxt.arrival_time, EventKind.ARRIVAL, job=nxt)

    def on_finish(event) -> None:
        ledger.release(event.payload["job_id"])

    loop.register(EventKind.ARRIVAL, on_arrival)
    loop.register(EventKind.FINISH, on_finish)
    first = next(stream, None)
    if first is not None:
        loop.schedule(first.arrival_time, EventKind.ARRIVAL, job=first)

    t0 = time.perf_counter()
    loop.run()
    elapsed = time.perf_counter() - t0

    events = loop.processed_events
    return {
        "nodes": nodes,
        "jobs": jobs,
        "impl": impl,
        "event_loop": event_loop,
        "seed": seed,
        "offered_load": offered_load,
        "events": events,
        "elapsed_s": round(elapsed, 6),
        "events_per_s": round(events / elapsed, 3) if elapsed > 0 else float("inf"),
        "peak_bookings": state["peak_bookings"],
        "checksum": digest.hexdigest(),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, required=True)
    parser.add_argument("--jobs", type=int, required=True)
    parser.add_argument("--impl", choices=IMPLS, default="current")
    parser.add_argument(
        "--event-loop", choices=["heap", "calendar"], default="calendar",
        dest="event_loop",
    )
    parser.add_argument("--seed", type=int, default=20050628)
    parser.add_argument("--offered-load", type=float, default=0.7)
    args = parser.parse_args(argv)
    record = run_config(
        nodes=args.nodes,
        jobs=args.jobs,
        impl=args.impl,
        event_loop=args.event_loop,
        seed=args.seed,
        offered_load=args.offered_load,
    )
    json.dump(record, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
