"""Perf regression gates for the incremental free-time profile.

Marked ``perf`` and living outside the tier-1 ``testpaths``, so they run
only when invoked explicitly:

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -q

The thresholds are deliberately below the speedups we actually measure
(BENCH_ledger.json records ~an order of magnitude on the deep-queue
scenario) so the gate trips on real regressions, not timer noise.
"""

from __future__ import annotations

import pytest

from ledger_bench import PRESETS, bench_find_slot, bench_negotiation

SEED = 20050628


@pytest.mark.perf
def test_deep_queue_find_slot_at_least_3x_faster_than_seed():
    result = bench_find_slot(PRESETS["default"], seed=SEED, repeats=3)
    assert result["answers_identical"]
    assert result["speedup"] >= 3.0, (
        f"deep-queue find_slot speedup degraded to {result['speedup']:.2f}x "
        f"(current {result['current']['median_s']:.4f}s vs seed "
        f"{result['seed']['median_s']:.4f}s)"
    )


@pytest.mark.perf
def test_negotiation_dialogue_not_slower_than_seed():
    result = bench_negotiation(PRESETS["default"], seed=SEED, repeats=3)
    assert result["answers_identical"]
    assert result["speedup"] >= 1.0, (
        f"negotiation dialogue slower than the seed ledger "
        f"({result['speedup']:.2f}x)"
    )
