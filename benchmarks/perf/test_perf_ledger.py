"""Perf regression gates for the incremental free-time profile.

Marked ``perf`` and living outside the tier-1 ``testpaths``, so they run
only when invoked explicitly:

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -q

The thresholds are deliberately below the speedups we actually measure
(BENCH_ledger.json records ~an order of magnitude on the deep-queue
scenario) so the gate trips on real regressions, not timer noise.
"""

from __future__ import annotations

import pytest

from ledger_bench import (
    PRESETS,
    bench_find_slot,
    bench_negotiation,
    bench_negotiation_fastpath,
    bench_scale,
)

SEED = 20050628


@pytest.mark.perf
def test_deep_queue_find_slot_at_least_3x_faster_than_seed():
    result = bench_find_slot(PRESETS["default"], seed=SEED, repeats=3)
    assert result["answers_identical"]
    assert result["speedup"] >= 3.0, (
        f"deep-queue find_slot speedup degraded to {result['speedup']:.2f}x "
        f"(current {result['current']['median_s']:.4f}s vs seed "
        f"{result['seed']['median_s']:.4f}s)"
    )


@pytest.mark.perf
def test_negotiation_dialogue_not_slower_than_seed():
    result = bench_negotiation(PRESETS["default"], seed=SEED, repeats=3)
    assert result["answers_identical"]
    assert result["speedup"] >= 1.0, (
        f"negotiation dialogue slower than the seed ledger "
        f"({result['speedup']:.2f}x)"
    )


@pytest.mark.perf
def test_analytical_mode_kills_the_probe_loop_at_least_10x():
    # Count-based, so deterministic for the seed: the smoke-scale version
    # of this gate also runs in tier-1 (tests/test_perf_smoke.py).
    result = bench_negotiation_fastpath(PRESETS["default"], seed=SEED, repeats=1)
    assert result["bookings_identical"]
    assert result["oracle_agrees"]
    assert result["probe_reduction"] >= 10.0, (
        f"probes per dialogue: {result['probes_per_dialogue']} "
        f"({result['probe_reduction']:.1f}x)"
    )
    assert result["query_reduction"] >= 10.0, (
        f"predictor queries per dialogue: "
        f"{result['predictor_queries_per_dialogue']}"
    )
    assert result["grid"]["query_reduction"] >= 10.0, (
        f"figures-grid predictor queries: {result['grid']['predictor_queries']}"
    )
    assert result["speedup"] >= 1.0, (
        f"analytical mode slower than probe mode ({result['speedup']:.2f}x)"
    )


@pytest.mark.perf
def test_scale_replay_at_least_10x_faster_than_seed_at_10k_nodes():
    result = bench_scale(PRESETS["default"], seed=SEED, repeats=3)
    assert result["checksums_identical"]
    speedup = result["speedup_vs_seed"]["10000"]
    assert speedup >= 10.0, (
        f"10k-node replay throughput vs seed degraded to {speedup:.1f}x "
        f"(acceptance gate is 10x)"
    )
    # Peak RSS must stay sub-linear in cluster width: 100x the nodes may
    # not cost 100x the memory (measured growth is ~1.5x — interpreter
    # baseline dominates and the ledger stores only live bookings).
    assert result["rss"]["rss_growth"] < result["rss"]["node_growth"] / 10.0, (
        f"peak RSS grew {result['rss']['rss_growth']:.1f}x over a "
        f"{result['rss']['node_growth']:.0f}x node-count increase"
    )
    # The NodeSet reserve fast path must actually skip normalisation work.
    assert result["reserve_normalization"]["speedup"] >= 1.2, (
        f"pre-normalised reserve no faster than list input: "
        f"{result['reserve_normalization']['speedup']:.2f}x"
    )
