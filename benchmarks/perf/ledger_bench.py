"""Ledger hot-path microbenchmarks (the ``BENCH_ledger.json`` harness).

Four scenarios bracket the hot paths from unit scale to the full
evaluation pipeline:

* ``find_slot_deep_queue`` — a deep conservative-backfilling queue (many
  live bookings) probed with a batch of ``find_slot`` queries, with zero
  mutations between probes; this isolates the profile-rebuild cost the
  incremental ledger removes, and is the scenario the ≥3× acceptance gate
  applies to.
* ``negotiation_dialogue`` — full submission dialogues (offer enumeration,
  capacity prefilter, per-node verification, booking) against a picky
  user, so queries and mutations interleave the way the simulator drives
  them.
* ``nasa_end_to_end`` — an end-to-end NASA-trace simulation point, the
  outermost number a future perf PR should watch.
* ``figures_grid`` — a figure-sized ``(a, U)`` sweep grid executed three
  ways: sequentially (``jobs=1``, the pre-parallel behaviour), through
  the process pool with a cold on-disk point cache (``--jobs 4``), and
  again against the warm cache; asserts all three produce bit-identical
  metrics and reports both speedups plus cache hit statistics.  The
  parallel speedup is hardware-bound (``params.cpu_count`` records what
  was available); the warm-cache speedup is not.
* ``negotiation_fastpath`` — picky near-full-cluster dialogues run in
  probe, analytical, and oracle negotiation modes.  Bookings must be
  bit-identical across all three; the scenario records probes per
  dialogue, predictor queries per dialogue, and the probe-vs-analytical
  wall time, plus a grid-level ``prediction.trace.queries`` comparison on
  the ``figures_grid`` points.  The ≥10× probe/query reduction gates in
  ``tests/test_perf_smoke.py`` apply here (count-based, so CI-noise-proof).
* ``scale`` — streamed big-cluster replays (1k/10k/100k nodes) through
  ``benchmarks/perf/scale_bench.py``, one subprocess per configuration so
  peak RSS is attributable.  Records events/sec per (node count, ledger
  implementation, event-loop backend), asserts trajectory-checksum
  identity across all configurations at each node count, reports the
  current-vs-seed throughput ratio the ≥10× acceptance gate applies to,
  and carries the ``reserve`` list-vs-NodeSet normalisation micro-bench.

The first three scenarios run on the optimised
:class:`~repro.cluster.reservations.ReservationLedger` *and* on the frozen
:class:`~repro.cluster.reference.SeedReservationLedger`, asserting along
the way that both return identical answers; timings are reported as the
median over ``--repeats`` runs.  Results go to ``BENCH_ledger.json`` so
the perf trajectory is diffable across PRs:

    PYTHONPATH=src python benchmarks/perf/run.py            # default scale
    PYTHONPATH=src python benchmarks/perf/run.py --smoke    # seconds, CI
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import repro
import repro.cluster.machine as machine_module
from repro.cluster.nodeset import NodeSet
from repro.cluster.reference import SeedReservationLedger
from repro.cluster.reservations import ReservationLedger
from repro.cluster.topology import FlatTopology
from repro.core.fastpath import AnalyticalEvaluator
from repro.core.negotiation import Negotiator
from repro.core.system import simulate
from repro.core.users import RiskThresholdUser
from repro.experiments.cache import PointCache
from repro.experiments.config import ExperimentSetup
from repro.experiments.runner import ExperimentContext
from repro.obs.registry import MetricsRegistry
from repro.prediction.trace import TracePredictor
from repro.scheduling.placement import fault_aware_scorer
from repro.failures.generator import FailureModelSpec, generate_failure_trace

#: Presets trade fidelity for wall clock; ``smoke`` exists so the tier-1
#: suite can exercise the harness end-to-end in a couple of seconds.
#: ``grid_jobs``/``grid_accuracies``/``grid_users``/``pool_jobs`` shape the
#: ``figures_grid`` scenario (log size, sweep axes, worker processes).
PRESETS: Dict[str, Dict] = {
    "default": dict(
        nodes=128, bookings=400, queries=150, dialogue_jobs=60, nasa_jobs=250,
        grid_jobs=150, grid_accuracies=11, grid_users=(0.1, 0.9), pool_jobs=4,
        fastpath_jobs=40,
        scale_node_counts=(1_000, 10_000, 100_000),
        scale_seed_node_counts=(1_000, 10_000),
        scale_jobs=2_000, scale_reserve_ops=2_000,
    ),
    "smoke": dict(
        nodes=32, bookings=40, queries=15, dialogue_jobs=8, nasa_jobs=0,
        grid_jobs=50, grid_accuracies=3, grid_users=(0.9,), pool_jobs=2,
        fastpath_jobs=12,
        scale_node_counts=(1_000,),
        scale_seed_node_counts=(1_000,),
        scale_jobs=200, scale_reserve_ops=200,
    ),
}

#: Schema 2 added the per-scenario ``obs`` block: counter totals from one
#: instrumented (non-timed) rerun, so a perf diff can tell *why* a number
#: moved — probe counts, cache hit rates, dialogue depths — not just that
#: it did.  Timed runs stay uninstrumented.  Schema 3 added the
#: ``figures_grid`` scenario (sequential vs process-pool vs warm-cache
#: sweep execution, with ``speedup_parallel``/``speedup_warm`` instead of
#: the current-vs-seed ``speedup``).  Schema 4 added the
#: ``negotiation_fastpath`` scenario (probe vs analytical vs oracle mode:
#: probes/queries per dialogue, ``probe_reduction``/``query_reduction``
#: ratios, and a grid-level predictor-query comparison under ``grid``).
#: Schema 5 added the ``scale`` scenario: big-cluster streaming replays in
#: per-config subprocesses (events/sec, isolated peak RSS, trajectory
#: checksums across ledger implementations and event-loop backends) plus
#: the ``reserve`` normalisation micro-benchmark (list vs NodeSet input).
SCHEMA_VERSION = 5


# ----------------------------------------------------------------------
# Scenario construction (deterministic: everything flows from `seed`)
# ----------------------------------------------------------------------
def build_deep_ledger(
    ledger_cls, nodes: int, bookings: int, seed: int, registry=None
):
    """A realistic deep queue: jobs packed by find_slot itself."""
    rng = random.Random(seed)
    # The frozen seed ledger predates the obs layer and keeps its
    # single-argument constructor; only the current class takes a registry.
    ledger = ledger_cls(nodes) if registry is None else ledger_cls(
        nodes, registry=registry
    )
    clock = 0.0
    for job_id in range(1, bookings + 1):
        size = rng.randint(1, max(1, nodes // 2))
        duration = rng.uniform(600.0, 6.0 * 3600.0)
        start, chosen = ledger.find_slot(size, duration, clock)
        ledger.reserve(job_id, chosen, start, start + duration)
        clock += rng.uniform(0.0, 120.0)
    return ledger


def make_queries(
    nodes: int, queries: int, horizon: float, seed: int
) -> List[Tuple[int, float, float]]:
    rng = random.Random(seed + 1)
    return [
        (
            rng.randint(1, max(1, nodes // 2)),
            rng.uniform(600.0, 6.0 * 3600.0),
            rng.uniform(0.0, horizon),
        )
        for _ in range(queries)
    ]


def _ledger_horizon(ledger) -> float:
    ends = [r.end for r in ledger.reservations()]
    return max(ends) if ends else 0.0


def run_find_slot_queries(ledger, queries) -> List[Tuple[float, List[int]]]:
    return [ledger.find_slot(size, dur, t0) for size, dur, t0 in queries]


def run_dialogues(
    ledger, nodes: int, jobs: int, seed: int, registry=None
) -> List[Tuple]:
    """Negotiate and book `jobs` submissions back to back."""
    rng = random.Random(seed + 2)
    horizon = 60.0 * 86400.0
    failures = generate_failure_trace(
        horizon, spec=FailureModelSpec(nodes=nodes), seed=seed
    )
    predictor = TracePredictor(failures, accuracy=0.7, seed=seed)
    user = RiskThresholdUser(0.9)
    negotiator = Negotiator(
        ledger, FlatTopology(nodes), predictor, scorer=None, registry=registry
    )
    outcomes = []
    clock = 0.0
    for job_id in range(10_000, 10_000 + jobs):
        size = rng.randint(1, max(1, nodes // 2))
        duration = rng.uniform(1800.0, 8.0 * 3600.0)
        outcome = negotiator.negotiate(job_id, size, duration, clock, user)
        outcomes.append(
            (outcome.start, outcome.nodes, outcome.reserved_end, outcome.offers_made)
        )
        clock += rng.uniform(0.0, 60.0)
    return outcomes


def run_nasa_point(jobs: int, seed: int, registry=None):
    """One end-to-end (a=0.7, U=0.5) NASA simulation point."""
    setup = ExperimentSetup(workload="nasa", job_count=jobs, seed=seed)
    context = ExperimentContext.prepare(setup)
    config = context.config(accuracy=0.7, user_threshold=0.5)
    return simulate(config, context.log, context.failures, registry=registry)


# ----------------------------------------------------------------------
# Timing machinery
# ----------------------------------------------------------------------
def _timed(fn: Callable[[], object], repeats: int) -> Tuple[List[float], object]:
    """Wall-clock samples for ``repeats`` runs plus the last result."""
    samples = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return samples, result


def _entry(samples: List[float]) -> Dict[str, object]:
    return {
        "median_s": statistics.median(samples),
        "samples_s": [round(s, 6) for s in samples],
    }


def _obs_counters(registry: MetricsRegistry) -> Dict[str, float]:
    """Counter totals from an instrumented rerun (never a timed run)."""
    return registry.snapshot()["counters"]


def bench_find_slot(params: Dict[str, int], seed: int, repeats: int) -> Dict:
    nodes, bookings, queries = params["nodes"], params["bookings"], params["queries"]
    current = build_deep_ledger(ReservationLedger, nodes, bookings, seed)
    baseline = build_deep_ledger(SeedReservationLedger, nodes, bookings, seed)
    if current.reservations() != baseline.reservations():
        raise AssertionError("optimised ledger packed the queue differently")
    batch = make_queries(nodes, queries, _ledger_horizon(current), seed)

    cur_samples, cur_answers = _timed(
        lambda: run_find_slot_queries(current, batch), repeats
    )
    seed_samples, seed_answers = _timed(
        lambda: run_find_slot_queries(baseline, batch), repeats
    )
    if cur_answers != seed_answers:
        raise AssertionError("find_slot answers diverge from the seed ledger")

    # One instrumented rerun, outside the timing loop, for the obs block.
    registry = MetricsRegistry()
    instrumented = build_deep_ledger(
        ReservationLedger, nodes, bookings, seed, registry=registry
    )
    run_find_slot_queries(instrumented, batch)

    cur_med, seed_med = statistics.median(cur_samples), statistics.median(seed_samples)
    return {
        "description": "batch of find_slot probes against a deep static queue",
        "params": {**params, "seed": seed},
        "current": _entry(cur_samples),
        "seed": _entry(seed_samples),
        "speedup": seed_med / cur_med if cur_med > 0 else float("inf"),
        "answers_identical": True,
        "obs": _obs_counters(registry),
    }


def bench_negotiation(params: Dict[str, int], seed: int, repeats: int) -> Dict:
    nodes, jobs = params["nodes"], params["dialogue_jobs"]
    bookings = params["bookings"] // 2

    def current_run():
        ledger = build_deep_ledger(ReservationLedger, nodes, bookings, seed)
        return run_dialogues(ledger, nodes, jobs, seed)

    def seed_run():
        ledger = build_deep_ledger(SeedReservationLedger, nodes, bookings, seed)
        return run_dialogues(ledger, nodes, jobs, seed)

    cur_samples, cur_out = _timed(current_run, repeats)
    seed_samples, seed_out = _timed(seed_run, repeats)
    if cur_out != seed_out:
        raise AssertionError("negotiation outcomes diverge from the seed ledger")

    registry = MetricsRegistry()
    instrumented = build_deep_ledger(
        ReservationLedger, nodes, bookings, seed, registry=registry
    )
    run_dialogues(instrumented, nodes, jobs, seed, registry=registry)

    cur_med, seed_med = statistics.median(cur_samples), statistics.median(seed_samples)
    return {
        "description": "full submission dialogues (offers + bookings) vs a picky user",
        "params": {"nodes": nodes, "warm_bookings": bookings, "jobs": jobs, "seed": seed},
        "current": _entry(cur_samples),
        "seed": _entry(seed_samples),
        "speedup": seed_med / cur_med if cur_med > 0 else float("inf"),
        "answers_identical": True,
        "obs": _obs_counters(registry),
    }


def bench_nasa(params: Dict[str, int], seed: int, repeats: int) -> Optional[Dict]:
    jobs = params["nasa_jobs"]
    if jobs <= 0:
        return None

    cur_samples, cur_result = _timed(lambda: run_nasa_point(jobs, seed), repeats)

    # Re-run the identical point on the seed ledger by swapping the class
    # the Cluster instantiates; everything downstream is duck-typed.
    original = machine_module.ReservationLedger
    machine_module.ReservationLedger = SeedReservationLedger
    try:
        seed_samples, seed_result = _timed(lambda: run_nasa_point(jobs, seed), repeats)
    finally:
        machine_module.ReservationLedger = original

    if cur_result.metrics != seed_result.metrics:
        raise AssertionError("end-to-end metrics diverge from the seed ledger")

    registry = MetricsRegistry()
    obs_result = run_nasa_point(jobs, seed, registry=registry)
    if obs_result.metrics != cur_result.metrics:
        raise AssertionError("instrumented run changed the simulated metrics")

    cur_med, seed_med = statistics.median(cur_samples), statistics.median(seed_samples)
    return {
        "description": "end-to-end NASA replication point (a=0.7, U=0.5)",
        "params": {"jobs": jobs, "seed": seed},
        "current": _entry(cur_samples),
        "seed": _entry(seed_samples),
        "speedup": seed_med / cur_med if cur_med > 0 else float("inf"),
        "metrics_identical": True,
        "obs": _obs_counters(registry),
    }


def bench_figures_grid(params: Dict, seed: int, repeats: int) -> Optional[Dict]:
    """A figure-sized sweep grid: sequential vs pooled vs warm cache.

    All three execution modes must produce bit-identical metrics; the
    scenario exists to track (a) how much the process pool buys on the
    machine at hand and (b) that a warm on-disk cache makes regeneration
    nearly free regardless of hardware.
    """
    grid_jobs = params.get("grid_jobs", 0)
    if grid_jobs <= 0:
        return None
    pool_jobs = params["pool_jobs"]
    accuracy_count = params["grid_accuracies"]
    accuracies = [
        round(k / (accuracy_count - 1), 6) for k in range(accuracy_count)
    ] if accuracy_count > 1 else [0.5]
    users = list(params["grid_users"])
    points = [(a, u) for u in users for a in accuracies]
    setup = ExperimentSetup(workload="sdsc", job_count=grid_jobs, seed=seed)

    def sequential():
        return ExperimentContext.prepare(setup).run_points(points)

    seq_samples, seq_answers = _timed(sequential, repeats)

    scratch = tempfile.mkdtemp(prefix="probqos-bench-cache-")
    try:
        cold_dirs = iter(
            os.path.join(scratch, f"cold-{i}") for i in range(repeats + 1)
        )

        def parallel_cold():
            context = ExperimentContext.prepare(
                setup, jobs=pool_jobs, cache=PointCache(next(cold_dirs))
            )
            return context.run_points(points)

        par_samples, par_answers = _timed(parallel_cold, repeats)
        if par_answers != seq_answers:
            raise AssertionError("pooled grid metrics diverge from sequential")

        # Populate one cache (untimed), then time reruns against it with
        # fresh contexts so only the disk cache can satisfy the points.
        warm_dir = os.path.join(scratch, "warm")
        ExperimentContext.prepare(
            setup, jobs=pool_jobs, cache=PointCache(warm_dir)
        ).run_points(points)
        warm_cache = PointCache(warm_dir)

        def warm_rerun():
            context = ExperimentContext.prepare(
                setup, jobs=pool_jobs, cache=warm_cache
            )
            return context.run_points(points)

        warm_samples, warm_answers = _timed(warm_rerun, repeats)
        if warm_answers != seq_answers:
            raise AssertionError("warm-cache metrics diverge from sequential")
        cache_stats = dict(warm_cache.stats)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    # One instrumented pooled rerun (uncached, untimed): exercises the
    # per-worker registry snapshot merge and yields the obs block.
    registry = MetricsRegistry()
    ExperimentContext.prepare(
        setup, jobs=pool_jobs, registry=registry
    ).run_points(points)

    seq_med = statistics.median(seq_samples)
    par_med = statistics.median(par_samples)
    warm_med = statistics.median(warm_samples)
    return {
        "description": (
            "figure-sized (a, U) sweep grid: sequential vs process pool "
            "(cold cache) vs warm on-disk cache"
        ),
        "params": {
            "workload": "sdsc",
            "grid_jobs": grid_jobs,
            "points": len(points),
            "pool_jobs": pool_jobs,
            "seed": seed,
            "cpu_count": os.cpu_count(),
        },
        "sequential": _entry(seq_samples),
        "parallel": _entry(par_samples),
        "warm_cache": _entry(warm_samples),
        "speedup_parallel": seq_med / par_med if par_med > 0 else float("inf"),
        "speedup_warm": seq_med / warm_med if warm_med > 0 else float("inf"),
        "answers_identical": True,
        "cache": cache_stats,
        "obs": _obs_counters(registry),
    }


def run_fastpath_dialogues(
    mode: str, nodes: int, jobs: int, seed: int, registry=None
) -> List[Tuple]:
    """``jobs`` picky, near-full-cluster dialogues in one negotiation mode.

    Engineered so the probe loop hurts: requests want (nearly) the whole
    cluster, the failure trace is dense enough that every long window is
    dirty, and at accuracy 1.0 a U=0.97 user only accepts once the first
    detectable failure in the window carries ``p_x ≤ 0.03`` — so probe
    mode prices ~30 candidates per dialogue while the analytical bound
    (exact at full cluster, near-exact one node short of it) prunes the
    hopeless ones without ever touching the predictor.
    """
    rng = random.Random(seed + 3)
    horizon = 120.0 * 86400.0
    failures = generate_failure_trace(
        horizon,
        spec=FailureModelSpec(nodes=nodes, rate_per_day=24.0),
        seed=seed,
    )
    predictor = TracePredictor(failures, accuracy=1.0, seed=seed)
    if registry is not None:
        predictor.bind_registry(registry)
    ledger = ReservationLedger(nodes)
    evaluator = (
        AnalyticalEvaluator(predictor, nodes, registry=registry)
        if mode != "probe"
        else None
    )
    # Mirror the system wiring: in analytical mode the placement scorer
    # reads the evaluator's cached terms; probe and oracle score off the
    # live predictor.
    query_source = evaluator if mode == "analytical" else predictor
    negotiator = Negotiator(
        ledger,
        FlatTopology(nodes),
        predictor,
        fault_aware_scorer(query_source),
        registry=registry,
        mode=mode,
        evaluator=evaluator,
    )
    user = RiskThresholdUser(0.97)
    bookings = []
    clock = 0.0
    for job_id in range(20_000, 20_000 + jobs):
        size = rng.randint(max(1, nodes - 1), nodes)
        duration = rng.uniform(6.0 * 3600.0, 12.0 * 3600.0)
        outcome = negotiator.negotiate(job_id, size, duration, clock, user)
        bookings.append(
            (
                outcome.start,
                outcome.nodes,
                outcome.reserved_end,
                outcome.guarantee.probability,
                outcome.forced,
            )
        )
        clock += rng.uniform(0.0, 600.0)
    return bookings


def bench_negotiation_fastpath(params: Dict, seed: int, repeats: int) -> Dict:
    """Probe vs analytical vs oracle negotiation on hard dialogues.

    Bookings must be bit-identical across all three modes (oracle mode
    additionally cross-checks every priced offer at 1e-9 and raises on
    disagreement).  The headline numbers are count-based — probes and
    predictor queries per dialogue — so the ≥10× gates downstream are
    immune to timer noise; wall time is recorded as corroboration.
    """
    nodes, jobs = params["nodes"], params["fastpath_jobs"]

    probe_samples, probe_out = _timed(
        lambda: run_fastpath_dialogues("probe", nodes, jobs, seed), repeats
    )
    ana_samples, ana_out = _timed(
        lambda: run_fastpath_dialogues("analytical", nodes, jobs, seed), repeats
    )
    if ana_out != probe_out:
        raise AssertionError("analytical bookings diverge from probe mode")
    # Oracle mode raises OracleDisagreement if any priced offer's analytical
    # probability strays from the probe value; one untimed pass suffices.
    oracle_out = run_fastpath_dialogues("oracle", nodes, jobs, seed)
    if oracle_out != probe_out:
        raise AssertionError("oracle bookings diverge from probe mode")

    obs: Dict[str, Dict[str, float]] = {}
    for mode in ("probe", "analytical"):
        registry = MetricsRegistry()
        run_fastpath_dialogues(mode, nodes, jobs, seed, registry=registry)
        obs[mode] = _obs_counters(registry)
    dialogues = obs["probe"]["negotiation.dialogue.dialogues"]
    probe_probes = obs["probe"]["negotiation.dialogue.probes"]
    ana_probes = obs["analytical"]["negotiation.dialogue.probes"]
    probe_queries = obs["probe"]["prediction.trace.queries"]
    ana_queries = obs["analytical"]["prediction.trace.queries"]

    # Grid-level comparison: the same figures-grid points simulated end to
    # end in both modes.  The trajectories are identical by construction,
    # so the metrics must match bit for bit while the predictor query
    # count collapses.
    grid = None
    grid_jobs = params.get("grid_jobs", 0)
    if grid_jobs > 0:
        accuracy_count = params["grid_accuracies"]
        accuracies = [
            round(k / (accuracy_count - 1), 6) for k in range(accuracy_count)
        ] if accuracy_count > 1 else [0.5]
        points = [(a, u) for u in params["grid_users"] for a in accuracies]
        setup = ExperimentSetup(workload="sdsc", job_count=grid_jobs, seed=seed)
        grid_queries = {}
        grid_metrics = {}
        for mode in ("probe", "analytical"):
            registry = MetricsRegistry()
            context = ExperimentContext.prepare(setup, registry=registry)
            grid_metrics[mode] = context.run_points(
                points, negotiation_mode=mode
            )
            grid_queries[mode] = _obs_counters(registry).get(
                "prediction.trace.queries", 0
            )
        if grid_metrics["probe"] != grid_metrics["analytical"]:
            raise AssertionError("grid metrics diverge between negotiation modes")
        grid = {
            "grid_jobs": grid_jobs,
            "points": len(points),
            "predictor_queries": dict(grid_queries),
            "query_reduction": (
                grid_queries["probe"] / max(grid_queries["analytical"], 1.0)
            ),
            "metrics_identical": True,
        }

    probe_med = statistics.median(probe_samples)
    ana_med = statistics.median(ana_samples)
    return {
        "description": (
            "picky near-full-cluster dialogues: probe vs analytical vs "
            "oracle negotiation modes"
        ),
        "params": {
            "nodes": nodes,
            "jobs": jobs,
            "rate_per_day": 24.0,
            "accuracy": 1.0,
            "user_threshold": 0.97,
            "seed": seed,
        },
        "probe": _entry(probe_samples),
        "analytical": _entry(ana_samples),
        "speedup": probe_med / ana_med if ana_med > 0 else float("inf"),
        "probes_per_dialogue": {
            "probe": probe_probes / dialogues,
            "analytical": ana_probes / dialogues,
        },
        "probe_reduction": probe_probes / max(ana_probes, 1.0),
        "predictor_queries_per_dialogue": {
            "probe": probe_queries / dialogues,
            "analytical": ana_queries / dialogues,
        },
        "query_reduction": probe_queries / max(ana_queries, 1.0),
        "pruned": obs["analytical"]["negotiation.dialogue.pruned"],
        "bookings_identical": True,
        "oracle_agrees": True,
        "grid": grid,
        "obs": obs["analytical"],
    }


# ----------------------------------------------------------------------
# Scale scenario (big-cluster replays in per-config subprocesses)
# ----------------------------------------------------------------------
def _run_scale_subprocess(
    nodes: int, jobs: int, impl: str, event_loop: str, seed: int
) -> Dict:
    """One ``scale_bench.py`` replay in a fresh interpreter.

    A subprocess per configuration is what makes the reported peak RSS
    attributable: ``ru_maxrss`` is a whole-process high-water mark, so
    sharing a process across configurations would smear the largest
    configuration's footprint over all of them.
    """
    script = Path(__file__).resolve().parent / "scale_bench.py"
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(script),
            "--nodes", str(nodes),
            "--jobs", str(jobs),
            "--impl", impl,
            "--event-loop", event_loop,
            "--seed", str(seed),
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def bench_reserve_normalization(
    nodes: int, ops: int, seed: int, repeats: int
) -> Dict:
    """``reserve`` with pre-normalised NodeSets vs plain (shuffled) lists.

    Times only the reserve loop — the ledger is rebuilt fresh per sample —
    so the reported difference is the ``tuple(sorted(set(...)))``
    normalisation the NodeSet fast path skips.  ``allow_overlap`` keeps
    the bookings legal without free-window validation muddying the signal.
    """
    rng = random.Random(seed + 4)
    max_width = max(16, nodes // 64)
    as_lists: List[List[int]] = []
    as_sets: List[NodeSet] = []
    for _ in range(ops):
        width = rng.randint(8, max_width)
        base = rng.randint(0, nodes - width)
        members = list(range(base, base + width))
        shuffled = members[:]
        rng.shuffle(shuffled)
        as_lists.append(shuffled)
        as_sets.append(NodeSet.interval(base, base + width))

    def reserve_pass(variants) -> float:
        ledger = ReservationLedger(nodes)
        t0 = time.perf_counter()
        for job_id, part in enumerate(variants, start=1):
            ledger.reserve(job_id, part, 0.0, 3600.0, allow_overlap=True)
        return time.perf_counter() - t0

    list_samples = [reserve_pass(as_lists) for _ in range(repeats)]
    set_samples = [reserve_pass(as_sets) for _ in range(repeats)]
    list_med = statistics.median(list_samples)
    set_med = statistics.median(set_samples)
    return {
        "nodes": nodes,
        "ops": ops,
        "list": _entry(list_samples),
        "nodeset": _entry(set_samples),
        "speedup": list_med / set_med if set_med > 0 else float("inf"),
    }


def bench_scale(params: Dict, seed: int, repeats: int) -> Dict:
    """Streaming replays at 1k/10k/100k nodes: throughput, RSS, identity.

    Each configuration — (node count, ledger implementation, event-loop
    backend) — replays the same streamed synthetic arrival process in its
    own subprocess.  The trajectory checksums must agree across every
    configuration at a given node count (the optimised substrate changes
    nothing but speed); events/sec medians feed the ≥10× acceptance gate
    against the seed ledger, and per-config peak RSS shows the footprint
    staying sub-linear in cluster width.  Replays are capped at
    ``min(repeats, 3)`` samples: the seed ledger's quadratic replay is
    what makes a full ``--repeats`` pass here cost minutes for no extra
    signal.
    """
    node_counts = list(params["scale_node_counts"])
    seed_node_counts = list(params["scale_seed_node_counts"])
    jobs = params["scale_jobs"]
    scale_repeats = max(1, min(repeats, 3))

    matrix: List[Tuple[int, str, str]] = []
    for n in node_counts:
        matrix.append((n, "current", "calendar"))
        matrix.append((n, "current", "heap"))
    for n in seed_node_counts:
        if n not in node_counts:
            raise ValueError(f"seed baseline at {n} nodes has no current run")
        matrix.append((n, "seed", "heap"))

    configs: Dict[str, Dict] = {}
    for n, impl, event_loop in matrix:
        runs = [
            _run_scale_subprocess(n, jobs, impl, event_loop, seed)
            for _ in range(scale_repeats)
        ]
        checksums = {r["checksum"] for r in runs}
        if len(checksums) != 1:
            raise AssertionError(
                f"scale replay not deterministic for {impl}/{event_loop}@{n}"
            )
        eps_samples = [r["events_per_s"] for r in runs]
        configs[f"{impl}-{event_loop}-n{n}"] = {
            "nodes": n,
            "impl": impl,
            "event_loop": event_loop,
            "events": runs[0]["events"],
            "events_per_s_median": statistics.median(eps_samples),
            "events_per_s_samples": eps_samples,
            "peak_bookings": runs[0]["peak_bookings"],
            "peak_rss_bytes": min(r["peak_rss_bytes"] for r in runs),
            "checksum": runs[0]["checksum"],
        }

    for n in node_counts:
        at_n = {c["checksum"] for c in configs.values() if c["nodes"] == n}
        if len(at_n) != 1:
            raise AssertionError(
                f"trajectory checksums diverge across configs at {n} nodes"
            )

    speedup_vs_seed = {
        str(n): (
            configs[f"current-calendar-n{n}"]["events_per_s_median"]
            / configs[f"seed-heap-n{n}"]["events_per_s_median"]
        )
        for n in seed_node_counts
    }
    n_lo, n_hi = min(node_counts), max(node_counts)
    rss_lo = configs[f"current-calendar-n{n_lo}"]["peak_rss_bytes"]
    rss_hi = configs[f"current-calendar-n{n_hi}"]["peak_rss_bytes"]
    rss = {
        "node_growth": n_hi / n_lo,
        "rss_growth": rss_hi / rss_lo if rss_lo > 0 else float("inf"),
    }

    return {
        "description": (
            "streamed big-cluster replays (subprocess per config): "
            "events/sec, isolated peak RSS, cross-impl trajectory identity"
        ),
        "params": {
            "node_counts": node_counts,
            "seed_node_counts": seed_node_counts,
            "jobs": jobs,
            "replays_per_config": scale_repeats,
            "seed": seed,
        },
        "configs": configs,
        "checksums_identical": True,
        "speedup_vs_seed": speedup_vs_seed,
        "rss": rss,
        "reserve_normalization": bench_reserve_normalization(
            max(node_counts), params["scale_reserve_ops"], seed, repeats
        ),
    }


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_benchmarks(
    out_path: str = "BENCH_ledger.json",
    preset: str = "default",
    repeats: int = 5,
    seed: int = 20050628,
) -> Dict:
    params = PRESETS[preset]
    repeats = max(1, repeats)
    scenarios: Dict[str, Dict] = {}
    scenarios["find_slot_deep_queue"] = bench_find_slot(params, seed, repeats)
    scenarios["negotiation_dialogue"] = bench_negotiation(params, seed, repeats)
    nasa = bench_nasa(params, seed, repeats)
    if nasa is not None:
        scenarios["nasa_end_to_end"] = nasa
    grid = bench_figures_grid(params, seed, repeats)
    if grid is not None:
        scenarios["figures_grid"] = grid
    scenarios["negotiation_fastpath"] = bench_negotiation_fastpath(
        params, seed, repeats
    )
    scenarios["scale"] = bench_scale(params, seed, repeats)

    report = {
        "schema": SCHEMA_VERSION,
        "generated_by": "benchmarks/perf/run.py",
        "preset": preset,
        "repeats": repeats,
        "seed": seed,
        "scenarios": scenarios,
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_ledger.json", help="output JSON path")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--smoke", action="store_true", help="alias for --preset smoke")
    parser.add_argument("--repeats", type=int, default=5, help="median-of-N runs")
    parser.add_argument("--seed", type=int, default=20050628)
    args = parser.parse_args(argv)

    preset = "smoke" if args.smoke else args.preset
    report = run_benchmarks(
        out_path=args.out, preset=preset, repeats=args.repeats, seed=args.seed
    )
    for name, data in report["scenarios"].items():
        if "speedup_vs_seed" in data:
            for key, cfg in sorted(data["configs"].items()):
                print(
                    f"{name:24s} {key:28s}"
                    f" {cfg['events_per_s_median']:10.0f} ev/s"
                    f"   rss {cfg['peak_rss_bytes'] / 2**20:7.1f} MiB"
                )
            for n, ratio in sorted(data["speedup_vs_seed"].items(), key=lambda kv: int(kv[0])):
                print(f"{name:24s} speedup vs seed @ {n} nodes: {ratio:.1f}x")
            norm = data["reserve_normalization"]
            print(
                f"{name:24s} reserve normalization: list"
                f" {norm['list']['median_s'] * 1e3:7.2f} ms -> nodeset"
                f" {norm['nodeset']['median_s'] * 1e3:7.2f} ms"
                f" ({norm['speedup']:.2f}x)"
            )
        elif "probe_reduction" in data:
            ppd = data["probes_per_dialogue"]
            qpd = data["predictor_queries_per_dialogue"]
            print(
                f"{name:24s} probe {data['probe']['median_s'] * 1e3:9.2f} ms"
                f"   analytical {data['analytical']['median_s'] * 1e3:9.2f} ms"
                f" ({data['speedup']:.2f}x)"
                f"   probes/dlg {ppd['probe']:.1f} -> {ppd['analytical']:.1f}"
                f" ({data['probe_reduction']:.1f}x)"
                f"   queries/dlg {qpd['probe']:.1f} -> {qpd['analytical']:.1f}"
            )
        elif "speedup" in data:
            print(
                f"{name:24s} current {data['current']['median_s'] * 1e3:9.2f} ms"
                f"   seed {data['seed']['median_s'] * 1e3:9.2f} ms"
                f"   speedup {data['speedup']:.2f}x"
            )
        else:
            print(
                f"{name:24s} seq {data['sequential']['median_s'] * 1e3:9.2f} ms"
                f"   pool x{data['params']['pool_jobs']}"
                f" {data['parallel']['median_s'] * 1e3:9.2f} ms"
                f" ({data['speedup_parallel']:.2f}x,"
                f" {data['params']['cpu_count']} cpu)"
                f"   warm {data['warm_cache']['median_s'] * 1e3:9.2f} ms"
                f" ({data['speedup_warm']:.2f}x)"
            )
    print(f"wrote {args.out}")
    return 0
