#!/usr/bin/env python
"""Entry point for the ledger perf harness.

Usage (from the repo root):

    PYTHONPATH=src python benchmarks/perf/run.py [--smoke] [--repeats N]
                                                 [--out BENCH_ledger.json]

See ``ledger_bench.py`` for the scenario definitions and the JSON schema.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from ledger_bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
