"""Promise honesty vs prediction accuracy (the paper's thesis, audited).

"A system that makes unqualified performance guarantees is lying."  A blind
system (a = 0) promises every job p = 1 — an unqualified guarantee — and
breaks some of them; an informed system qualifies its promises and should
keep them at close to the stated rates.  This bench measures the
work-weighted honesty gap and Brier score across accuracies and prints the
reliability diagram at a = 0.7.
"""

from __future__ import annotations

from _support import time_representative_point
from repro.core.calibration import (
    brier_score,
    calibration_buckets,
    calibration_gap,
    reliability_diagram,
)
from repro.core.system import simulate

USER = 0.5


def test_promise_honesty(benchmark, sdsc_context):
    results = {}
    for accuracy in (0.0, 0.7, 1.0):
        config = sdsc_context.config(accuracy, USER)
        results[accuracy] = simulate(
            config, sdsc_context.log, sdsc_context.failures
        )

    print()
    print(f"{'a':>4}  {'honesty gap':>12}  {'Brier':>8}")
    gaps = {}
    for accuracy, result in results.items():
        gap = calibration_gap(result.outcomes)
        score = brier_score(result.outcomes)
        gaps[accuracy] = gap
        print(f"{accuracy:4.1f}  {gap:12.4f}  {score:8.4f}")

    print("\nreliability diagram at a = 0.7:")
    print(reliability_diagram(calibration_buckets(results[0.7].outcomes)))

    # More accurate prediction -> more honest promises.
    assert gaps[1.0] <= gaps[0.0] + 1e-9
    assert gaps[1.0] < 0.05
    # The blind system over-promises: its gap equals its broken-promise
    # work share (all promises are p = 1).
    assert gaps[0.0] > gaps[1.0]

    time_representative_point(benchmark, sdsc_context, accuracy=0.7, user=USER)
