"""Ablation — fault-aware placement vs uninformed placement.

The paper's scheduler uses prediction "to break ties among otherwise
equivalent partitions".  This ablation removes only that tie-breaking
(negotiation and checkpointing stay identical) and exposes a subtle
interaction the paper does not discuss:

* at **perfect accuracy** fault-aware placement strictly dominates — every
  failure is visible, so jobs simply never sit under one;
* at **intermediate accuracy** fault-aware placement dodges exactly the
  *detectable* failures — which are also the only ones cooperative
  checkpointing protects against.  The hits that remain are undetectable,
  unprotected, full-loss hits.  Uninformed placement takes *more* hits but
  a cheaper mix (most of its hits were checkpoint-protected).  Hit counts
  therefore fall with fault-awareness while per-hit severity rises, and
  total lost work can move either way on a single trace.

Asserted: strict dominance at a = 1; non-increasing hit counts at a = 0.7.
The intermediate-accuracy loss mix is printed for the record.
"""

from __future__ import annotations

from _support import time_representative_point

USER = 0.5


def test_placement_ablation(benchmark, sdsc_context):
    rows = []
    for accuracy in (0.7, 1.0):
        aware = sdsc_context.run_point(accuracy, USER, placement="fault-aware")
        blind = sdsc_context.run_point(accuracy, USER, placement="random")
        rows.append((accuracy, aware, blind))

    print()
    print(f"{'a':>4}  {'placement':>12}  {'qos':>7}  {'lost (node-s)':>14}  "
          f"{'hits':>5}  {'loss/hit':>10}")
    for accuracy, aware, blind in rows:
        for name, m in (("fault-aware", aware), ("random", blind)):
            per_hit = m.lost_work / m.failures_hitting_jobs if m.failures_hitting_jobs else 0.0
            print(
                f"{accuracy:4.1f}  {name:>12}  {m.qos:7.4f}  "
                f"{m.lost_work:14.3e}  {m.failures_hitting_jobs:5d}  "
                f"{per_hit:10.2e}"
            )

    mid_aware, mid_blind = rows[0][1], rows[0][2]
    perfect_aware, perfect_blind = rows[1][1], rows[1][2]

    # Perfect accuracy: every failure is visible, fault-awareness dominates.
    assert perfect_aware.failures_hitting_jobs <= perfect_blind.failures_hitting_jobs
    assert perfect_aware.lost_work <= perfect_blind.lost_work + 1e-9
    assert perfect_aware.qos >= perfect_blind.qos - 1e-9

    # Intermediate accuracy: fault-awareness still takes no more hits, but
    # the surviving (undetectable) hits are individually costlier.
    assert mid_aware.failures_hitting_jobs <= mid_blind.failures_hitting_jobs
    if mid_aware.failures_hitting_jobs and mid_blind.failures_hitting_jobs:
        aware_per_hit = mid_aware.lost_work / mid_aware.failures_hitting_jobs
        blind_per_hit = mid_blind.lost_work / mid_blind.failures_hitting_jobs
        assert aware_per_hit >= blind_per_hit * 0.5  # severity does not vanish

    time_representative_point(benchmark, sdsc_context, accuracy=1.0, user=USER)
