"""Ablation — the paper's frozen reservations vs opportunistic pull-forward.

The paper freezes the schedule: "jobs that have already been scheduled for
later execution retain their scheduled partition; there is no dynamic
optimization".  The extension pulls not-yet-started bookings toward
capacity freed by early finishes (skipped checkpoints) — it should never
hurt utilization and typically shortens waits.
"""

from __future__ import annotations

from _support import time_representative_point

ACCURACY = 0.7
USER = 0.5


def test_opportunistic_ablation(benchmark, sdsc_context):
    frozen = sdsc_context.run_point(ACCURACY, USER, opportunistic_start=False)
    eager = sdsc_context.run_point(ACCURACY, USER, opportunistic_start=True)

    print()
    print(f"{'schedule':>10}  {'qos':>7}  {'util':>7}  {'mean wait (s)':>14}")
    for name, m in (("frozen", frozen), ("pull-fwd", eager)):
        print(f"{name:>10}  {m.qos:7.4f}  {m.utilization:7.4f}  {m.mean_wait:14.0f}")

    # Pull-forward only ever starts jobs earlier: waits shrink (or tie) and
    # utilization does not degrade beyond noise.
    assert eager.mean_wait <= frozen.mean_wait + 1.0
    assert eager.utilization >= frozen.utilization - 0.01

    time_representative_point(benchmark, sdsc_context, accuracy=ACCURACY, user=USER)
