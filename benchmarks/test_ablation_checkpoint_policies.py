"""Ablation — cooperative (Equation 1) vs periodic vs no checkpointing.

The paper's design bet: skipping low-risk checkpoints recovers their
overhead without giving up failure protection where it matters.  Expected
ordering at a useful accuracy:

* overhead:  cooperative << periodic   (most requests are skipped);
* lost work: cooperative << never      (the risky checkpoints are kept);
* periodic pays the most overhead and loses the least per failure.
"""

from __future__ import annotations

from _support import time_representative_point

ACCURACY = 0.7
USER = 0.5


def test_checkpoint_policy_ablation(benchmark, sdsc_context):
    cooperative = sdsc_context.run_point(
        ACCURACY, USER, checkpoint_policy="cooperative"
    )
    periodic = sdsc_context.run_point(ACCURACY, USER, checkpoint_policy="periodic")
    never = sdsc_context.run_point(ACCURACY, USER, checkpoint_policy="never")

    print()
    print(f"{'policy':>12}  {'qos':>7}  {'util':>7}  {'lost (node-s)':>14}  "
          f"{'ckpt overhead (s)':>18}")
    for name, m in (
        ("cooperative", cooperative),
        ("periodic", periodic),
        ("never", never),
    ):
        print(
            f"{name:>12}  {m.qos:7.4f}  {m.utilization:7.4f}  "
            f"{m.lost_work:14.3e}  {m.checkpoint_overhead:18.0f}"
        )

    # Cooperative skips most requests: a fraction of periodic's overhead.
    assert cooperative.checkpoint_overhead < 0.5 * periodic.checkpoint_overhead
    # And it protects against predicted failures: its lost work tracks the
    # naked system's or improves on it.  The tolerance covers schedule-shift
    # chaos — performing even a few checkpoints moves every later start, so
    # *which* jobs the (identical) failures hit differs between the runs.
    assert cooperative.lost_work < never.lost_work * 1.10
    # Periodic is by far the most protected per failure.
    assert periodic.lost_work < 0.5 * never.lost_work

    time_representative_point(benchmark, sdsc_context, accuracy=ACCURACY, user=USER)
