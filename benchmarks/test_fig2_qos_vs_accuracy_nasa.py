"""Figure 2 — QoS vs prediction accuracy, NASA log, U in {0.1, 0.5, 0.9}.

Paper shape: same rising trend as SDSC but gentler — the NASA load is
lighter and its jobs far smaller, so less is at stake per failure; QoS
stays in a high band throughout.
"""

from __future__ import annotations

from _support import broadly_non_decreasing, endpoint_gain, show, time_representative_point


def test_figure_2(benchmark, catalog, nasa_context):
    figure = catalog.figure(2)
    show(figure)

    high_u = figure.series_by_label("U=0.9")
    assert broadly_non_decreasing(high_u.ys, slack=0.05)
    assert endpoint_gain(high_u) >= 0.0
    assert high_u.ys[-1] >= 0.95
    # NASA QoS never leaves a high band (small jobs, light load).
    assert min(high_u.ys) >= 0.75

    time_representative_point(benchmark, nasa_context, accuracy=0.5, user=0.9)
