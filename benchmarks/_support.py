"""Helpers shared by the figure benchmarks: printing and shape assertions.

The paper's testbed cannot be rebuilt, so absolute values are not asserted;
the *shapes* are — who wins, roughly by how much, where plateaus fall.
Assertions are deliberately tolerant of trace jaggedness (the paper itself
remarks on the burstiness-induced jaggedness of its curves).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figures import FigureResult
from repro.experiments.reporting import format_figure
from repro.experiments.sweeps import Series


def show(figure: FigureResult) -> None:
    """Print a regenerated figure (visible with ``pytest -s`` and in the
    captured benchmark output)."""
    print()
    print(format_figure(figure))


def endpoint_gain(series: Series) -> float:
    """Last y minus first y (improvement across the sweep)."""
    return series.ys[-1] - series.ys[0]


def endpoint_ratio(series: Series) -> float:
    """First y over last y (reduction factor across the sweep)."""
    last = series.ys[-1]
    if last <= 0:
        return float("inf")
    return series.ys[0] / last


def broadly_non_decreasing(values: Sequence[float], slack: float) -> bool:
    """True when the series trends upward within a per-step slack.

    Allows the bursty-trace jaggedness the paper describes: each step may
    dip by at most ``slack`` relative to the running maximum.
    """
    running_max = values[0]
    for value in values:
        if value < running_max - slack:
            return False
        running_max = max(running_max, value)
    return True


def plateau_width(values: Sequence[float], tolerance: float = 1e-9) -> int:
    """Length of the initial constant prefix of a series."""
    width = 1
    for value in values[1:]:
        if abs(value - values[0]) > tolerance:
            break
        width += 1
    return width


def time_representative_point(benchmark, context, accuracy: float, user: float):
    """Benchmark one *uncached* simulation of a representative point.

    The figure's sweep itself is memoised; timing a fresh ``simulate`` call
    gives the meaningful cost-per-point number.
    """
    from repro.core.system import simulate

    config = context.config(accuracy, user)

    def run_once():
        return simulate(config, context.log, context.failures)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    return result
