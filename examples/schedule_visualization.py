#!/usr/bin/env python3
"""Watch the scheduler work: an annotated trace and ASCII Gantt chart.

Runs a small scripted scenario on an 8-node cluster — a mix of jobs, a
node failure that kills one of them, and its checkpoint-restart — with the
trace recorder attached, then renders:

* the per-job life stories (negotiated -> start -> ... -> finish);
* the node-by-time occupancy chart, with '#' marking the repair window;
* the JSONL export that production-scale sweeps would stream to disk.

Run:  python examples/schedule_visualization.py
"""

from __future__ import annotations

import io

from repro.analysis import TraceRecorder, render_gantt
from repro.core.system import ProbabilisticQoSSystem, SystemConfig
from repro.failures.events import FailureEvent, FailureTrace
from repro.workload.job import Job, JobLog

HOUR = 3600.0


def main() -> None:
    log = JobLog(
        [
            Job(job_id=1, arrival_time=0.0, size=4, runtime=2 * HOUR),
            Job(job_id=2, arrival_time=300.0, size=4, runtime=1.2 * HOUR),
            Job(job_id=3, arrival_time=600.0, size=8, runtime=0.8 * HOUR),
            Job(job_id=4, arrival_time=900.0, size=2, runtime=3 * HOUR),
        ],
        name="demo",
    )
    failures = FailureTrace([FailureEvent(event_id=1, time=1.5 * HOUR, node=1)])

    stream = io.StringIO()
    recorder = TraceRecorder(stream=stream)
    system = ProbabilisticQoSSystem(
        SystemConfig(
            node_count=8,
            accuracy=0.0,  # blind system: the failure lands
            checkpoint_policy="periodic",
            seed=3,
        ),
        log,
        failures,
        recorder=recorder,
    )
    result = system.run()

    print("job life stories:")
    for job in log:
        steps = " -> ".join(
            f"{r.kind}@{r.time:.0f}s" for r in recorder.for_job(job.job_id)
        )
        print(f"  job {job.job_id} ({job.size}n x {job.runtime:.0f}s): {steps}")

    print("\nschedule (8 nodes):")
    print(render_gantt(recorder, node_count=8, width=72))

    m = result.metrics
    print(
        f"\nmetrics: QoS={m.qos:.3f} util={m.utilization:.3f} "
        f"lost={m.lost_work:.0f} node-s, "
        f"{m.failures_hitting_jobs} job-killing failure(s)"
    )

    lines = stream.getvalue().splitlines()
    print(f"\nJSONL trace: {len(lines)} records; first two:")
    for line in lines[:2]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
