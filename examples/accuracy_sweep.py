#!/usr/bin/env python3
"""Sweep prediction accuracy and watch all three metrics respond.

Reproduces the Figure 1/3/5 experiment at reduced size: QoS, utilization
and lost work versus the accuracy knob ``a`` on the SDSC-like log, for a
risk-averse user population (U = 0.9), plus the paper's headline endpoint
comparison.

Run:  python examples/accuracy_sweep.py            (about a minute)
      REPRO_BENCH_JOBS=400 python examples/accuracy_sweep.py   (fast)
"""

from __future__ import annotations

import os

from repro.experiments.config import ExperimentSetup
from repro.experiments.reporting import format_headline, sparkline
from repro.experiments.runner import ExperimentContext
from repro.experiments.sweeps import accuracy_sweep, endpoint_comparison

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "800"))
USER = 0.9


def main() -> None:
    ctx = ExperimentContext.prepare(
        ExperimentSetup(workload="sdsc", job_count=JOBS, seed=13)
    )
    print(f"SDSC-like log, {JOBS} jobs, U={USER}: sweeping a = 0 .. 1\n")

    qos = accuracy_sweep(ctx, "qos", [USER])[0]
    util = accuracy_sweep(ctx, "utilization", [USER])[0]
    lost = accuracy_sweep(ctx, "lost_work", [USER])[0]

    print(f"{'a':>4}  {'QoS':>8}  {'util':>8}  {'lost work (node-s)':>20}")
    for (a, q), (_, u), (_, l) in zip(qos.points, util.points, lost.points):
        print(f"{a:4.1f}  {q:8.4f}  {u:8.4f}  {l:20.3e}")

    print(f"\nQoS shape:  {sparkline(qos.ys)}")
    print(f"util shape: {sparkline(util.ys)}")
    print(f"lost shape: {sparkline(lost.ys)}  (falling = good)\n")

    print(format_headline(endpoint_comparison(ctx, user_threshold=USER)))


if __name__ == "__main__":
    main()
