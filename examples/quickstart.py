#!/usr/bin/env python3
"""Quickstart: simulate the probabilistic-QoS system end to end.

Builds a synthetic SDSC-like job log and an AIX-like failure trace, runs
the full system (negotiation + fault-aware scheduling + cooperative
checkpointing) at a chosen prediction accuracy and user risk threshold,
and prints the paper's three metrics — QoS, utilization, lost work —
next to a no-prediction baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SystemConfig, simulate
from repro.experiments.runner import estimate_horizon
from repro.failures import aix_like_trace
from repro.workload import sdsc_log

SEED = 7
JOBS = 800


def describe(tag: str, metrics) -> None:
    print(
        f"  {tag:<22} QoS={metrics.qos:.4f}  util={metrics.utilization:.4f}  "
        f"lost={metrics.lost_work:.3e} node-s  "
        f"deadlines met={metrics.deadlines_met}/{metrics.job_count}"
    )


def main() -> None:
    print(f"synthesising an SDSC-like log ({JOBS} jobs) and failure trace...")
    log = sdsc_log(seed=SEED, job_count=JOBS)
    failures = aix_like_trace(estimate_horizon(log, 128), seed=SEED)
    stats = log.stats()
    print(
        f"  workload: avg size {stats.mean_size:.1f} nodes, "
        f"avg runtime {stats.mean_runtime:.0f}s, "
        f"{len(failures)} failures in the trace\n"
    )

    print("running the paper's system (a=0.8, U=0.9) vs a blind baseline:")
    informed = simulate(
        SystemConfig(accuracy=0.8, user_threshold=0.9, seed=SEED), log, failures
    )
    blind = simulate(
        SystemConfig(accuracy=0.0, user_threshold=0.9, seed=SEED), log, failures
    )
    describe("with prediction:", informed.metrics)
    describe("without prediction:", blind.metrics)

    saved = blind.metrics.lost_work - informed.metrics.lost_work
    print(
        f"\nprediction avoided {saved:.3e} node-seconds of lost work "
        f"({blind.metrics.failures_hitting_jobs} -> "
        f"{informed.metrics.failures_hitting_jobs} failures hitting jobs)."
    )

    # Peek at one kept promise.
    outcome = next(
        o for o in informed.outcomes if o.guarantee is not None and o.met_deadline
    )
    g = outcome.guarantee
    print(
        f"\nexample kept promise: job {g.job_id} — promised completion by "
        f"t={g.deadline:.0f}s with p={g.probability:.3f}; "
        f"finished at t={outcome.finish:.0f}s."
    )


if __name__ == "__main__":
    main()
