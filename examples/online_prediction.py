#!/usr/bin/env python3
"""Beyond the accuracy knob: a *working* event predictor in the loop.

The paper abstracts prediction into the accuracy parameter ``a``.  This
example runs the substrate behind that abstraction:

1. generate ground-truth failures plus the raw system-event log around
   them (precursor warnings, duplicate criticals, noise);
2. filter the raw log back down to failures (the BG/L-style filtration)
   and measure how faithfully the pipeline recovers the truth;
3. evaluate the :class:`OnlinePredictor` — sliding-window event patterns +
   temperature-slope time series — for precision/recall, the Sahoo et al.
   regime the paper cites (≈70% recall, negligible false positives);
4. plug the online predictor into the *full system* in place of the trace
   oracle and compare outcomes against no prediction.

Run:  python examples/online_prediction.py
"""

from __future__ import annotations

from repro.core.system import SystemConfig, simulate
from repro.experiments.runner import estimate_horizon
from repro.failures.filtering import evaluate_filtering, filter_raw_log
from repro.failures.generator import (
    FailureModelSpec,
    generate_failure_trace,
    generate_raw_log,
)
from repro.prediction.evaluation import evaluate_predictor
from repro.prediction.health import HealthModel
from repro.prediction.online import OnlinePredictor
from repro.workload import sdsc_log

SEED = 23
JOBS = 500


def main() -> None:
    log = sdsc_log(seed=SEED, job_count=JOBS)
    horizon = estimate_horizon(log, 128)
    spec = FailureModelSpec(nodes=128)
    truth = generate_failure_trace(horizon, spec=spec, seed=SEED)
    raw = generate_raw_log(truth, horizon, spec=spec, seed=SEED)
    print(
        f"ground truth: {len(truth)} failures; raw log: {len(raw)} records "
        f"(criticals, precursors, noise)\n"
    )

    # -- filtration ----------------------------------------------------
    recovered = filter_raw_log(raw)
    quality = evaluate_filtering(truth, recovered)
    print(
        f"filtration: {quality.recovered} events recovered from the raw log "
        f"(precision {quality.precision:.2f}, recall {quality.recall:.2f})"
    )

    # -- online prediction ----------------------------------------------
    health = HealthModel(truth, seed=SEED)
    predictor = OnlinePredictor(raw, health=health)
    score = evaluate_predictor(predictor, truth, nodes=128, lead=900.0)
    print(
        f"online predictor: recall {score.recall:.2f}, precision "
        f"{score.precision:.2f} at 15 min lead "
        f"({score.alarms} alarms, {score.false_alarms} false)\n"
    )

    # -- in the loop ----------------------------------------------------
    config = SystemConfig(accuracy=0.0, user_threshold=0.9, seed=SEED)
    with_online = simulate(config, log, truth, predictor=predictor)
    without = simulate(config, log, truth)  # accuracy 0 => no predictions
    print("full system, online predictor vs no prediction:")
    for tag, m in (("online", with_online.metrics), ("none", without.metrics)):
        print(
            f"  {tag:>7}: QoS={m.qos:.4f} util={m.utilization:.4f} "
            f"lost={m.lost_work:.3e} hits={m.failures_hitting_jobs}"
        )
    print(
        "\nreading: even an imperfect log-driven predictor recovers a "
        "large slice of the oracle's lost-work savings."
    )


if __name__ == "__main__":
    main()
