#!/usr/bin/env python3
"""Sweep the user risk threshold U and watch the market mechanism work.

Reproduces the Figure 8/9/11 experiment at reduced size: with a perfect
predictor (a = 1), users who demand higher success probabilities (higher
U) extend their deadlines, steering work off doomed partitions — QoS and
utilization rise, lost work falls.  Also shows how far deadlines stretch:
the price users pay for certainty.

Run:  python examples/user_risk_sweep.py
"""

from __future__ import annotations

import os

from repro.experiments.config import ExperimentSetup
from repro.experiments.reporting import sparkline
from repro.experiments.runner import ExperimentContext

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "800"))
GRID = [round(0.1 * k, 1) for k in range(11)]


def main() -> None:
    ctx = ExperimentContext.prepare(
        ExperimentSetup(workload="sdsc", job_count=JOBS, seed=13)
    )
    print(f"SDSC-like log, {JOBS} jobs, a=1: sweeping U = 0 .. 1\n")
    print(f"{'U':>4}  {'QoS':>8}  {'util':>8}  {'lost (node-s)':>14}  "
          f"{'mean promised p':>16}")

    qos_series, util_series, lost_series = [], [], []
    for u in GRID:
        m = ctx.run_point(1.0, u)
        qos_series.append(m.qos)
        util_series.append(m.utilization)
        lost_series.append(m.lost_work)
        print(
            f"{u:4.1f}  {m.qos:8.4f}  {m.utilization:8.4f}  "
            f"{m.lost_work:14.3e}  {m.mean_promised_probability:16.4f}"
        )

    print(f"\nQoS shape:  {sparkline(qos_series)}")
    print(f"util shape: {sparkline(util_series)}")
    print(f"lost shape: {sparkline(lost_series)}  (falling = good)")
    print(
        "\nreading: higher U = users demand more certainty; with perfect "
        "prediction the system can always deliver it, at the price of "
        "later deadlines."
    )


if __name__ == "__main__":
    main()
