#!/usr/bin/env python3
"""The negotiation dialogue up close: deadlines traded for probability.

Constructs a small cluster whose failure trace contains a predictable
failure right where an impatient user's job would run, then walks through
the offers the system makes:

* an impatient user (low U) takes the earliest deadline and rides the risk;
* a cautious user (high U) declines until the system offers a window clear
  of predicted failures — a later deadline with a higher promise;
* the `suggest_deadline` API answers "when could you promise me 99%?"
  without booking anything.

This is the paper's market mechanism in miniature: relaxing the deadline
buys probability.

Run:  python examples/negotiation_demo.py
"""

from __future__ import annotations

from repro.cluster.machine import Cluster
from repro.cluster.topology import FlatTopology
from repro.core.negotiation import Negotiator
from repro.core.users import RiskThresholdUser
from repro.failures.events import FailureEvent, FailureTrace
from repro.prediction.trace import TracePredictor
from repro.scheduling.placement import fault_aware_scorer

NODES = 8
HOUR = 3600.0


def main() -> None:
    # A failure on every node three hours from now: no partition dodges it.
    failures = FailureTrace(
        [
            FailureEvent(event_id=n + 1, time=3 * HOUR, node=n, subsystem="power")
            for n in range(NODES)
        ]
    )
    # Accuracy 0.9: the failures are almost certainly detectable.
    predictor = TracePredictor(failures, accuracy=0.9, seed=11)
    cluster = Cluster(node_count=NODES)
    # mode="probe" shows every offer actually laid on the table; the
    # analytical default books identically but prunes offers a threshold
    # user is certain to decline, which would hide the dialogue this demo
    # exists to display (see DESIGN.md "Analytical negotiation fast path").
    negotiator = Negotiator(
        cluster.ledger, FlatTopology(NODES), predictor,
        scorer=fault_aware_scorer(predictor), mode="probe",
    )

    size, duration = NODES, 4 * HOUR  # a 4-hour job needing every node
    print(f"job: {size} nodes x {duration / HOUR:.0f}h; "
          f"all nodes have a predicted failure at t=3h\n")

    print("offers on the table (earliest first):")
    for i, offer in enumerate(negotiator.iter_offers(size, duration, 0.0)):
        print(
            f"  offer {i}: start t={offer.start / HOUR:5.2f}h  "
            f"deadline t={offer.deadline / HOUR:5.2f}h  "
            f"promised p={offer.probability:.3f}  (p_f={offer.failure_probability:.3f})"
        )
        if i >= 4:
            break

    for threshold in (0.1, 0.95):
        user = RiskThresholdUser(threshold)
        outcome = negotiator.negotiate(
            job_id=int(threshold * 100), size=size, duration=duration,
            now=0.0, user=user,
        )
        g = outcome.guarantee
        print(
            f"\nuser with U={threshold:g} accepted after declining "
            f"{g.offers_declined} offer(s):\n"
            f"  \"job can be completed by t={g.deadline / HOUR:.2f}h "
            f"with probability {g.probability:.3f}\""
        )
        cluster.ledger.release(g.job_id)  # clean slate for the next user

    suggestion = negotiator.suggest_deadline(
        size, duration, 0.0, target_probability=0.99
    )
    offer = suggestion.offer
    assert suggestion.found and offer is not None, suggestion.status
    print(
        f"\nsuggest_deadline(target p>=0.99): start the job at "
        f"t={offer.start / HOUR:.2f}h, deadline t={offer.deadline / HOUR:.2f}h, "
        f"promised p={offer.probability:.3f} "
        f"({suggestion.offers_examined} offer(s) examined)"
    )


if __name__ == "__main__":
    main()
