#!/usr/bin/env python3
"""What do guarantees cost?  Conservative (promising) vs EASY scheduling.

The paper's negotiation requires that every job receive a concrete booking
at submission — conservative backfilling.  The classical EASY discipline
reserves only for the queue head and backfills aggressively behind it: it
cannot promise anything, but it responds faster.  This example runs both
on identical workload + failures and prices the guarantee machinery, then
shows what buying prediction back does for the conservative side.

Run:  python examples/price_of_promises.py
"""

from __future__ import annotations

from repro.core.system import SystemConfig, simulate
from repro.experiments.runner import estimate_horizon
from repro.failures import aix_like_trace
from repro.scheduling import EasyConfig, simulate_easy
from repro.workload import sdsc_log

SEED = 29
JOBS = 700


def main() -> None:
    log = sdsc_log(seed=SEED, job_count=JOBS)
    failures = aix_like_trace(estimate_horizon(log, 128), seed=SEED)

    easy = simulate_easy(
        EasyConfig(node_count=128, checkpointing=True), log, failures
    )
    blind = simulate(
        SystemConfig(accuracy=0.0, checkpoint_policy="periodic", seed=SEED),
        log,
        failures,
    ).metrics
    informed = simulate(
        SystemConfig(accuracy=0.9, user_threshold=0.9, seed=SEED), log, failures
    ).metrics

    print(f"{'scheduler':>28}  {'util':>7}  {'mean wait (s)':>14}  "
          f"{'lost (node-s)':>14}  {'promises kept':>13}")
    rows = (
        ("EASY (no promises)", easy, "-"),
        ("conservative, no prediction", blind,
         f"{blind.deadlines_met}/{blind.job_count}"),
        ("conservative + prediction", informed,
         f"{informed.deadlines_met}/{informed.job_count}"),
    )
    for name, m, kept in rows:
        print(
            f"{name:>28}  {m.utilization:7.4f}  {m.mean_wait:14.0f}  "
            f"{m.lost_work:14.3e}  {kept:>13}"
        )

    print(
        "\nreading: promises cost waiting time and some utilization versus "
        "EASY — that is the price of a quotable deadline.  Prediction buys "
        "much of it back (and EASY could never promise at all)."
    )


if __name__ == "__main__":
    main()
