#!/usr/bin/env python3
"""Characterise failure traces and see why trace-driven evaluation matters.

The paper insists on trace-driven failures because "typical statistical
failure models are poor indicators of actual system behavior".  This
example makes that concrete:

1. generate a year-long AIX-like failure trace and summarise it against the
   paper's reported aggregates (2.8/day, cluster MTBF 8.5 h, node MTBF
   ~6.5 weeks);
2. show the structure renewal models miss: burstiness (inter-arrival CV),
   spatial skew (worst decile of nodes), and the diurnal cycle;
3. run the *same workload* under the bursty trace and under Poisson
   failures at an identical rate, and compare outcomes.

Run:  python examples/failure_analysis.py
"""

from __future__ import annotations

from repro.core.system import SystemConfig, simulate
from repro.experiments.runner import estimate_horizon
from repro.failures import (
    RenewalSpec,
    generate_failure_trace,
    generate_renewal_trace,
    hourly_histogram,
    summarize_trace,
)
from repro.workload import sdsc_log

SEED = 17
YEAR = 365 * 86400.0


def describe(tag, summary) -> None:
    print(
        f"  {tag:<12} {summary.event_count:4d} events  "
        f"{summary.rate_per_day:4.1f}/day  "
        f"cluster MTBF {summary.cluster_mtbf_hours:5.1f} h  "
        f"node MTBF {summary.node_mtbf_weeks:4.1f} wk  "
        f"CV {summary.burstiness_cv:4.2f}  "
        f"top-decile share {summary.top_decile_share:.0%}"
    )


def main() -> None:
    bursty = generate_failure_trace(YEAR, seed=SEED)
    poisson = generate_renewal_trace(YEAR, RenewalSpec(shape=1.0), seed=SEED)

    print("trace characterisation (paper: 2.8/day, MTBF 8.5 h, ~6.5 wk/node):")
    describe("bursty:", summarize_trace(bursty, nodes=128))
    describe("poisson:", summarize_trace(poisson, nodes=128))

    histogram = hourly_histogram(bursty)
    peak = max(range(24), key=lambda h: histogram[h])
    trough = min(range(24), key=lambda h: histogram[h])
    print(
        f"\ndiurnal cycle: peak hour {peak:02d}:00 ({histogram[peak]} events) vs "
        f"trough {trough:02d}:00 ({histogram[trough]})"
    )

    print("\nsame workload, same rate, different failure structure:")
    log = sdsc_log(seed=SEED, job_count=600)
    horizon = estimate_horizon(log, 128)
    config = SystemConfig(accuracy=0.7, user_threshold=0.5, seed=SEED)
    for tag, trace in (("bursty", bursty), ("poisson", poisson)):
        m = simulate(config, log, trace).metrics
        print(
            f"  {tag:>8}: QoS={m.qos:.4f} util={m.utilization:.4f} "
            f"lost={m.lost_work:.3e} hits={m.failures_hitting_jobs}"
        )
    print(
        "\nreading: at identical rates, the clustering and skew of real "
        "failures change who gets hit and how hard — which is exactly what "
        "prediction and fault-aware placement exploit."
    )


if __name__ == "__main__":
    main()
