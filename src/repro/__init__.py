"""probqos — probabilistic QoS guarantees for supercomputing systems.

A production-grade reproduction of Oliner, Rudolph, Sahoo, Moreira and
Gupta, *"Probabilistic QoS Guarantees for Supercomputing Systems"* (DSN
2005): a trace-driven simulated supercomputer whose scheduler negotiates
deadlines of the form "job j completes by d with probability p", backed by
event prediction, fault-aware conservative backfilling, and cooperative
checkpointing.

Quick start::

    from repro import SystemConfig, simulate
    from repro.workload import sdsc_log
    from repro.failures import aix_like_trace

    log = sdsc_log(seed=7, job_count=1000)
    failures = aix_like_trace(duration=120 * 86400, seed=7)
    result = simulate(
        SystemConfig(accuracy=0.8, user_threshold=0.9, seed=7), log, failures
    )
    print(result.metrics.qos, result.metrics.utilization)
"""

from repro.core import (
    ProbabilisticQoSSystem,
    QoSGuarantee,
    SimulationMetrics,
    SimulationResult,
    SystemConfig,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "ProbabilisticQoSSystem",
    "QoSGuarantee",
    "SimulationMetrics",
    "SimulationResult",
    "SystemConfig",
    "simulate",
    "__version__",
]
