"""Command-line interface: regenerate figures/tables, run single points.

Examples::

    probqos table 1
    probqos table 2
    probqos figure 5 --job-count 2000 --seed 7
    probqos figure 1 --jobs 4 --cache-dir .probqos-cache
    probqos run --workload sdsc --accuracy 0.8 --user 0.9 --job-count 1500
    probqos headline --workload sdsc
    probqos suggest --workload sdsc --size 32 --runtime 7200 --target 0.95
    probqos report --job-count 2000 --figures 1 5 8
    probqos gantt --workload nasa --nodes 16 --width 72
    probqos export bundles/sdsc-seed7 --workload sdsc --job-count 10000
    probqos run --workload nasa --obs obs.json --obs-interval 1800
    probqos obs summarize obs.json
    probqos run --workload nasa --trace trace.jsonl
    probqos trace export trace.jsonl --format chrome --out trace.json
    probqos trace explain trace.jsonl --job 17
    probqos trace explain trace.jsonl --job 17 --format json
    probqos run --workload nasa --audit audit.json
    probqos audit trace.jsonl
    probqos audit trace.jsonl --format json --out audit.json
    probqos audit audit.json --diagram-csv reliability.csv
    probqos run --workload nasa --prof prof.json
    probqos prof report prof.json
    probqos prof export prof.json --format collapsed
    probqos bench compare old_ledger.json new_ledger.json --fail-on-regression
    probqos bench trend ledgers/*.json
    probqos lint src tests
    probqos lint --format json --select QOS101,QOS102 src

``--jobs N`` fans independent simulation points out over N worker
processes; ``--cache-dir PATH`` persists every simulated point on disk so
re-running any figure, table, or report is (nearly) free.  Both default
off (``--jobs 1``, no cache), which is the exact sequential behaviour.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import ExperimentSetup, bench_seed
from repro.experiments.figures import FigureCatalog
from repro.experiments.reporting import (
    format_figure,
    format_headline,
    format_pairs,
    format_table1,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import table_1, table_2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="probqos",
        description=(
            "Probabilistic QoS guarantees for supercomputing systems "
            "(DSN 2005 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure (1-12)")
    fig.add_argument("number", type=int, help="figure number, 1-12")
    _add_env_args(fig)
    _add_obs_args(fig)
    _add_trace_args(fig)
    _add_audit_args(fig)
    _add_prof_args(fig)
    _add_parallel_args(fig)

    tab = sub.add_parser("table", help="regenerate a paper table (1-2)")
    tab.add_argument("number", type=int, help="table number, 1 or 2")
    _add_env_args(tab)
    _add_obs_args(tab)
    _add_trace_args(tab)
    _add_audit_args(tab)
    _add_prof_args(tab)
    _add_parallel_args(tab)

    run = sub.add_parser("run", help="simulate one (a, U) point")
    run.add_argument("--accuracy", "-a", type=float, default=0.5)
    run.add_argument("--user", "-U", type=float, default=0.5, dest="user_threshold")
    run.add_argument("--policy", default="cooperative")
    run.add_argument("--placement", default="fault-aware")
    run.add_argument("--topology", default="flat")
    _add_negotiation_args(run)
    _add_env_args(run)
    _add_obs_args(run)
    _add_trace_args(run)
    _add_audit_args(run)
    _add_prof_args(run)
    run.add_argument(
        "--obs-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sim-seconds between registry samples "
        "(default 3600 when --obs is set)",
    )

    obs = sub.add_parser("obs", help="inspect observability reports")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_summarize = obs_sub.add_parser(
        "summarize", help="render an --obs report as text"
    )
    obs_summarize.add_argument("path", help="report written by --obs PATH")
    obs_summarize.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="obs_format",
        help="summary format: human text or the structured dict the text "
        "renders (default: text)",
    )

    prof = sub.add_parser(
        "prof", help="inspect hierarchical profiles written by --prof"
    )
    prof_sub = prof.add_subparsers(dest="prof_command", required=True)
    prof_report = prof_sub.add_parser(
        "report", help="render a profile as a zone-tree text report"
    )
    prof_report.add_argument("path", help="profile written by --prof PATH")
    prof_report.add_argument(
        "--top",
        type=int,
        default=12,
        metavar="N",
        help="rows in the flat hottest-zones table (default 12)",
    )
    prof_report.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        dest="max_depth",
        help="truncate the zone tree below this depth (default: unlimited)",
    )
    prof_export = prof_sub.add_parser(
        "export",
        help="export a profile as collapsed stacks "
        "(FlameGraph / speedscope) or JSON",
    )
    prof_export.add_argument("path", help="profile written by --prof PATH")
    prof_export.add_argument(
        "--format",
        choices=["collapsed", "json"],
        default="collapsed",
        dest="prof_format",
        help="'collapsed' (one 'a;b;c weight' line per stack, loads in "
        "speedscope and flamegraph.pl) or 'json' (the raw snapshot) "
        "(default: collapsed)",
    )
    prof_export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output file (default: <profile>.collapsed / stdout for json)",
    )

    bench = sub.add_parser(
        "bench", help="compare and trend BENCH perf ledgers"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff two BENCH ledgers with noise-tolerant regression gates",
    )
    bench_compare.add_argument("old", help="baseline ledger (JSON)")
    bench_compare.add_argument("new", help="candidate ledger (JSON)")
    bench_compare.add_argument(
        "--time-ratio",
        type=float,
        default=None,
        metavar="X",
        dest="time_ratio",
        help="slowdown factor a timing median must exceed to regress "
        "(default 1.5)",
    )
    bench_compare.add_argument(
        "--min-abs-s",
        type=float,
        default=None,
        metavar="S",
        dest="min_abs_s",
        help="absolute seconds a timing median must additionally lose "
        "(default 0.05)",
    )
    bench_compare.add_argument(
        "--count-ratio",
        type=float,
        default=None,
        metavar="X",
        dest="count_ratio",
        help="relative growth an obs work counter must exceed to regress "
        "(default 1.25)",
    )
    bench_compare.add_argument(
        "--counts-only",
        action="store_true",
        dest="counts_only",
        help="gate only the machine-independent obs.* work counters "
        "(for CI against a baseline timed on different hardware)",
    )
    bench_compare.add_argument(
        "--fail-on-regression",
        action="store_true",
        dest="fail_on_regression",
        help="exit 1 when any metric regresses",
    )
    bench_compare.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="bench_format",
        help="report format (default: text)",
    )
    bench_compare.add_argument(
        "--verbose",
        action="store_true",
        help="show every gated metric, not just the flagged ones",
    )
    bench_trend = bench_sub.add_parser(
        "trend",
        help="sparkline metric history across a sequence of ledgers",
    )
    bench_trend.add_argument(
        "paths", nargs="+", help="BENCH ledgers, oldest first"
    )

    trace = sub.add_parser(
        "trace", help="assemble and inspect span timelines from --trace files"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_export = trace_sub.add_parser(
        "export",
        help="export a trace as Chrome Trace Event JSON "
        "(loads in Perfetto / chrome://tracing)",
    )
    trace_export.add_argument("path", help="JSONL trace written by --trace PATH")
    trace_export.add_argument(
        "--format",
        choices=["chrome"],
        default="chrome",
        dest="trace_format",
        help="export format (default: chrome)",
    )
    trace_export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output file (default: <trace>.chrome.json)",
    )
    trace_explain = trace_sub.add_parser(
        "explain",
        help="reconstruct one job's guarantee audit trail from its spans",
    )
    trace_explain.add_argument("path", help="JSONL trace written by --trace PATH")
    trace_explain.add_argument(
        "--job", type=int, required=True, metavar="N", help="job id to explain"
    )
    trace_explain.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="explain_format",
        help="audit-trail format: human narrative or machine-readable JSON "
        "with the same verdict/margin fields the audit layer computes",
    )

    audit = sub.add_parser(
        "audit",
        help="promise-vs-outcome calibration & SLO audit of a JSONL trace "
        "(or re-render a saved audit report)",
    )
    audit.add_argument(
        "path",
        help="JSONL trace written by --trace PATH, or an audit report "
        "written by --audit PATH / --out PATH",
    )
    audit.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="audit_format",
        help="report format (default: text)",
    )
    audit.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON audit report to PATH",
    )
    audit.add_argument(
        "--diagram-csv",
        default=None,
        metavar="PATH",
        dest="diagram_csv",
        help="write the reliability diagram as CSV to PATH",
    )
    audit.add_argument(
        "--bins",
        type=int,
        default=10,
        metavar="N",
        help="reliability-diagram bins over [0,1] (trace input only; "
        "default 10)",
    )
    audit.add_argument(
        "--node-block",
        type=int,
        default=32,
        metavar="N",
        dest="node_block",
        help="partition-rollup node-block width (trace input only; "
        "default 32)",
    )
    audit.add_argument(
        "--max-breach-rate",
        type=float,
        default=None,
        metavar="RATE",
        dest="max_breach_rate",
        help="per-rollup-key SLO: breach rates above RATE mark the run "
        "DEGRADED (trace input only; default: disabled)",
    )
    audit.add_argument(
        "--fail-on",
        choices=["degraded", "violated"],
        default=None,
        dest="fail_on",
        help="exit 1 when the run status reaches this severity "
        "(default: always exit 0)",
    )

    head = sub.add_parser("headline", help="no-prediction vs perfect endpoints")
    _add_env_args(head)

    suggest = sub.add_parser(
        "suggest", help="suggest the earliest deadline hitting a target probability"
    )
    suggest.add_argument("--size", type=int, required=True, help="nodes (n_j)")
    suggest.add_argument(
        "--runtime", type=float, required=True, help="runtime e_j, seconds"
    )
    suggest.add_argument("--target", type=float, default=0.95)
    suggest.add_argument("--accuracy", "-a", type=float, default=0.7)
    _add_negotiation_args(suggest)
    _add_env_args(suggest)
    _add_parallel_args(suggest)

    export = sub.add_parser(
        "export", help="write an experiment bundle (SWF + failures) to disk"
    )
    export.add_argument("directory", help="bundle directory to create")
    _add_env_args(export)

    gantt = sub.add_parser(
        "gantt", help="simulate a small scenario and print its schedule chart"
    )
    gantt.add_argument("--nodes", type=int, default=16)
    gantt.add_argument("--accuracy", "-a", type=float, default=0.5)
    gantt.add_argument("--width", type=int, default=72)
    _add_env_args(gantt)

    report = sub.add_parser(
        "report", help="regenerate the paper's entire evaluation as text"
    )
    report.add_argument(
        "--figures",
        type=int,
        nargs="*",
        default=None,
        help="figure numbers to include (default: all 12)",
    )
    _add_env_args(report)
    _add_parallel_args(report)

    lint = sub.add_parser(
        "lint",
        help="run the determinism & sim-safety static analysis (QOS rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--arch",
        action="store_true",
        help=(
            "also run the whole-program architecture pass "
            "(QOS501 layering, QOS502 import cycles)"
        ),
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to enable exclusively",
    )
    lint.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to disable",
    )
    return parser


def _add_negotiation_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--negotiation-mode",
        choices=["probe", "analytical", "oracle"],
        default="analytical",
        dest="negotiation_mode",
        help="offer pricing: 'analytical' (default; cached fast path with "
        "candidate pruning), 'probe' (per-candidate predictor queries), or "
        "'oracle' (probe values cross-checked against the fast path)",
    )
    parser.add_argument(
        "--jump-epsilon",
        type=float,
        default=1.0,
        metavar="SECONDS",
        dest="jump_epsilon",
        help="seconds the dialogue advances a candidate start past a "
        "predicted failure (default 1.0)",
    )
    parser.add_argument(
        "--event-loop",
        choices=["heap", "calendar"],
        default="heap",
        dest="event_loop",
        help="pending-event store: 'heap' (default, the seed binary heap) "
        "or 'calendar' (O(1) amortised bucketed queue for big clusters); "
        "trajectories are bit-identical across the two",
    )


def _add_env_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="sdsc", choices=["nasa", "sdsc"])
    parser.add_argument(
        "--job-count",
        type=int,
        default=1500,
        dest="job_count",
        help="jobs in the synthetic log (was --jobs before the parallel "
        "executor claimed that name)",
    )
    parser.add_argument("--seed", type=int, default=None)


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent simulation points "
        "(default 1 = sequential)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent on-disk cache of simulated points; reruns "
        "against a warm cache skip the simulations entirely",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs",
        metavar="PATH",
        default=None,
        help="instrument the simulation(s) and write an observability "
        "report (JSON) to PATH",
    )


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="stream every semantic transition to PATH as a JSONL flight "
        "recorder; inspect with 'probqos trace export/explain'",
    )


def _add_audit_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--audit",
        metavar="PATH",
        default=None,
        help="audit every promise against its outcome and write the "
        "calibration/SLO report (JSON) to PATH; render with "
        "'probqos audit PATH'",
    )


def _add_prof_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prof",
        metavar="PATH",
        default=None,
        help="profile the simulation(s) into hierarchical wall-time zones "
        "and write the profile (JSON) to PATH; inspect with "
        "'probqos prof report/export'",
    )
    parser.add_argument(
        "--prof-bucket",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="prof_bucket",
        help="sim-seconds per wall-cost attribution bucket "
        "(default 3600)",
    )


def _make_profiler(args: argparse.Namespace):
    """The live profiler requested by ``--prof``, or None."""
    if getattr(args, "prof", None) is None:
        return None
    from repro.obs.prof import DEFAULT_BUCKET_WIDTH, Profiler

    width = (
        args.prof_bucket if args.prof_bucket is not None
        else DEFAULT_BUCKET_WIDTH
    )
    return Profiler(bucket_width=width)


def _write_profile(args: argparse.Namespace, profiler) -> None:
    from repro.obs.prof import total_ns, write_profile

    meta = {"command": args.command}
    for key in ("workload", "job_count", "seed", "accuracy",
                "user_threshold", "number"):
        if getattr(args, key, None) is not None:
            meta[key] = getattr(args, key)
    snapshot = write_profile(args.prof, profiler.snapshot(meta=meta))
    print(
        f"\nprofile written to {args.prof}: "
        f"{total_ns(snapshot) / 1e9:.3f}s under profile; inspect with "
        f"'probqos prof report {args.prof}'"
    )


def _write_obs_report(args: argparse.Namespace, registry, sampler=None) -> None:
    from repro.obs.export import write_report

    meta = {
        "command": args.command,
        "workload": getattr(args, "workload", None),
        "job_count": getattr(args, "job_count", None),
        "seed": getattr(args, "seed", None),
    }
    for key in ("accuracy", "user_threshold", "policy", "placement", "number"):
        if getattr(args, key, None) is not None:
            meta[key] = getattr(args, key)
    report = write_report(args.obs, registry, sampler=sampler, meta=meta)
    print(
        f"\nobservability report written to {args.obs}: "
        f"{len(report['metric_names'])} metrics across "
        f"{len(report['layers'])} layers"
    )


def _write_audit_report(args: argparse.Namespace, report) -> None:
    meta = dict(report.meta)
    meta["command"] = args.command
    for key in ("workload", "job_count", "seed", "accuracy", "user_threshold", "number"):
        if getattr(args, key, None) is not None:
            meta[key] = getattr(args, key)
    import dataclasses

    report = dataclasses.replace(report, meta=meta)
    with open(args.audit, "w") as fh:
        fh.write(report.to_json())
        fh.write("\n")
    print(
        f"\naudit report written to {args.audit}: status {report.status}, "
        f"{report.total} promises (honoured {report.honoured}, broken "
        f"{report.broken}); render with 'probqos audit {args.audit}'"
    )


def _setup(args: argparse.Namespace) -> ExperimentSetup:
    seed = args.seed if args.seed is not None else bench_seed()
    return ExperimentSetup(
        workload=args.workload, job_count=args.job_count, seed=seed
    )


def _point_cache(args: argparse.Namespace):
    """The persistent cache named by ``--cache-dir``, or None."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.experiments.cache import PointCache

    return PointCache(args.cache_dir)


def _report_cache(cache) -> None:
    """Print the cache summary line batch pipelines (and CI) parse."""
    if cache is not None:
        print(f"\n{cache.summary()}")


def _cmd_figure(args: argparse.Namespace) -> int:
    registry = None
    if args.obs:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
    jobs = args.jobs
    cache = _point_cache(args)
    trace_stream = recorder = None
    audit = None
    if args.trace or args.audit:
        # Recorders and audits cannot cross process boundaries and cache
        # hits skip the simulations that would produce records/promises,
        # so instrumented figures force the sequential uncached path.
        if jobs != 1 or cache is not None:
            flag = "--trace" if args.trace else "--audit"
            print(f"{flag} forces --jobs 1 and ignores --cache-dir")
            jobs, cache = 1, None
    if args.trace:
        from repro.analysis.tracelog import TraceRecorder

        trace_stream = open(args.trace, "w")
        recorder = TraceRecorder(stream=trace_stream, keep_in_memory=False)
    if args.audit:
        from repro.obs.audit import GuaranteeAudit

        audit = GuaranteeAudit()
    # Profiles DO cross process boundaries (workers ship snapshots that
    # the parent folds), so --prof neither forces --jobs 1 nor disables
    # the cache — cache hits simply contribute no zones.
    profiler = _make_profiler(args)
    try:
        catalog = FigureCatalog()
        workloads = (
            ("sdsc", "nasa") if args.number == 8 else (_figure_workload(args.number),)
        )
        for name in workloads:
            catalog._contexts[name] = ExperimentContext.prepare(
                ExperimentSetup(
                    workload=name, job_count=args.job_count, seed=_setup(args).seed
                ),
                registry=registry,
                jobs=jobs,
                cache=cache,
                recorder=recorder,
                audit=audit,
                profiler=profiler,
            )
        print(format_figure(catalog.figure(args.number)))
    finally:
        if trace_stream is not None:
            trace_stream.close()
    _report_cache(cache)
    if args.trace:
        print(
            f"\ntrace written to {args.trace} (all simulated points share "
            "the file); inspect with 'probqos trace export/explain'"
        )
    if audit is not None:
        _write_audit_report(
            args, audit.report(meta={"source": "figure", "figure": args.number})
        )
    if registry is not None:
        _write_obs_report(args, registry)
    if profiler is not None:
        _write_profile(args, profiler)
    return 0


def _figure_workload(number: int) -> str:
    sdsc_figures = {1, 3, 5, 7, 9, 11}
    return "sdsc" if number in sdsc_figures else "nasa"


def _cmd_table(args: argparse.Namespace) -> int:
    # Tables run no simulation points; --jobs/--cache-dir are accepted so
    # batch pipelines can pass one flag set to every subcommand.
    if args.number == 1:
        print(
            format_table1(
                table_1(seed=_setup(args).seed, job_count=args.job_count)
            )
        )
    elif args.number == 2:
        print(format_pairs("Table 2: Simulation parameters", table_2()))
    else:
        print(f"the paper has tables 1 and 2; got {args.number}", file=sys.stderr)
        return 2
    if args.trace:
        # Tables run no traced simulations; an empty (but valid) JSONL file
        # still lands so batch pipelines can pass one flag set everywhere.
        with open(args.trace, "w"):
            pass
        print(f"trace written to {args.trace}: tables simulate nothing (0 records)")
    if args.audit:
        # Likewise: an empty (but valid, status OK) audit report.
        from repro.obs.audit import GuaranteeAudit

        _write_audit_report(
            args, GuaranteeAudit().report(meta={"source": "table"})
        )
    if args.obs:
        # Tables run no simulations; the report still round-trips so
        # batch pipelines can treat every subcommand uniformly.
        from repro.obs.registry import MetricsRegistry

        _write_obs_report(args, MetricsRegistry())
    if args.prof:
        # Likewise: an empty (but valid) profile.
        profiler = _make_profiler(args)
        _write_profile(args, profiler)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ctx = ExperimentContext.prepare(_setup(args))
    registry = sampler = None
    spans = None
    audit_report = None
    profiler = _make_profiler(args)
    if args.obs or args.trace or args.audit or args.prof:
        builder = trace_stream = audit = None
        if args.obs:
            from repro.obs.registry import MetricsRegistry

            registry = MetricsRegistry()
        if args.trace:
            from repro.obs.trace import SpanBuilder

            trace_stream = open(args.trace, "w")
            builder = SpanBuilder(stream=trace_stream)
        if args.audit:
            from repro.obs.audit import GuaranteeAudit

            audit = GuaranteeAudit()
        interval = args.obs_interval if args.obs_interval is not None else 3600.0
        try:
            result, sampler = ctx.run_instrumented(
                args.accuracy,
                args.user_threshold,
                registry,
                sample_interval=interval if registry is not None else None,
                recorder=builder,
                audit=audit,
                profiler=profiler,
                checkpoint_policy=args.policy,
                placement=args.placement,
                topology=args.topology,
                negotiation_mode=args.negotiation_mode,
                failure_jump_epsilon=args.jump_epsilon,
                event_loop=args.event_loop,
            )
        finally:
            if trace_stream is not None:
                trace_stream.close()
        metrics = result.metrics
        spans = result.spans
        audit_report = result.audit
    else:
        metrics = ctx.run_point(
            args.accuracy,
            args.user_threshold,
            checkpoint_policy=args.policy,
            placement=args.placement,
            topology=args.topology,
            negotiation_mode=args.negotiation_mode,
            failure_jump_epsilon=args.jump_epsilon,
            event_loop=args.event_loop,
        )
    pairs = [
        ("QoS", f"{metrics.qos:.4f}"),
        ("Avg utilization", f"{metrics.utilization:.4f}"),
        ("Work lost (node-s)", f"{metrics.lost_work:.3e}"),
        ("Span (days)", f"{metrics.span / 86400.0:.2f}"),
        ("Jobs completed", f"{metrics.completed_jobs}/{metrics.job_count}"),
        ("Deadlines met", f"{metrics.deadlines_met}"),
        ("Failures hitting jobs", f"{metrics.failures_hitting_jobs}"),
        (
            "Checkpoints (performed/skipped)",
            f"{metrics.checkpoints_performed}/{metrics.checkpoints_skipped}",
        ),
        ("Mean wait (s)", f"{metrics.mean_wait:.0f}"),
        ("Mean promised p", f"{metrics.mean_promised_probability:.4f}"),
    ]
    print(
        format_pairs(
            f"{args.workload.upper()}: a={args.accuracy:g}, U={args.user_threshold:g},"
            f" policy={args.policy}, placement={args.placement}",
            pairs,
        )
    )
    if spans is not None:
        from repro.obs.trace import summarize_timeline

        print()
        print(summarize_timeline(spans))
        print(
            f"trace written to {args.trace}; inspect with "
            f"'probqos trace export {args.trace}' or "
            f"'probqos trace explain {args.trace} --job N'"
        )
    if audit_report is not None:
        _write_audit_report(args, audit_report)
    if registry is not None:
        _write_obs_report(args, registry, sampler=sampler)
    if profiler is not None:
        _write_profile(args, profiler)
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    ctx = ExperimentContext.prepare(_setup(args))
    catalog = FigureCatalog(**{args.workload: ctx})
    print(format_headline(catalog.headline_comparison(args.workload)))
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    from repro.core.system import ProbabilisticQoSSystem, SystemConfig
    from repro.workload.job import Job, JobLog

    setup = _setup(args)
    ctx = ExperimentContext.prepare(
        setup, jobs=args.jobs, cache=_point_cache(args)
    )
    config = SystemConfig(
        accuracy=args.accuracy,
        seed=setup.seed,
        negotiation_mode=args.negotiation_mode,
        failure_jump_epsilon=args.jump_epsilon,
        event_loop=args.event_loop,
    )
    system = ProbabilisticQoSSystem(config, JobLog([], name="empty"), ctx.failures)
    probe = Job(job_id=1, arrival_time=0.0, size=args.size, runtime=args.runtime)
    padded = probe.padded_runtime(
        config.checkpoint_interval, config.checkpoint_overhead
    )
    suggestion = system.scheduler.negotiator.suggest_deadline(
        args.size, padded, now=0.0, target_probability=args.target
    )
    offer = suggestion.offer
    if offer is None:
        if suggestion.status == "infeasible":
            print(
                f"infeasible: no partition of {args.size} nodes can be placed "
                f"({suggestion.offers_examined} candidates examined)"
            )
        else:
            print(
                "no offer reaches the target probability within the dialogue "
                f"cap ({suggestion.offers_examined} candidates examined); a "
                "feasible deadline may exist further out"
            )
        return 1
    print(
        format_pairs(
            f"Suggested deadline for {args.size} nodes x {args.runtime:g}s "
            f"(target p >= {args.target:g}, a={args.accuracy:g})",
            [
                ("start (s)", f"{offer.start:.0f}"),
                ("deadline (s)", f"{offer.deadline:.0f}"),
                ("promised p", f"{offer.probability:.4f}"),
                ("predicted p_f", f"{offer.failure_probability:.4f}"),
                ("partition", ", ".join(str(n) for n in offer.nodes[:16]) +
                 ("..." if len(offer.nodes) > 16 else "")),
            ],
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.runner import estimate_horizon
    from repro.workload.archive import ensure_bundle
    from repro.workload.synthetic import log_by_name

    setup = _setup(args)
    probe = log_by_name(
        setup.workload, seed=setup.seed, job_count=args.job_count
    )
    horizon = estimate_horizon(probe, 128)
    log, failures, manifest = ensure_bundle(
        args.directory, setup.workload, args.job_count, setup.seed, horizon
    )
    print(
        f"bundle written to {args.directory}: {manifest.job_count} jobs, "
        f"{manifest.failure_count} failures, seed {manifest.seed}"
    )
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from repro.analysis import TraceRecorder, render_gantt
    from repro.core.system import ProbabilisticQoSSystem, SystemConfig
    from repro.experiments.runner import estimate_horizon
    from repro.failures.generator import FailureModelSpec, generate_failure_trace
    from repro.workload.synthetic import log_by_name

    setup = _setup(args)
    jobs = min(args.job_count, 60)  # a readable chart needs a small scenario
    log = log_by_name(setup.workload, seed=setup.seed, job_count=jobs)
    log = log.scaled_sizes(args.nodes)
    horizon = estimate_horizon(log, args.nodes)
    failures = generate_failure_trace(
        horizon,
        spec=FailureModelSpec(nodes=args.nodes, rate_per_day=8.0),
        seed=setup.seed,
    )
    recorder = TraceRecorder()
    system = ProbabilisticQoSSystem(
        SystemConfig(node_count=args.nodes, accuracy=args.accuracy, seed=setup.seed),
        log,
        failures,
        recorder=recorder,
    )
    result = system.run()
    print(render_gantt(recorder, node_count=args.nodes, width=args.width))
    m = result.metrics
    print(
        f"\nQoS={m.qos:.3f} util={m.utilization:.3f} "
        f"lost={m.lost_work:.2e} node-s, {m.failures_hitting_jobs} hit(s)"
    )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.export import load_report, summarize, summarize_data

    if args.obs_command == "summarize":
        try:
            report = load_report(args.path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read obs report: {exc}", file=sys.stderr)
            return 2
        if args.obs_format == "json":
            import json

            print(json.dumps(summarize_data(report), indent=2, sort_keys=True))
        else:
            print(summarize(report))
        return 0
    return 2


def _cmd_prof(args: argparse.Namespace) -> int:
    import json

    from repro.obs.prof import (
        load_profile,
        render_report,
        to_collapsed,
        validate_collapsed,
    )

    try:
        snapshot = load_profile(args.path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read profile: {exc}", file=sys.stderr)
        return 2

    if args.prof_command == "report":
        print(render_report(snapshot, top=args.top, max_depth=args.max_depth))
        return 0

    if args.prof_command == "export":
        if args.prof_format == "json":
            text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
            if args.out is None:
                print(text, end="")
                return 0
        else:
            text = to_collapsed(snapshot)
            problems = validate_collapsed(text)
            if problems:
                for problem in problems:
                    print(f"invalid collapsed stack: {problem}", file=sys.stderr)
                return 1
        out = args.out if args.out is not None else args.path + ".collapsed"
        with open(out, "w") as fh:
            fh.write(text)
        stacks = sum(1 for line in text.splitlines() if line.strip())
        print(
            f"{args.prof_format} profile written to {out}: {stacks} "
            + ("stacks — load in speedscope.app or flamegraph.pl"
               if args.prof_format == "collapsed" else "lines")
        )
        return 0
    return 2


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.obs.bench import (
        DEFAULT_COUNT_RATIO,
        DEFAULT_MIN_ABS_S,
        DEFAULT_TIME_RATIO,
        compare_ledgers,
        load_ledger,
        render_compare,
        render_trend,
    )

    if args.bench_command == "compare":
        try:
            old_doc = load_ledger(args.old)
            new_doc = load_ledger(args.new)
            result = compare_ledgers(
                old_doc,
                new_doc,
                time_ratio=(
                    args.time_ratio if args.time_ratio is not None
                    else DEFAULT_TIME_RATIO
                ),
                min_abs_s=(
                    args.min_abs_s if args.min_abs_s is not None
                    else DEFAULT_MIN_ABS_S
                ),
                count_ratio=(
                    args.count_ratio if args.count_ratio is not None
                    else DEFAULT_COUNT_RATIO
                ),
                counts_only=args.counts_only,
            )
        except (OSError, ValueError) as exc:
            print(f"cannot compare ledgers: {exc}", file=sys.stderr)
            return 2
        if args.bench_format == "json":
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print(render_compare(result, verbose=args.verbose))
        if args.fail_on_regression and result["verdict"] == "regressed":
            print(
                f"{len(result['regressions'])} perf regression(s) past the "
                "noise gate (failing on regression)",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.bench_command == "trend":
        import os

        docs = []
        try:
            for path in args.paths:
                label = os.path.basename(path)
                docs.append((label, load_ledger(path)))
        except (OSError, ValueError) as exc:
            print(f"cannot read ledger: {exc}", file=sys.stderr)
            return 2
        print(render_trend(docs))
        return 0
    return 2


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.tracelog import load_jsonl
    from repro.obs.trace import (
        explain_job,
        summarize_timeline,
        timeline_from_records,
        to_chrome_trace,
        validate_chrome_trace,
    )

    try:
        with open(args.path) as fh:
            records = load_jsonl(fh)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    timeline = timeline_from_records(records, meta={"source": args.path})

    if args.trace_command == "export":
        doc = to_chrome_trace(timeline)
        problems = validate_chrome_trace(doc)
        if problems:
            for problem in problems:
                print(f"invalid chrome trace: {problem}", file=sys.stderr)
            return 1
        out = args.out if args.out is not None else args.path + ".chrome.json"
        with open(out, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
        print(
            f"chrome trace written to {out}: {len(doc['traceEvents'])} events"
            " — open in Perfetto (ui.perfetto.dev) or chrome://tracing"
        )
        print(summarize_timeline(timeline))
        return 0

    if args.trace_command == "explain":
        try:
            if args.explain_format == "json":
                from repro.obs.trace import explain_job_data

                print(
                    json.dumps(
                        explain_job_data(timeline, args.job),
                        indent=2,
                        sort_keys=True,
                    )
                )
            else:
                print(explain_job(timeline, args.job))
        except KeyError:
            job_ids = timeline.job_ids()
            preview = ", ".join(str(j) for j in job_ids[:20])
            print(
                f"no trace of job {args.job} in {args.path}; "
                f"jobs present: {preview}"
                + (" ..." if len(job_ids) > 20 else ""),
                file=sys.stderr,
            )
            return 1
        return 0
    return 2


def _cmd_audit(args: argparse.Namespace) -> int:
    import json

    from repro.obs.audit import (
        AUDIT_STATUS_OK,
        AUDIT_STATUS_VIOLATED,
        AuditConfig,
        AuditReport,
        audit_from_records,
        reliability_diagram_csv,
        render_report,
    )

    # The input is either a saved AuditReport (one JSON object: re-render
    # mode, binning flags ignored) or a JSONL guarantee trace (replay mode).
    try:
        with open(args.path) as fh:
            text = fh.read()
    except OSError as exc:
        print(f"cannot read audit input: {exc}", file=sys.stderr)
        return 2
    report = None
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, dict) and "schema" in doc:
        try:
            report = AuditReport.from_dict(doc)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"cannot parse audit report: {exc}", file=sys.stderr)
            return 2
    if report is None:
        import io

        from repro.analysis.tracelog import load_jsonl

        try:
            records = load_jsonl(io.StringIO(text))
        except (ValueError, KeyError) as exc:
            print(f"cannot parse trace: {exc}", file=sys.stderr)
            return 2
        try:
            config = AuditConfig(
                bin_count=args.bins,
                node_block=args.node_block,
                max_breach_rate=args.max_breach_rate,
            )
        except ValueError as exc:
            print(f"invalid audit configuration: {exc}", file=sys.stderr)
            return 2
        report = audit_from_records(
            records, config=config, meta={"source": args.path}
        )

    if args.audit_format == "json":
        print(report.to_json())
    else:
        print(render_report(report))
    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"audit report written to {args.out}")
    if args.diagram_csv is not None:
        with open(args.diagram_csv, "w") as fh:
            fh.write(reliability_diagram_csv(report))
        print(f"reliability diagram written to {args.diagram_csv}")
    if args.fail_on == "degraded" and report.status != AUDIT_STATUS_OK:
        print(f"audit status {report.status} (failing on degraded)", file=sys.stderr)
        return 1
    if args.fail_on == "violated" and report.status == AUDIT_STATUS_VIOLATED:
        print(f"audit status {report.status} (failing on violated)", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(
        args.paths,
        output_format=args.output_format,
        select=args.select,
        ignore=args.ignore,
        arch=args.arch,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    setup = _setup(args)
    cache = _point_cache(args)
    print(
        generate_report(
            job_count=args.job_count,
            seed=setup.seed,
            figures=args.figures,
            jobs=args.jobs,
            cache=cache,
            # Timing is progress output, not part of the archival artifact.
            elapsed_to=sys.stderr,
        )
    )
    _report_cache(cache)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "figure": _cmd_figure,
        "table": _cmd_table,
        "run": _cmd_run,
        "headline": _cmd_headline,
        "suggest": _cmd_suggest,
        "export": _cmd_export,
        "gantt": _cmd_gantt,
        "report": _cmd_report,
        "obs": _cmd_obs,
        "prof": _cmd_prof,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "audit": _cmd_audit,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
