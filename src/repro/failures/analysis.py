"""Failure-trace analysis (the Sahoo-et-al.-style characterisation).

Summary statistics used to validate that synthetic traces reproduce the
paper's reported aggregates (2.8 failures/day, cluster MTBF 8.5 h, node MTBF
≈ 6.5 weeks) and the qualitative properties (burstiness, spatial skew) that
the source failure-analysis study emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.failures.events import FailureTrace
from repro.failures.models import burstiness_coefficient


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate characterisation of a failure trace.

    Attributes:
        event_count: Total failures.
        span_days: Time between first and last failure, in days.
        rate_per_day: Failures per day over the span.
        cluster_mtbf_hours: Mean gap between any two consecutive cluster
            failures, in hours.
        node_mtbf_weeks: Mean per-node time between failures in weeks,
            averaged over the node population (nodes that never fail
            contribute via the population-level estimate
            ``span * nodes / events``).
        burstiness_cv: Coefficient of variation of inter-arrivals (1 ≈
            Poisson, > 1 over-dispersed/bursty).
        top_decile_share: Fraction of failures contributed by the worst 10%
            of failing nodes (spatial skew).
    """

    event_count: int
    span_days: float
    rate_per_day: float
    cluster_mtbf_hours: Optional[float]
    node_mtbf_weeks: Optional[float]
    burstiness_cv: Optional[float]
    top_decile_share: Optional[float]


def summarize_trace(trace: FailureTrace, nodes: Optional[int] = None) -> TraceSummary:
    """Compute a :class:`TraceSummary` for ``trace``.

    Args:
        trace: The failure trace.
        nodes: Cluster width; defaults to ``max node index + 1``, which
            under-counts if high-index nodes never fail, so pass the real
            width when known.
    """
    count = len(trace)
    span = trace.span
    if nodes is None:
        nodes = (max(trace.nodes) + 1) if count else 0

    mtbf = trace.mtbf()
    node_mtbf_weeks = None
    if count > 0 and span > 0 and nodes > 0:
        node_mtbf_weeks = (span * nodes / count) / (86400.0 * 7.0)

    top_share = None
    if count > 0:
        per_node = per_node_counts(trace)
        counts = sorted(per_node.values(), reverse=True)
        decile = max(1, int(round(0.1 * nodes)))
        top_share = sum(counts[:decile]) / count

    return TraceSummary(
        event_count=count,
        span_days=span / 86400.0,
        rate_per_day=count / (span / 86400.0) if span > 0 else 0.0,
        cluster_mtbf_hours=mtbf / 3600.0 if mtbf else None,
        node_mtbf_weeks=node_mtbf_weeks,
        burstiness_cv=burstiness_coefficient(trace),
        top_decile_share=top_share,
    )


def per_node_counts(trace: FailureTrace) -> Dict[int, int]:
    """Failure count per node (only nodes that fail appear)."""
    counts: Dict[int, int] = {}
    for event in trace:
        counts[event.node] = counts.get(event.node, 0) + 1
    return counts


def hourly_histogram(trace: FailureTrace) -> List[int]:
    """Failures per hour of day (24 bins) — exposes diurnal modulation."""
    bins = [0] * 24
    for event in trace:
        hour = int((event.time % 86400.0) // 3600.0) % 24
        bins[hour] += 1
    return bins


def empirical_hazard_by_gap(trace: FailureTrace, bin_edges: List[float]) -> List[float]:
    """Fraction of inter-arrival gaps falling in each ``[edge_i, edge_{i+1})``.

    A quick look at the gap distribution: bursty traces concentrate mass in
    the shortest bins far beyond what an exponential with the same mean
    would.
    """
    gaps = np.asarray(trace.interarrival_times(), dtype=float)
    if gaps.size == 0:
        return [0.0] * (len(bin_edges) - 1)
    hist, _ = np.histogram(gaps, bins=np.asarray(bin_edges, dtype=float))
    return (hist / gaps.size).tolist()
