"""Failure events, raw system-event records, and the failure trace container.

Two layers mirror the paper's data pipeline (Section 4.3):

* :class:`RawEvent` — an unfiltered system-log record (severity, subsystem,
  message), as harvested from the AIX cluster.  Hundreds of these may share
  one root cause.
* :class:`FailureEvent` — a *filtered* critical event: "any event that would
  lead to the immediate failure of a job" running on that node.  These are
  what the simulator replays and the predictor reasons about.

:class:`FailureTrace` stores failure events sorted by time with per-node
indexes, supporting the window queries the trace-based predictor needs
("all failures on this node set in this time window, in time order").
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class Severity(enum.IntEnum):
    """System-log severity levels, ordered by criticality."""

    INFO = 0
    WARNING = 1
    ERROR = 2
    FATAL = 3
    FAILURE = 4

    @property
    def is_critical(self) -> bool:
        """True for the severities the paper's filtration keeps."""
        return self >= Severity.FATAL


@dataclass(frozen=True)
class RawEvent:
    """One unfiltered record from a node's system event log.

    Attributes:
        time: Timestamp in seconds from the trace origin.
        node: Reporting node index.
        severity: Log severity; only FATAL/FAILURE records can become
            :class:`FailureEvent` after filtering.
        subsystem: Originating subsystem (e.g. ``"memory"``, ``"network"``).
        message_id: Template identifier; repeated identical messages from
            one root cause share it.
        root_cause: Hidden ground-truth cause label used by the synthetic
            generator so filtering quality can be measured; real logs would
            not carry it (-1 when unknown).
    """

    time: float
    node: int
    severity: Severity
    subsystem: str = "unknown"
    message_id: int = 0
    root_cause: int = -1


@dataclass(frozen=True)
class FailureEvent:
    """A filtered critical event: a node failure that kills running work.

    Attributes:
        event_id: Unique id within the trace; the predictor's static
            detectability ``p_x`` is keyed on it, so detectability is a
            property of the failure, not of when it is queried.
        time: Failure time in seconds from the trace origin.
        node: Failing node index.
        subsystem: Originating subsystem (for analysis only).
    """

    event_id: int
    time: float
    node: int
    subsystem: str = "unknown"


class FailureTrace:
    """An immutable, time-sorted collection of failure events.

    Provides the two lookups the system needs:

    * :meth:`in_window` — failures on a node set within ``[start, end)``, in
      time order (the predictor's query);
    * :meth:`after` — iteration from a time point (the simulator's replay).
    """

    def __init__(self, events: Iterable[FailureEvent], name: str = "failures") -> None:
        self.name = name
        self._events: List[FailureEvent] = sorted(
            events, key=lambda e: (e.time, e.event_id)
        )
        ids = [e.event_id for e in self._events]
        if len(set(ids)) != len(ids):
            raise ValueError(f"failure trace {name!r} contains duplicate event ids")
        self._by_node: Dict[int, List[FailureEvent]] = {}
        for event in self._events:
            self._by_node.setdefault(event.node, []).append(event)
        self._node_times: Dict[int, List[float]] = {
            node: [e.time for e in evs] for node, evs in self._by_node.items()
        }

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> FailureEvent:
        return self._events[index]

    @property
    def events(self) -> Sequence[FailureEvent]:
        return self._events

    @property
    def nodes(self) -> List[int]:
        """Nodes that fail at least once, ascending."""
        return sorted(self._by_node)

    @property
    def span(self) -> float:
        """Time between the first and last failure (0 for < 2 events)."""
        if len(self._events) < 2:
            return 0.0
        return self._events[-1].time - self._events[0].time

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def for_node(self, node: int) -> Sequence[FailureEvent]:
        """All failures of ``node`` in time order."""
        return self._by_node.get(node, [])

    def in_window(
        self, nodes: Iterable[int], start: float, end: float
    ) -> List[FailureEvent]:
        """Failures hitting any of ``nodes`` in ``[start, end)``, time-sorted.

        This is exactly the predictor's retrieval step: "retrieves all the
        corresponding failures from the log and considers them in order of
        time" (Section 4.3).
        """
        if end < start:
            raise ValueError(f"window end {end} precedes start {start}")
        hits: List[FailureEvent] = []
        # Dedupe and order the node set: a caller passing a node twice must
        # not see its failures twice, and the explicit sort keeps the scan
        # order independent of the caller's container type.
        for node in sorted(set(nodes)):
            times = self._node_times.get(node)
            if not times:
                continue
            lo = bisect.bisect_left(times, start)
            hi = bisect.bisect_left(times, end)
            hits.extend(self._by_node[node][lo:hi])
        hits.sort(key=lambda e: (e.time, e.event_id))
        return hits

    def after(self, time: float) -> List[FailureEvent]:
        """Failures at or after ``time``, in replay order."""
        times = [e.time for e in self._events]
        lo = bisect.bisect_left(times, time)
        return self._events[lo:]

    def truncate(self, end_time: float) -> "FailureTrace":
        """Failures strictly before ``end_time`` as a new trace."""
        return FailureTrace(
            (e for e in self._events if e.time < end_time),
            name=f"{self.name}[<{end_time:.0f}s]",
        )

    def restrict_nodes(self, max_node: int) -> "FailureTrace":
        """Keep only failures of nodes ``< max_node`` (the paper keeps the
        first 128 of 400 machines)."""
        return FailureTrace(
            (e for e in self._events if e.node < max_node),
            name=f"{self.name}[nodes<{max_node}]",
        )

    def interarrival_times(self) -> List[float]:
        """Cluster-wide gaps between consecutive failures (seconds)."""
        return [
            b.time - a.time for a, b in zip(self._events, self._events[1:])
        ]

    def mtbf(self) -> Optional[float]:
        """Cluster-wide mean time between failures, or None if < 2 events."""
        gaps = self.interarrival_times()
        if not gaps:
            return None
        return sum(gaps) / len(gaps)
