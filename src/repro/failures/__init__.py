"""Failure substrate: events, bursty generator, filtering, renewal models."""

from repro.failures.analysis import (
    TraceSummary,
    hourly_histogram,
    per_node_counts,
    summarize_trace,
)
from repro.failures.events import FailureEvent, FailureTrace, RawEvent, Severity
from repro.failures.filtering import (
    FilteringQuality,
    FilterSpec,
    evaluate_filtering,
    filter_raw_log,
)
from repro.failures.generator import (
    AIX_SPEC,
    FailureModelSpec,
    aix_like_trace,
    generate_failure_trace,
    generate_raw_log,
)
from repro.failures.models import (
    RenewalSpec,
    burstiness_coefficient,
    generate_renewal_trace,
)

__all__ = [
    "TraceSummary",
    "hourly_histogram",
    "per_node_counts",
    "summarize_trace",
    "FailureEvent",
    "FailureTrace",
    "RawEvent",
    "Severity",
    "FilteringQuality",
    "FilterSpec",
    "evaluate_filtering",
    "filter_raw_log",
    "AIX_SPEC",
    "FailureModelSpec",
    "aix_like_trace",
    "generate_failure_trace",
    "generate_raw_log",
    "RenewalSpec",
    "burstiness_coefficient",
    "generate_renewal_trace",
]
