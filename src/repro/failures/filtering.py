"""Failure-log filtration (the BG/L-prototype filtering pipeline).

The paper (Section 4.3) reduces a year of raw AIX event logs to 1,021
failures using techniques "similar to those used to filter BG/L failures":

1. keep only the highest-severity records (FATAL / FAILURE);
2. collapse *clusters of events that share a root cause* into one failure.

Root causes are not labelled in real logs, so step 2 is approximated the way
the BG/L filtering study does it: records on the same node within a
*temporal* threshold are one failure (restarted daemons, repeated machine
checks), and — optionally — records across nodes with the same message
template within a *spatial* threshold are one failure (fabric-wide events).

The synthetic raw logs produced by :mod:`repro.failures.generator` carry
hidden ground-truth ``root_cause`` labels, so filtering quality (how close
the recovered trace is to the truth) is measurable; see
:func:`evaluate_filtering`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.failures.events import FailureEvent, FailureTrace, RawEvent, Severity


@dataclass(frozen=True)
class FilterSpec:
    """Thresholds for the two-step filtration.

    Attributes:
        temporal_gap: Records on one node closer than this (seconds) share a
            root cause.  The BG/L study's canonical choice is a few minutes
            to an hour; default 20 min.
        spatial_gap: Records on *different* nodes with the same message
            template closer than this share a root cause; 0 disables
            cross-node merging.
        min_severity: Lowest severity retained by step 1.
    """

    temporal_gap: float = 1200.0
    spatial_gap: float = 60.0
    min_severity: Severity = Severity.FATAL


def filter_raw_log(
    records: Iterable[RawEvent],
    spec: Optional[FilterSpec] = None,
    name: str = "filtered",
) -> FailureTrace:
    """Reduce a raw event log to a failure trace.

    Args:
        records: Raw records in any order.
        spec: Filtration thresholds.
        name: Name for the resulting trace.

    Returns:
        A :class:`FailureTrace` with one event per inferred root cause; the
        event takes the time/node of the cluster's first critical record.
    """
    spec = spec if spec is not None else FilterSpec()
    critical = sorted(
        (r for r in records if r.severity >= spec.min_severity),
        key=lambda r: (r.time, r.node),
    )

    kept: List[RawEvent] = []
    last_on_node: Dict[int, float] = {}
    last_template: Dict[int, float] = {}
    for record in critical:
        prev_node_t = last_on_node.get(record.node)
        if prev_node_t is not None and record.time - prev_node_t < spec.temporal_gap:
            last_on_node[record.node] = record.time  # extend the cluster
            continue
        if spec.spatial_gap > 0:
            prev_tpl_t = last_template.get(record.message_id)
            if prev_tpl_t is not None and record.time - prev_tpl_t < spec.spatial_gap:
                last_template[record.message_id] = record.time
                last_on_node[record.node] = record.time
                continue
        kept.append(record)
        last_on_node[record.node] = record.time
        last_template[record.message_id] = record.time

    events = [
        FailureEvent(
            event_id=i + 1, time=r.time, node=r.node, subsystem=r.subsystem
        )
        for i, r in enumerate(kept)
    ]
    return FailureTrace(events, name=name)


@dataclass(frozen=True)
class FilteringQuality:
    """How well filtration recovered the ground-truth failures.

    Attributes:
        true_failures: Ground-truth root causes with >= 1 critical record.
        recovered: Failures emitted by the filter.
        matched: Recovered failures within ``tolerance`` of a distinct truth
            event on the same node.
        precision: matched / recovered (1.0 when recovered == 0).
        recall: matched / true_failures (1.0 when true_failures == 0).
    """

    true_failures: int
    recovered: int
    matched: int
    precision: float
    recall: float


def evaluate_filtering(
    truth: FailureTrace,
    recovered: FailureTrace,
    tolerance: float = 300.0,
) -> FilteringQuality:
    """Score a filtered trace against ground truth.

    Greedy one-to-one matching in time order: a recovered event matches the
    earliest unmatched truth event on the same node within ``tolerance``
    seconds.
    """
    unmatched: Dict[int, List[float]] = {}
    for event in truth:
        unmatched.setdefault(event.node, []).append(event.time)

    matched = 0
    for event in recovered:
        times = unmatched.get(event.node)
        if not times:
            continue
        best_idx, best_gap = -1, tolerance
        for idx, t in enumerate(times):
            gap = abs(t - event.time)
            if gap <= best_gap:
                best_idx, best_gap = idx, gap
        if best_idx >= 0:
            times.pop(best_idx)
            matched += 1

    true_count = len(truth)
    rec_count = len(recovered)
    return FilteringQuality(
        true_failures=true_count,
        recovered=rec_count,
        matched=matched,
        precision=matched / rec_count if rec_count else 1.0,
        recall=matched / true_count if true_count else 1.0,
    )
