"""Renewal-process failure models (the statistical baselines).

The paper deliberately evaluates on trace-style failures because "typical
statistical failure models are poor indicators of actual system behavior"
(Section 5.1, citing Plank & Elwasif).  To make that claim testable here,
this module provides the classical alternatives — exponential (Poisson) and
Weibull renewal processes per node — so the ablation benchmark can compare
simulation outcomes under trace-like burstiness versus smooth renewal
failures at an identical overall rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.failures.events import FailureEvent, FailureTrace
from repro.sim.rng import substream


@dataclass(frozen=True)
class RenewalSpec:
    """A per-node renewal failure process.

    Attributes:
        nodes: Cluster width.
        rate_per_day: Cluster-wide mean failures per day (matched to the
            trace model so only the *distribution shape* differs).
        shape: Weibull shape ``k``; 1.0 degenerates to exponential
            (memoryless Poisson per node), <1 gives mild clustering through
            a decreasing hazard, >1 gives wear-out behaviour.
    """

    nodes: int = 128
    rate_per_day: float = 2.8
    shape: float = 1.0


def generate_renewal_trace(
    duration: float,
    spec: Optional[RenewalSpec] = None,
    seed: Optional[int] = None,
) -> FailureTrace:
    """Generate failures as independent per-node renewal processes.

    Each node draws inter-failure gaps from a Weibull with shape
    ``spec.shape`` scaled so the cluster-wide rate matches
    ``spec.rate_per_day``.

    Returns:
        A :class:`FailureTrace` named ``renewal-exp`` or ``renewal-weibull``.
    """
    spec = spec if spec is not None else RenewalSpec()
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if spec.shape <= 0:
        raise ValueError(f"Weibull shape must be > 0, got {spec.shape}")
    rng = substream(seed, f"failures.renewal.{spec.shape}")

    node_rate = spec.rate_per_day / spec.nodes / 86400.0  # failures/s/node
    if node_rate <= 0:
        return FailureTrace([], name="renewal-empty")
    mean_gap = 1.0 / node_rate
    # Weibull mean = scale * Gamma(1 + 1/k); solve scale for the target mean.
    from math import gamma

    scale = mean_gap / gamma(1.0 + 1.0 / spec.shape)

    events: List[FailureEvent] = []
    event_id = 1
    for node in range(spec.nodes):
        t = 0.0
        while True:
            gap = float(scale * rng.weibull(spec.shape))
            t += max(gap, 1.0)
            if t >= duration:
                break
            events.append(FailureEvent(event_id=event_id, time=t, node=node))
            event_id += 1

    name = "renewal-exp" if abs(spec.shape - 1.0) < 1e-9 else "renewal-weibull"
    return FailureTrace(events, name=name)


def burstiness_coefficient(trace: FailureTrace) -> Optional[float]:
    """Coefficient of variation of inter-arrival times.

    1.0 for a Poisson process; trace-like bursty failures are markedly
    over-dispersed (CV > 1).  Returns None for traces with < 3 events.
    """
    gaps = trace.interarrival_times()
    if len(gaps) < 2:
        return None
    arr = np.asarray(gaps, dtype=float)
    mean = float(arr.mean())
    if mean <= 0:
        return None
    return float(arr.std(ddof=1) / mean)
