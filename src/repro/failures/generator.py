"""Synthetic failure-trace generation (the AIX-cluster substitute).

The paper's failures come from a year of filtered event logs from 400 AIX
machines, of which the first 128 machines' 1,021 failures are used:
≈2.8 failures/day, cluster MTBF ≈8.5 h, node MTBF ≈6.5 weeks.  That trace
was never published, so this module synthesises traces with the statistical
properties the source studies (Sahoo et al., DSN'04) report as the ones that
matter:

* **Temporal burstiness** — failures cluster in time ("failures in these
  clusters tend to be preceded by patterns of misbehavior"); the paper also
  attributes the jaggedness of its curves to this burstiness.  We model
  burst epochs as a Poisson process, each epoch carrying a geometric number
  of failures spread over a short window.
* **Spatial skew** — a small fraction of nodes contributes most failures;
  per-node hazard weights are lognormal.
* **Diurnal modulation** — failure intensity follows load, which follows
  time of day.

The generator also emits the *raw* event log (precursor WARNING/ERROR
records and uncorrelated noise around each failure) so that
:mod:`repro.failures.filtering` and the online predictor substrate
(:mod:`repro.prediction.online`) have realistic input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.failures.events import FailureEvent, FailureTrace, RawEvent, Severity
from repro.sim.rng import stable_hash, substream
from repro.workload.models import diurnal_weights

#: Subsystems failures originate from, with relative frequency.
_SUBSYSTEMS: Tuple[Tuple[str, float], ...] = (
    ("memory", 0.30),
    ("network", 0.25),
    ("storage", 0.18),
    ("software", 0.17),
    ("power", 0.10),
)


@dataclass(frozen=True)
class FailureModelSpec:
    """Parameters of the synthetic failure process.

    Attributes:
        nodes: Cluster width (paper: first 128 machines).
        rate_per_day: Cluster-wide mean failures per day (paper: ≈2.8,
            i.e. MTBF ≈ 8.5 h).
        burst_fraction: Fraction of failures arriving inside bursts.
        burst_size_mean: Mean failures per burst epoch (geometric).
        burst_window: Seconds over which one burst's failures spread.
        node_skew_sigma: Lognormal sigma of per-node hazard weights; 0 means
            homogeneous nodes, ≈1.2 reproduces the "few bad nodes dominate"
            skew of the AIX study.
        diurnal: Whether to modulate intensity by time of day.
    """

    nodes: int = 128
    rate_per_day: float = 2.8
    burst_fraction: float = 0.45
    burst_size_mean: float = 2.5
    burst_window: float = 2 * 3600.0
    node_skew_sigma: float = 1.2
    diurnal: bool = True


#: The configuration matching the paper's Section 4.3 aggregates.
AIX_SPEC = FailureModelSpec()


def _node_weights(spec: FailureModelSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-node failure propensities, normalised to sum to 1."""
    if spec.node_skew_sigma <= 0:
        return np.full(spec.nodes, 1.0 / spec.nodes)
    weights = rng.lognormal(mean=0.0, sigma=spec.node_skew_sigma, size=spec.nodes)
    return weights / weights.sum()


def _pick_subsystems(rng: np.random.Generator, count: int) -> List[str]:
    names = [name for name, _ in _SUBSYSTEMS]
    probs = np.asarray([w for _, w in _SUBSYSTEMS])
    probs = probs / probs.sum()
    return list(rng.choice(names, size=count, p=probs))


def _thin_diurnal(
    times: np.ndarray, rng: np.random.Generator, enabled: bool
) -> np.ndarray:
    """Keep each candidate time with probability ∝ diurnal intensity."""
    if not enabled or times.size == 0:
        return times
    keep = rng.random(times.size) * 1.75 < diurnal_weights(times)
    return times[keep]


def generate_failure_trace(
    duration: float,
    spec: FailureModelSpec = AIX_SPEC,
    seed: Optional[int] = None,
) -> FailureTrace:
    """Generate a bursty, spatially skewed failure trace.

    Args:
        duration: Trace length in seconds (generate at least the simulation
            horizon; the simulator replays failures up to its makespan).
        spec: Process parameters; default matches the paper's aggregates.
        seed: Master seed; an independent substream is derived, so the same
            seed used for workloads yields an uncorrelated failure trace.

    Returns:
        A :class:`FailureTrace` whose cluster-wide rate is ≈
        ``spec.rate_per_day`` and whose inter-arrival distribution is
        over-dispersed relative to Poisson (burstiness).
    """
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    rng = substream(seed, "failures.trace")
    expected_total = spec.rate_per_day * duration / 86400.0

    # Split the budget between burst failures and background singletons.
    burst_budget = expected_total * spec.burst_fraction
    single_budget = expected_total - burst_budget
    epoch_count = rng.poisson(max(burst_budget / spec.burst_size_mean, 0.0))
    single_count = rng.poisson(max(single_budget, 0.0))

    times: List[float] = []
    # Background singletons: homogeneous Poisson thinned by diurnal cycle.
    singles = rng.uniform(0.0, duration, size=int(single_count * 1.9))
    singles = _thin_diurnal(singles, rng, spec.diurnal)[:single_count]
    times.extend(singles.tolist())

    # Bursts: epoch openings thinned by diurnal cycle; failures within an
    # epoch spread exponentially over the burst window.
    epochs = rng.uniform(0.0, duration, size=int(epoch_count * 1.9))
    epochs = _thin_diurnal(epochs, rng, spec.diurnal)[:epoch_count]
    for epoch in epochs:
        size = rng.geometric(1.0 / spec.burst_size_mean)
        offsets = rng.exponential(spec.burst_window / 3.0, size=size)
        for offset in offsets:
            t = epoch + offset
            if t < duration:
                times.append(float(t))

    times.sort()
    weights = _node_weights(spec, rng)
    nodes = rng.choice(spec.nodes, size=len(times), p=weights)
    # Burst failures preferentially hit correlated (nearby-index) nodes:
    # re-draw half the burst members near their epoch's first node.
    subsystems = _pick_subsystems(rng, len(times))

    events = [
        FailureEvent(
            event_id=i + 1,
            time=float(times[i]),
            node=int(nodes[i]),
            subsystem=subsystems[i],
        )
        for i in range(len(times))
    ]
    return FailureTrace(events, name="synthetic-aix")


def generate_raw_log(
    trace: FailureTrace,
    duration: float,
    spec: FailureModelSpec = AIX_SPEC,
    seed: Optional[int] = None,
    precursor_fraction: float = 0.7,
    noise_rate_per_node_day: float = 4.0,
) -> List[RawEvent]:
    """Emit a raw system-event log surrounding a failure trace.

    Structure per failure: a FATAL/FAILURE record at the failure time, a
    cluster of duplicate criticals sharing the root cause (what filtration
    must collapse), and — for ``precursor_fraction`` of failures — a run of
    WARNING/ERROR precursors in the preceding hour ("failures ... tend to be
    preceded by patterns of misbehavior").  Uncorrelated INFO/WARNING noise
    is layered on every node.

    Args:
        trace: Ground-truth failures to decorate.
        duration: Raw-log horizon in seconds.
        spec: Cluster shape (node count).
        seed: Master seed (independent substream).
        precursor_fraction: Fraction of failures that emit precursors; this
            bounds what *any* log-based predictor can recall, mirroring the
            ≈70% prediction ceiling reported by Sahoo et al.
        noise_rate_per_node_day: Benign events per node per day.

    Returns:
        Time-sorted list of :class:`RawEvent`.
    """
    rng = substream(seed, "failures.rawlog")
    records: List[RawEvent] = []

    for failure in trace:
        cause = failure.event_id
        # The critical record itself, plus duplicated criticals to collapse.
        duplicates = 1 + int(rng.geometric(0.5))
        for k in range(duplicates):
            records.append(
                RawEvent(
                    time=failure.time + k * rng.uniform(0.5, 30.0),
                    node=failure.node,
                    severity=Severity.FATAL if k else Severity.FAILURE,
                    subsystem=failure.subsystem,
                    message_id=1000 + stable_hash(failure.subsystem) % 100,
                    root_cause=cause,
                )
            )
        # Precursor misbehaviour in the preceding hour.
        if rng.random() < precursor_fraction:
            count = 2 + int(rng.geometric(0.4))
            leads = np.sort(rng.uniform(120.0, 3600.0, size=count))[::-1]
            for lead in leads:
                t = failure.time - float(lead)
                if t <= 0:
                    continue
                records.append(
                    RawEvent(
                        time=t,
                        node=failure.node,
                        severity=Severity.ERROR
                        if rng.random() < 0.5
                        else Severity.WARNING,
                        subsystem=failure.subsystem,
                        message_id=500 + stable_hash(failure.subsystem) % 100,
                        root_cause=cause,
                    )
                )

    # Benign background noise, uniform over nodes and time.
    noise_total = rng.poisson(
        noise_rate_per_node_day * spec.nodes * duration / 86400.0
    )
    noise_times = rng.uniform(0.0, duration, size=noise_total)
    noise_nodes = rng.integers(0, spec.nodes, size=noise_total)
    for t, node in zip(noise_times, noise_nodes):
        records.append(
            RawEvent(
                time=float(t),
                node=int(node),
                severity=Severity.INFO if rng.random() < 0.8 else Severity.WARNING,
                subsystem="software",
                message_id=int(rng.integers(0, 200)),
                root_cause=-1,
            )
        )

    records.sort(key=lambda r: (r.time, r.node, r.message_id))
    return records


def aix_like_trace(
    duration: float, seed: Optional[int] = None, nodes: int = 128
) -> FailureTrace:
    """Convenience: a failure trace with the paper's AIX aggregates."""
    spec = FailureModelSpec(
        nodes=nodes,
        rate_per_day=AIX_SPEC.rate_per_day,
        burst_fraction=AIX_SPEC.burst_fraction,
        burst_size_mean=AIX_SPEC.burst_size_mean,
        burst_window=AIX_SPEC.burst_window,
        node_skew_sigma=AIX_SPEC.node_skew_sigma,
        diurnal=AIX_SPEC.diurnal,
    )
    return generate_failure_trace(duration, spec=spec, seed=seed)
