"""Statistical building blocks for synthetic workload and arrival models.

These are the low-level samplers the NASA/SDSC-like generators are composed
from: truncated lognormals for runtimes, skewed discrete samplers for job
sizes, and a sessionised, diurnally-modulated arrival process of the kind
observed in the Parallel Workloads Archive traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def truncated_lognormal(
    rng: np.random.Generator,
    count: int,
    median: float,
    sigma: float,
    minimum: float,
    maximum: float,
) -> np.ndarray:
    """Sample lognormal values clipped into ``[minimum, maximum]``.

    ``median`` parameterises the underlying normal's mean (``mu = ln
    median``), which is far easier to reason about for job runtimes than
    ``mu`` itself.  Clipping (rather than rejection) is used so the sample
    count is exact and mass piles up at the cap the way display-limited
    archive traces do (e.g. NASA's hard 12-hour limit).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not (0 < minimum <= maximum):
        raise ValueError(f"need 0 < minimum <= maximum, got {minimum}, {maximum}")
    values = rng.lognormal(mean=math.log(median), sigma=sigma, size=count)
    return np.clip(values, minimum, maximum)


def calibrate_mean(
    values: np.ndarray,
    target_mean: float,
    minimum: float,
    maximum: float,
    iterations: int = 8,
) -> np.ndarray:
    """Rescale ``values`` multiplicatively so the clipped mean hits a target.

    Clipping after scaling changes the mean again, so the scale factor is
    iterated to a fixed point.  This is how the synthetic logs match the
    Table 1 mean runtimes exactly without distorting distribution shape.
    """
    if target_mean <= 0:
        raise ValueError(f"target_mean must be > 0, got {target_mean}")
    result = np.clip(values, minimum, maximum)
    for _ in range(iterations):
        current = float(result.mean())
        if current <= 0 or abs(current - target_mean) / target_mean < 1e-4:
            break
        result = np.clip(result * (target_mean / current), minimum, maximum)
    return result


@dataclass(frozen=True)
class PowerOfTwoSizes:
    """Sampler over power-of-two job sizes ``2^0 .. 2^k``.

    NASA's iPSC/860 hypercube only supported power-of-two allocations, which
    is why the paper notes the NASA log fragments less than SDSC's.

    Attributes:
        weights: Relative probability of each exponent ``0..len-1``.
    """

    weights: Sequence[float]

    def __post_init__(self) -> None:
        if not self.weights or any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-empty and non-negative")
        if sum(self.weights) <= 0:
            raise ValueError("weights must not sum to zero")

    @property
    def sizes(self) -> List[int]:
        return [2**k for k in range(len(self.weights))]

    @property
    def mean(self) -> float:
        total = sum(self.weights)
        return sum(w * s for w, s in zip(self.weights, self.sizes)) / total

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        probs = np.asarray(self.weights, dtype=float)
        probs = probs / probs.sum()
        return rng.choice(np.asarray(self.sizes), size=count, p=probs)


@dataclass(frozen=True)
class MixedSizes:
    """Sampler mixing power-of-two sizes with arbitrary ("odd") sizes.

    Matches logs from machines without allocation-shape constraints (SDSC's
    SP-2): users still favour powers of two, but a substantial fraction of
    jobs request odd sizes, which drives the temporal fragmentation the
    paper highlights.

    Attributes:
        power_of_two: Sampler used with probability ``p2_fraction``.
        p2_fraction: Probability a job takes a power-of-two size.
        odd_max: Arbitrary sizes are log-uniform over ``[1, odd_max]``.
    """

    power_of_two: PowerOfTwoSizes
    p2_fraction: float
    odd_max: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.p2_fraction <= 1.0:
            raise ValueError(f"p2_fraction must be in [0,1], got {self.p2_fraction}")
        if self.odd_max < 1:
            raise ValueError(f"odd_max must be >= 1, got {self.odd_max}")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        take_p2 = rng.random(count) < self.p2_fraction
        p2 = self.power_of_two.sample(rng, count)
        log_odd = rng.uniform(0.0, math.log(self.odd_max + 1), size=count)
        odd = np.maximum(1, np.floor(np.exp(log_odd))).astype(int)
        return np.where(take_p2, p2, odd)


def diurnal_weights(times_of_day: np.ndarray) -> np.ndarray:
    """Relative arrival intensity by time of day (seconds past midnight).

    A smooth day/night cycle peaking mid-afternoon with a ~4:1 peak-to-
    trough ratio, the canonical shape for interactive-era supercomputer
    submission logs.
    """
    hours = (times_of_day % 86400.0) / 3600.0
    return 1.0 + 0.75 * np.sin((hours - 9.0) * math.pi / 12.0)


def sessionised_arrivals(
    rng: np.random.Generator,
    count: int,
    span: float,
    burstiness: float = 0.5,
    session_size_mean: float = 4.0,
) -> np.ndarray:
    """Generate ``count`` arrival times over ``[0, span]``.

    The process layers three effects seen in real submission logs:

    * a homogeneous backbone (session openings, uniform over the span),
    * *sessions*: geometric-size batches of closely spaced submissions from
      the same user (inter-arrival a few minutes),
    * diurnal modulation via rejection against :func:`diurnal_weights`.

    Args:
        rng: Source of randomness.
        count: Number of arrivals to produce (exact).
        span: Length of the arrival window in seconds.
        burstiness: Fraction of jobs arriving inside sessions (0 = pure
            nonhomogeneous Poisson, 1 = everything batched).
        session_size_mean: Mean jobs per session for the batched fraction.

    Returns:
        Sorted array of ``count`` arrival times in ``[0, span]``.
    """
    if count <= 0:
        return np.empty(0)
    if span <= 0:
        raise ValueError(f"span must be > 0, got {span}")
    if not 0.0 <= burstiness <= 1.0:
        raise ValueError(f"burstiness must be in [0,1], got {burstiness}")

    arrivals: List[float] = []
    # Oversample session openings, thin by diurnal weight, then fill.
    while len(arrivals) < count:
        need = count - len(arrivals)
        openings = rng.uniform(0.0, span, size=max(16, int(need * 2)))
        keep = rng.random(openings.size) * 1.75 < diurnal_weights(openings)
        openings = openings[keep]
        for opening in openings:
            if len(arrivals) >= count:
                break
            arrivals.append(float(opening))
            if rng.random() < burstiness:
                session = 1 + rng.geometric(1.0 / session_size_mean)
                gaps = rng.exponential(180.0, size=session)
                t = opening
                for gap in gaps:
                    if len(arrivals) >= count:
                        break
                    t += gap
                    if t <= span:
                        arrivals.append(float(t))
    return np.sort(np.asarray(arrivals[:count]))
