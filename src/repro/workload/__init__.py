"""Workload substrate: job records, SWF traces, synthetic archive logs."""

from repro.workload.archive import (
    BundleManifest,
    ensure_bundle,
    read_bundle,
    write_bundle,
)
from repro.workload.job import Job, JobLog, WorkloadStats
from repro.workload.swf import SWFParseError, iter_swf, parse_swf, write_swf
from repro.workload.synthetic import (
    BIG_SPEC,
    NASA_SPEC,
    SDSC_SPEC,
    BigClusterSpec,
    WorkloadSpec,
    generate_workload,
    log_by_name,
    nasa_log,
    sdsc_log,
    stream_jobs,
)

__all__ = [
    "BundleManifest",
    "ensure_bundle",
    "read_bundle",
    "write_bundle",
    "Job",
    "JobLog",
    "WorkloadStats",
    "SWFParseError",
    "iter_swf",
    "parse_swf",
    "write_swf",
    "BIG_SPEC",
    "NASA_SPEC",
    "SDSC_SPEC",
    "BigClusterSpec",
    "WorkloadSpec",
    "generate_workload",
    "log_by_name",
    "nasa_log",
    "sdsc_log",
    "stream_jobs",
]
