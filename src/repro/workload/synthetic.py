"""Synthetic stand-ins for the paper's NASA and SDSC job logs.

The paper evaluates on two Parallel Workloads Archive traces (Section 4.3,
Table 1):

* **NASA** — NASA Ames 128-node iPSC/860, 1993.  Power-of-two job sizes
  (hypercube allocation), average size 6.3 nodes, average runtime 381 s,
  maximum runtime 12 h, relatively light load.
* **SDSC** — San Diego Supercomputer Center 128-node IBM RS/6000 SP,
  1998-2000.  Arbitrary ("odd") job sizes, average size 9.7 nodes, average
  runtime 7722 s, maximum 132 h, heavier load and longer jobs.

The archive is network-gated in this environment, so these generators
produce logs with matching Table 1 marginals, heavy-tailed size/runtime
distributions with positive size-runtime correlation, and sessionised
diurnal arrivals.  The arrival span is derived from a target *offered load*
(total work / cluster capacity), so the simulated utilisation lands in the
paper's observed ranges (NASA ≈ 0.55-0.6, SDSC ≈ 0.64-0.72 on 128 nodes).

Real archive files can be substituted at any time via
:func:`repro.workload.swf.parse_swf`; everything downstream only sees a
:class:`~repro.workload.job.JobLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.sim.rng import substream
from repro.workload.job import Job, JobLog
from repro.workload.models import (
    MixedSizes,
    PowerOfTwoSizes,
    calibrate_mean,
    sessionised_arrivals,
    truncated_lognormal,
)

#: Exponent weights tuned so the power-of-two mean is ~6.3 nodes (NASA).
_NASA_P2_WEIGHTS = (0.39, 0.25, 0.15, 0.09, 0.058, 0.032, 0.021, 0.009)

#: Exponent weights for SDSC's power-of-two fraction (skewed small).
_SDSC_P2_WEIGHTS = (0.34, 0.26, 0.19, 0.11, 0.06, 0.03, 0.008, 0.002)


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to synthesise one log.

    Attributes:
        name: Log label (``"nasa"``/``"sdsc"`` for the bundled specs).
        job_count: Number of jobs (the paper uses 10,000 per log).
        mean_runtime: Target average ``e_j`` in seconds (Table 1).
        max_runtime: Hard runtime cap in seconds (Table 1 max).
        min_runtime: Minimum runtime; the paper assumes jobs have "some
            minimum runtime" to avoid degenerate border cases.
        runtime_sigma: Lognormal shape for runtimes (heavier = burstier mix
            of tiny and huge jobs).
        size_runtime_coupling: Strength of the positive correlation between
            job size and runtime (0 = independent).  Real logs show large
            jobs running longer; this is what makes ``E[e_j * n_j]`` exceed
            ``E[e_j] * E[n_j]`` severalfold.
        max_work: Per-job cap on ``e_j * n_j`` in node-seconds.  Archive
            logs contain long jobs and wide jobs but not extreme products of
            both; without the cap, synthetic outliers (wide *and*
            maximum-length) dominate every metric and — unable to survive a
            checkpoint-free run between failures — snowball the
            no-prediction baseline in a way the paper's traces do not.
        offered_load: Target total-work / capacity over the arrival span;
            sets the arrival span.
        nodes: Cluster width used for the offered-load computation.
        burstiness: Fraction of arrivals generated inside sessions.
    """

    name: str
    job_count: int
    mean_runtime: float
    max_runtime: float
    min_runtime: float
    runtime_sigma: float
    size_runtime_coupling: float
    offered_load: float
    max_work: float = float("inf")
    nodes: int = 128
    burstiness: float = 0.5


#: Table 1 "NASA" row, as a generator specification.
NASA_SPEC = WorkloadSpec(
    name="nasa",
    job_count=10_000,
    mean_runtime=381.0,
    max_runtime=12 * 3600.0,
    min_runtime=30.0,
    runtime_sigma=1.9,
    size_runtime_coupling=0.55,
    offered_load=0.62,
    max_work=8.0e5,
)

#: Table 1 "SDSC" row, as a generator specification.
SDSC_SPEC = WorkloadSpec(
    name="sdsc",
    job_count=10_000,
    mean_runtime=7722.0,
    max_runtime=132 * 3600.0,
    min_runtime=60.0,
    runtime_sigma=2.1,
    size_runtime_coupling=0.25,
    offered_load=0.88,
    max_work=2.5e6,
)


def _sample_sizes(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    if spec.name == "nasa":
        sampler = PowerOfTwoSizes(_NASA_P2_WEIGHTS)
        return sampler.sample(rng, spec.job_count)
    if spec.name == "sdsc":
        sampler = MixedSizes(
            power_of_two=PowerOfTwoSizes(_SDSC_P2_WEIGHTS),
            p2_fraction=0.55,
            odd_max=64,
        )
        return sampler.sample(rng, spec.job_count)
    # Generic spec: mixed sizes with a mild power-of-two preference.
    sampler = MixedSizes(
        power_of_two=PowerOfTwoSizes(_SDSC_P2_WEIGHTS),
        p2_fraction=0.5,
        odd_max=max(2, spec.nodes // 2),
    )
    return sampler.sample(rng, spec.job_count)


def _sample_runtimes(
    spec: WorkloadSpec, sizes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Heavy-tailed runtimes, positively coupled to job size, mean-matched."""
    base_median = spec.mean_runtime / np.exp(spec.runtime_sigma**2 / 2.0)
    base_median = max(spec.min_runtime, base_median)
    runtimes = truncated_lognormal(
        rng,
        spec.job_count,
        median=base_median,
        sigma=spec.runtime_sigma,
        minimum=spec.min_runtime,
        maximum=spec.max_runtime,
    )
    # Couple to size: scale by (size / mean size)^coupling, preserving the
    # marginal mean via calibration below.
    mean_size = float(sizes.mean())
    coupling = (sizes / mean_size) ** spec.size_runtime_coupling
    runtimes = runtimes * coupling
    # Calibrate the mean and enforce the per-job work cap jointly: the cap
    # shaves the largest products, so re-calibration is iterated.
    per_job_cap = np.minimum(spec.max_work / sizes, spec.max_runtime)
    for _ in range(6):
        runtimes = calibrate_mean(
            runtimes, spec.mean_runtime, spec.min_runtime, spec.max_runtime
        )
        runtimes = np.minimum(runtimes, per_job_cap)
        mean = float(runtimes.mean())
        if abs(mean - spec.mean_runtime) / spec.mean_runtime < 0.02:
            break
    return np.maximum(runtimes, spec.min_runtime)


def generate_workload(
    spec: WorkloadSpec,
    seed: Optional[int] = None,
    job_count: Optional[int] = None,
) -> JobLog:
    """Synthesise a job log for ``spec``.

    Args:
        spec: Workload specification (use :data:`NASA_SPEC`/:data:`SDSC_SPEC`
            for the paper's logs).
        seed: Master seed; the generator derives an independent substream
            per log name, so NASA and SDSC logs from the same seed are
            statistically independent.
        job_count: Optional override of ``spec.job_count`` (benchmarks use
            smaller logs by default).

    Returns:
        A :class:`JobLog` in arrival order with sizes capped at
        ``spec.nodes``.
    """
    count = spec.job_count if job_count is None else int(job_count)
    if count <= 0:
        raise ValueError(f"job_count must be > 0, got {count}")
    spec = WorkloadSpec(**{**spec.__dict__, "job_count": count})

    rng = substream(seed, f"workload.{spec.name}")
    sizes = np.minimum(_sample_sizes(spec, rng), spec.nodes)
    runtimes = _sample_runtimes(spec, sizes, rng)

    total_work = float((sizes * runtimes).sum())
    span = total_work / (spec.nodes * spec.offered_load)
    arrivals = sessionised_arrivals(
        rng, count, span=span, burstiness=spec.burstiness
    )

    jobs = [
        Job(
            job_id=i + 1,
            arrival_time=float(arrivals[i]),
            size=int(sizes[i]),
            runtime=float(runtimes[i]),
            user_id=int(rng.integers(1, 200)),
            requested_time=float(runtimes[i]),
        )
        for i in range(count)
    ]
    return JobLog(jobs, name=spec.name)


@dataclass(frozen=True)
class BigClusterSpec:
    """A scale-testing workload for clusters far wider than the paper's 128.

    Unlike :class:`WorkloadSpec` this spec is built to be *streamed*
    (:func:`stream_jobs`): arrivals are generated as per-job exponential
    inter-arrival gaps whose mean is each job's work divided by the target
    delivered capacity, so the offered load sits on target over any prefix
    of the stream and a million-job trace never has to exist in memory.

    Attributes:
        name: Label (feeds the RNG substream, so two specs with different
            names draw independent streams from the same master seed).
        nodes: Cluster width the load targets.
        offered_load: Target total-work / capacity over the arrival span.
        mean_runtime: Target average runtime in seconds.
        min_runtime: Runtime floor in seconds.
        max_runtime: Runtime cap in seconds.
        runtime_sigma: Lognormal shape for runtimes.
        size_decay: Geometric decay of the power-of-two size weights;
            smaller means smaller jobs dominate (0.55 gives a mean around
            a few dozen nodes with a tail into the hundreds).
        max_size_fraction: Per-job size cap as a fraction of ``nodes``
            (real schedulers rarely see single jobs spanning the machine).
    """

    name: str = "big"
    nodes: int = 10_000
    offered_load: float = 0.7
    mean_runtime: float = 3600.0
    min_runtime: float = 60.0
    max_runtime: float = 24 * 3600.0
    runtime_sigma: float = 1.6
    size_decay: float = 0.55
    max_size_fraction: float = 0.25


#: Default big-cluster stream used by the ``scale`` benchmark scenario.
BIG_SPEC = BigClusterSpec()


def stream_jobs(
    spec: BigClusterSpec,
    seed: Optional[int] = None,
    job_count: int = 1_000_000,
    chunk: int = 8192,
) -> Iterator[Job]:
    """Stream ``job_count`` jobs in arrival order with O(``chunk``) memory.

    Sizes are powers of two with geometrically decaying weights (capped at
    ``spec.max_size_fraction * spec.nodes``); runtimes are truncated
    lognormals; each job's inter-arrival gap is exponential with mean
    ``work / (nodes * offered_load)``, which keeps arrivals sorted by
    construction and the offered load on target over any prefix — no
    global span computation, so nothing about the stream requires holding
    it in memory.

    Determinism: the stream is a pure function of ``(spec, seed,
    job_count, chunk)`` — draws happen in fixed-size batches, so ``chunk``
    is part of the definition, not a tuning knob to vary per run.

    Args:
        spec: The big-cluster specification.
        seed: Master seed (independent substream per ``spec.name``).
        job_count: Total jobs to yield.
        chunk: Jobs drawn per RNG batch.

    Yields:
        :class:`Job` values with strictly nondecreasing arrival times and
        ids ``1..job_count``.
    """
    if job_count <= 0:
        raise ValueError(f"job_count must be > 0, got {job_count}")
    if chunk <= 0:
        raise ValueError(f"chunk must be > 0, got {chunk}")
    rng = substream(seed, f"workload.{spec.name}.stream")

    max_size = max(1, int(spec.nodes * spec.max_size_fraction))
    exponents = max_size.bit_length()  # sizes 2^0 .. 2^(exponents-1) <= max_size
    sampler = PowerOfTwoSizes(
        tuple(spec.size_decay**k for k in range(exponents))
    )
    median = max(
        spec.min_runtime,
        spec.mean_runtime / float(np.exp(spec.runtime_sigma**2 / 2.0)),
    )
    capacity = spec.nodes * spec.offered_load

    clock = 0.0
    job_id = 1
    remaining = job_count
    while remaining > 0:
        n = min(chunk, remaining)
        sizes = np.minimum(sampler.sample(rng, n), spec.nodes)
        runtimes = truncated_lognormal(
            rng,
            n,
            median=median,
            sigma=spec.runtime_sigma,
            minimum=spec.min_runtime,
            maximum=spec.max_runtime,
        )
        gaps = rng.exponential(sizes * runtimes / capacity)
        users = rng.integers(1, 1000, size=n)
        for i in range(n):
            clock += float(gaps[i])
            runtime = float(runtimes[i])
            yield Job(
                job_id=job_id,
                arrival_time=clock,
                size=int(sizes[i]),
                runtime=runtime,
                user_id=int(users[i]),
                requested_time=runtime,
            )
            job_id += 1
        remaining -= n


def nasa_log(seed: Optional[int] = None, job_count: Optional[int] = None) -> JobLog:
    """The synthetic NASA iPSC/860-like log (Table 1 row 1)."""
    return generate_workload(NASA_SPEC, seed=seed, job_count=job_count)


def sdsc_log(seed: Optional[int] = None, job_count: Optional[int] = None) -> JobLog:
    """The synthetic SDSC SP-2-like log (Table 1 row 2)."""
    return generate_workload(SDSC_SPEC, seed=seed, job_count=job_count)


def log_by_name(
    name: str, seed: Optional[int] = None, job_count: Optional[int] = None
) -> JobLog:
    """Look up a bundled log generator by name (``"nasa"`` or ``"sdsc"``)."""
    generators = {"nasa": nasa_log, "sdsc": sdsc_log}
    try:
        generator = generators[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(generators)}"
        ) from None
    return generator(seed=seed, job_count=job_count)
