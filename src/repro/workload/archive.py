"""Experiment bundles on disk: SWF workloads + failure traces + metadata.

A *bundle* is a directory holding everything needed to rerun an experiment
outside this process (or feed another simulator):

```
<dir>/
  workload.swf        # the job log, Standard Workload Format
  failures.csv        # event_id,time,node,subsystem
  manifest.json       # generator parameters, seed, checksums of intent
```

Bundles serve three purposes: caching expensive synthetic generation,
pinning the exact traces behind a published result, and interoperating —
the SWF half loads into any archive-format tool, and real archive traces
drop into a bundle unchanged.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.failures.events import FailureEvent, FailureTrace
from repro.failures.generator import FailureModelSpec, generate_failure_trace
from repro.workload.job import JobLog
from repro.workload.swf import parse_swf, write_swf
from repro.workload.synthetic import log_by_name

WORKLOAD_FILE = "workload.swf"
FAILURES_FILE = "failures.csv"
MANIFEST_FILE = "manifest.json"

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class BundleManifest:
    """Provenance of a bundle's contents.

    Attributes:
        version: Manifest schema version.
        workload: Log name (``nasa``/``sdsc``/free-form for external logs).
        job_count: Jobs in the workload file.
        failure_count: Events in the failure file.
        seed: Generator seed, or None for externally sourced traces.
        failure_duration: Horizon the failure trace covers, seconds.
        extra: Free-form additional fields.
    """

    version: int
    workload: str
    job_count: int
    failure_count: int
    seed: Optional[int]
    failure_duration: float
    extra: Dict[str, str]

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": self.version,
                "workload": self.workload,
                "job_count": self.job_count,
                "failure_count": self.failure_count,
                "seed": self.seed,
                "failure_duration": self.failure_duration,
                "extra": self.extra,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "BundleManifest":
        data = json.loads(text)
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported bundle manifest version {data.get('version')!r}"
            )
        return cls(
            version=data["version"],
            workload=data["workload"],
            job_count=data["job_count"],
            failure_count=data["failure_count"],
            seed=data.get("seed"),
            failure_duration=data["failure_duration"],
            extra=dict(data.get("extra", {})),
        )


def _write_failures(trace: FailureTrace, path: Path) -> None:
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["event_id", "time", "node", "subsystem"])
        for event in trace:
            writer.writerow([event.event_id, f"{event.time:.3f}", event.node,
                             event.subsystem])


def _read_failures(path: Path, name: str) -> FailureTrace:
    events = []
    with path.open("r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            events.append(
                FailureEvent(
                    event_id=int(row["event_id"]),
                    time=float(row["time"]),
                    node=int(row["node"]),
                    subsystem=row.get("subsystem", "unknown"),
                )
            )
    return FailureTrace(events, name=name)


def write_bundle(
    directory: Union[str, Path],
    log: JobLog,
    failures: FailureTrace,
    seed: Optional[int] = None,
    failure_duration: Optional[float] = None,
    extra: Optional[Dict[str, str]] = None,
) -> BundleManifest:
    """Write a bundle directory (created if needed; files overwritten).

    Returns:
        The manifest that was written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_swf(log, directory / WORKLOAD_FILE, header={"Computer": log.name})
    _write_failures(failures, directory / FAILURES_FILE)
    manifest = BundleManifest(
        version=MANIFEST_VERSION,
        workload=log.name,
        job_count=len(log),
        failure_count=len(failures),
        seed=seed,
        failure_duration=(
            failure_duration
            if failure_duration is not None
            else (failures[-1].time if len(failures) else 0.0)
        ),
        extra=dict(extra or {}),
    )
    (directory / MANIFEST_FILE).write_text(manifest.to_json(), encoding="utf-8")
    return manifest


def read_bundle(
    directory: Union[str, Path]
) -> Tuple[JobLog, FailureTrace, BundleManifest]:
    """Load a bundle directory.

    Raises:
        FileNotFoundError: If any of the three files is missing.
        ValueError: On an unsupported manifest version.
    """
    directory = Path(directory)
    manifest = BundleManifest.from_json(
        (directory / MANIFEST_FILE).read_text(encoding="utf-8")
    )
    log, _ = parse_swf(directory / WORKLOAD_FILE, name=manifest.workload)
    failures = _read_failures(
        directory / FAILURES_FILE, name=f"{manifest.workload}-failures"
    )
    return log, failures, manifest


def ensure_bundle(
    directory: Union[str, Path],
    workload: str,
    job_count: int,
    seed: int,
    failure_duration: float,
    node_count: int = 128,
) -> Tuple[JobLog, FailureTrace, BundleManifest]:
    """Load a matching bundle, or generate + write it first (a disk cache).

    A cached bundle is reused only when its manifest matches the requested
    (workload, job_count, seed) exactly and covers at least the requested
    failure horizon; otherwise it is regenerated in place.
    """
    directory = Path(directory)
    if (directory / MANIFEST_FILE).exists():
        try:
            log, failures, manifest = read_bundle(directory)
            if (
                manifest.workload == workload
                and manifest.job_count == job_count
                and manifest.seed == seed
                and manifest.failure_duration >= failure_duration - 1e-6
            ):
                return log, failures, manifest
        except (ValueError, KeyError, FileNotFoundError):
            pass  # stale or foreign bundle: regenerate below

    log = log_by_name(workload, seed=seed, job_count=job_count)
    failures = generate_failure_trace(
        failure_duration, spec=FailureModelSpec(nodes=node_count), seed=seed
    )
    manifest = write_bundle(
        directory, log, failures, seed=seed, failure_duration=failure_duration
    )
    return log, failures, manifest
