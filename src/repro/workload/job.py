"""Job records and job-log containers.

A :class:`Job` is the *static* description of one submitted job, as it would
appear in a workload trace: arrival (submit) time ``v_j``, size in nodes
``n_j`` and runtime ``e_j`` *excluding* checkpoint overhead — exactly the
quantities the paper's metrics are defined over (Section 3.5).  All mutable
execution state (start times, saved progress, promised probability) lives in
the simulator, not here, so a single log can be replayed under many
configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class Job:
    """One job in a workload trace.

    Attributes:
        job_id: Unique identifier within its log (stable across replays).
        arrival_time: Submit time ``v_j`` in seconds from the log origin.
        size: Number of nodes ``n_j`` the job occupies (no co-scheduling).
        runtime: Execution time ``e_j`` in seconds, excluding checkpoints.
        user_id: Optional submitting-user identifier (SWF field).
        requested_time: Optional user-requested wall time; the paper assumes
            estimates are accurate, so the simulator uses ``runtime``, but
            the field is preserved for trace fidelity.
    """

    job_id: int
    arrival_time: float
    size: int
    runtime: float
    user_id: int = -1
    requested_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"job {self.job_id}: size must be >= 1, got {self.size}")
        if self.runtime <= 0:
            raise ValueError(
                f"job {self.job_id}: runtime must be > 0, got {self.runtime}"
            )
        if self.arrival_time < 0:
            raise ValueError(
                f"job {self.job_id}: arrival must be >= 0, got {self.arrival_time}"
            )

    @property
    def work(self) -> float:
        """Work ``e_j * n_j`` in node-seconds (the paper's unit of work)."""
        return self.runtime * self.size

    def checkpoint_count(self, interval: float) -> int:
        """Number of checkpoint requests issued during ``runtime``.

        Requests occur after every ``interval`` seconds of execution; a
        request that would coincide with (or follow) job completion is never
        issued, hence ``ceil(e_j / I) - 1``.
        """
        if interval <= 0:
            raise ValueError(f"checkpoint interval must be > 0, got {interval}")
        return max(0, int(math.ceil(self.runtime / interval)) - 1)

    def padded_runtime(self, interval: float, overhead: float) -> float:
        """Runtime ``E_j`` including all checkpoints (paper Section 3.3).

        ``E_j = e_j + C * (number of checkpoint requests)`` — the reservation
        length the scheduler books, assuming no checkpoint is skipped.
        """
        return self.runtime + overhead * self.checkpoint_count(interval)


@dataclass
class WorkloadStats:
    """Aggregate characteristics of a job log (paper Table 1)."""

    job_count: int
    mean_size: float
    mean_runtime: float
    max_runtime: float
    total_work: float
    span: float

    @property
    def max_runtime_hours(self) -> float:
        """Max runtime in hours, as Table 1 reports it."""
        return self.max_runtime / 3600.0

    def offered_load(self, nodes: int) -> float:
        """Total work divided by cluster capacity over the arrival span."""
        if self.span <= 0:
            return 0.0
        return self.total_work / (self.span * nodes)


class JobLog:
    """An ordered collection of jobs (a workload trace).

    Jobs are kept sorted by arrival time, which is the order the simulator
    consumes them in.  The container is intentionally list-like and cheap;
    heavyweight analysis lives in :meth:`stats`.
    """

    def __init__(self, jobs: Iterable[Job], name: str = "unnamed") -> None:
        self.name = name
        self._jobs: List[Job] = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        ids = [j.job_id for j in self._jobs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"job log {name!r} contains duplicate job ids")

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    @property
    def jobs(self) -> Sequence[Job]:
        """The jobs in arrival order (read-only view by convention)."""
        return self._jobs

    def truncate(self, max_jobs: int) -> "JobLog":
        """Return a new log with the first ``max_jobs`` arrivals.

        Used by benchmarks to run reduced-size sweeps quickly while keeping
        the arrival process' statistical character.
        """
        return JobLog(self._jobs[:max_jobs], name=f"{self.name}[:{max_jobs}]")

    def scaled_sizes(self, max_size: int) -> "JobLog":
        """Return a copy with sizes clipped to ``max_size`` (cluster width)."""
        clipped = [
            Job(
                job_id=j.job_id,
                arrival_time=j.arrival_time,
                size=min(j.size, max_size),
                runtime=j.runtime,
                user_id=j.user_id,
                requested_time=j.requested_time,
            )
            for j in self._jobs
        ]
        return JobLog(clipped, name=f"{self.name}(<= {max_size} nodes)")

    def stats(self) -> WorkloadStats:
        """Compute the Table 1 aggregates for this log."""
        if not self._jobs:
            return WorkloadStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        sizes = [j.size for j in self._jobs]
        runtimes = [j.runtime for j in self._jobs]
        span = self._jobs[-1].arrival_time - self._jobs[0].arrival_time
        return WorkloadStats(
            job_count=len(self._jobs),
            mean_size=sum(sizes) / len(sizes),
            mean_runtime=sum(runtimes) / len(runtimes),
            max_runtime=max(runtimes),
            total_work=sum(j.work for j in self._jobs),
            span=span,
        )
