"""Standard Workload Format (SWF) reader and writer.

The paper draws its job logs from Feitelson's Parallel Workloads Archive,
whose traces are distributed in SWF: one job per line, 18 whitespace-
separated integer fields, ``;`` comment lines carrying header metadata.
This module implements enough of SWF that the *actual* NASA-iPSC/860 and
SDSC-SP2 archive files can be dropped into the experiment harness in place
of the bundled synthetic logs, plus a writer so synthetic logs can be
exported for use by other tools.

Field reference (1-based, per the archive definition):

====  =======================  ==========================================
 #    name                     use here
====  =======================  ==========================================
 1    job number               ``Job.job_id``
 2    submit time (s)          ``Job.arrival_time``
 3    wait time (s)            ignored (scheduler-dependent)
 4    run time (s)             ``Job.runtime``
 5    allocated processors     ``Job.size``
 8    requested processors     fallback when field 5 is missing (-1)
 9    requested time           ``Job.requested_time``
 12   user id                  ``Job.user_id``
====  =======================  ==========================================

Jobs with unknown (``-1``) or non-positive runtime/size — cancelled or
corrupt records — are skipped, mirroring the standard cleaning step used by
scheduling studies on these traces.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from repro.workload.job import Job, JobLog

#: Number of data fields in a canonical SWF record.
SWF_FIELD_COUNT = 18


class SWFParseError(ValueError):
    """Raised when an SWF line cannot be interpreted."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"SWF line {line_no}: {reason}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line
        self.reason = reason


def _parse_fields(line: str, line_no: int) -> List[float]:
    parts = line.split()
    if len(parts) < 5:
        raise SWFParseError(line_no, line, "fewer than 5 fields")
    try:
        return [float(p) for p in parts]
    except ValueError as exc:
        raise SWFParseError(line_no, line, f"non-numeric field ({exc})") from None


def iter_swf(
    source: Union[str, Path, TextIO],
    max_jobs: Optional[int] = None,
    header: Optional[Dict[str, str]] = None,
) -> Iterator[Job]:
    """Stream the valid jobs of an SWF file in file order, O(1) memory.

    The streaming core behind :func:`parse_swf` — use it directly to walk
    a multi-million-line archive trace (or a synthetic export of one)
    without materialising a job list.  Tolerates what real archive files
    contain beyond the canonical format: blank lines and full-line ``;``
    comments anywhere in the file (not just a leading header block), and
    trailing ``; ...`` comments on data lines.

    Args:
        source: Path to an ``.swf`` file, or an open text stream.
        max_jobs: Optional cap on accepted (valid) jobs.
        header: Optional dict the ``; Key: value`` header entries are
            written into as they are encountered (an entry is only
            guaranteed present once the line carrying it has been
            consumed).

    Yields:
        :class:`Job` records, skipping cancelled/corrupt lines (the
        standard cleaning step).

    Raises:
        SWFParseError: On malformed data lines.
    """
    if isinstance(source, (str, Path)):
        with Path(source).open("r", encoding="utf-8", errors="replace") as fh:
            yield from iter_swf(fh, max_jobs=max_jobs, header=header)
        return

    accepted = 0
    for line_no, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            body = line.lstrip("; ")
            if header is not None and ":" in body:
                key, _, value = body.partition(":")
                header[key.strip()] = value.strip()
            continue
        # Trailing comment on a data line: everything after ';' is noise.
        data = line.split(";", 1)[0].strip()
        if not data:
            continue
        fields = _parse_fields(data, line_no)
        job = _job_from_fields(fields)
        if job is None:
            continue  # cancelled / corrupt record: standard cleaning step
        yield job
        accepted += 1
        if max_jobs is not None and accepted >= max_jobs:
            return


def parse_swf(
    source: Union[str, Path, TextIO],
    name: Optional[str] = None,
    max_jobs: Optional[int] = None,
) -> Tuple[JobLog, Dict[str, str]]:
    """Parse an SWF file or stream into a :class:`JobLog`.

    A materialising wrapper over :func:`iter_swf`; prefer the iterator
    for traces too large to hold as a list.

    Args:
        source: Path to an ``.swf`` file, or an open text stream.
        name: Log name; defaults to the file stem or ``"swf"``.
        max_jobs: Optional cap on accepted (valid) jobs.

    Returns:
        ``(log, header)`` where ``header`` maps SWF header keys (the
        ``; Key: value`` comment lines) to their string values.

    Raises:
        SWFParseError: On malformed data lines.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open("r", encoding="utf-8", errors="replace") as fh:
            return parse_swf(fh, name=name or path.stem, max_jobs=max_jobs)

    header: Dict[str, str] = {}
    jobs: List[Job] = list(iter_swf(source, max_jobs=max_jobs, header=header))
    return JobLog(jobs, name=name or "swf"), header


def _job_from_fields(fields: List[float]) -> Optional[Job]:
    """Build a Job from SWF fields; None for records that must be skipped."""

    def get(idx: int, default: float = -1.0) -> float:
        return fields[idx] if idx < len(fields) else default

    job_id = int(get(0))
    submit = get(1)
    runtime = get(3)
    size = int(get(4))
    if size <= 0:
        size = int(get(7))  # fall back to requested processors
    requested = get(8)
    user = int(get(11))
    if runtime <= 0 or size <= 0 or submit < 0:
        return None
    return Job(
        job_id=job_id,
        arrival_time=float(submit),
        size=size,
        runtime=float(runtime),
        user_id=user,
        requested_time=float(requested) if requested > 0 else None,
    )


def write_swf(
    log: JobLog,
    target: Union[str, Path, TextIO],
    header: Optional[Dict[str, str]] = None,
) -> None:
    """Write a :class:`JobLog` as SWF.

    Fields the library does not model are emitted as ``-1`` (the SWF
    convention for "unknown").  Times are written as integers, matching the
    archive's second-granularity convention; sub-second synthetic arrival
    times are rounded.
    """
    if isinstance(target, (str, Path)):
        with Path(target).open("w", encoding="utf-8") as fh:
            write_swf(log, fh, header=header)
        return

    header = dict(header or {})
    header.setdefault("Computer", "synthetic")
    header.setdefault("Note", f"exported by probqos from log {log.name!r}")
    for key, value in header.items():
        target.write(f"; {key}: {value}\n")
    for job in log:
        fields = [-1] * SWF_FIELD_COUNT
        fields[0] = job.job_id
        fields[1] = int(round(job.arrival_time))
        fields[2] = -1  # wait time: scheduler-dependent
        fields[3] = int(round(job.runtime))
        fields[4] = job.size
        fields[7] = job.size
        fields[8] = int(round(job.requested_time)) if job.requested_time else -1
        fields[10] = 1  # status: completed
        fields[11] = job.user_id
        target.write(" ".join(str(f) for f in fields) + "\n")


def roundtrip(log: JobLog) -> JobLog:
    """Serialize then re-parse a log (testing helper; must be lossless for
    the fields the library models, up to second rounding of times)."""
    buffer = io.StringIO()
    write_swf(log, buffer)
    buffer.seek(0)
    parsed, _ = parse_swf(buffer, name=log.name)
    return parsed
