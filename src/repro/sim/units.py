"""Time-domain and probability type aliases for lint-visible signatures.

The simulator runs on two clocks that must never mix: *simulated* seconds
(the ``EventLoop``'s virtual timeline, what every deadline, MTBF, and
checkpoint interval is denominated in) and *wall* seconds (host time, which
only the observability layer may read).  Both are ``float`` at runtime —
these aliases cost nothing and change no behaviour — but annotating an API
boundary with :data:`SimSeconds` or :data:`WallSeconds` declares which
clock it belongs to, and the flow linter (rule QOS302) propagates that
declaration through assignments to flag a wall-clock duration flowing into
a simulated-time parameter, or vice versa.

:data:`Probability` plays the same role for the [0, 1] domain: parameters
and attributes annotated with it are seeded to [0, 1] by the interval
analysis behind rule QOS301, which then flags arithmetic that can provably
leave the unit interval before reaching ``combine_independent`` or a
``QoSGuarantee``.

Use the alias at API boundaries (signatures, dataclass fields); local
variables pick the domain up by flow, not by annotation.
"""

from __future__ import annotations

#: A duration or timestamp on the simulator's virtual clock.
SimSeconds = float

#: A duration or timestamp on the host's real clock (repro.obs territory).
WallSeconds = float

#: A value contractually confined to the closed unit interval [0, 1].
Probability = float

__all__ = ["SimSeconds", "WallSeconds", "Probability"]
