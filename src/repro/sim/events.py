"""Event taxonomy for the trace-driven cluster simulator.

The paper (Section 4.1) enumerates seven event kinds processed by its
event-driven simulator:

1. *arrival* events — a job is submitted and negotiation begins;
2. *start* events — a scheduled job begins executing on its partition;
3. *finish* events — a job completes its remaining work;
4. *failure* events — a node fails, killing any job running on it;
5. *recovery* events — a failed node becomes available again;
6. *checkpoint start* events — a job begins writing a checkpoint;
7. *checkpoint finish* events — a checkpoint completes and becomes durable.

This module defines those kinds plus two bookkeeping kinds used internally
(checkpoint *requests*, which the cooperative policy may skip before a
checkpoint ever starts, and *wakeups* used to re-test start conditions).

Ordering: events are processed in time order; ties are broken by an explicit
per-kind priority (see :data:`TIE_BREAK_ORDER`) and then by insertion order,
so simulations are fully deterministic.  The tie-break order encodes the
semantics chosen for simultaneous events: completions and recoveries free
resources *before* arrivals and starts observe the cluster, and a failure at
the same instant as a finish does not kill the finished job.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, Mapping, Optional

from repro.sim.units import SimSeconds


class EventKind(enum.Enum):
    """The kinds of events the cluster simulator processes."""

    #: A checkpoint write completes; saved progress becomes durable.
    CHECKPOINT_FINISH = "checkpoint_finish"
    #: A job completes its final piece of work and leaves the system.
    FINISH = "finish"
    #: A previously failed node becomes available again.
    RECOVERY = "recovery"
    #: A node fails; any job running on it is killed.
    FAILURE = "failure"
    #: A job is submitted; deadline negotiation happens here.
    ARRIVAL = "arrival"
    #: A job's reservation matured; attempt to start it.
    START = "start"
    #: A job reaches a checkpoint request point (may be skipped).
    CHECKPOINT_REQUEST = "checkpoint_request"
    #: A checkpoint write begins (job progress pauses for the overhead C).
    CHECKPOINT_START = "checkpoint_start"
    #: Internal: re-evaluate pending starts after resources changed.
    WAKEUP = "wakeup"
    #: Internal: snapshot the observability registry (repro.obs) at a fixed
    #: sim-time cadence.  Never scheduled unless a sampler is attached.
    OBS_SAMPLE = "obs_sample"


#: Processing order for events that share a timestamp.  Lower comes first.
#:
#: Rationale, in order:
#:   * checkpoint/job completions first so that a simultaneous failure does
#:     not destroy work that semantically finished at that instant;
#:   * recoveries next so arrivals/starts observe recovered nodes;
#:   * failures before arrivals/starts so that new work is never placed on a
#:     node that is down "as of" this instant;
#:   * wakeups last so they see the final resource state of the timestep.
#: Read-only: a mutation here would silently reorder simultaneous events
#: for every simulation in the process (lint rule QOS107).
TIE_BREAK_ORDER: Mapping[EventKind, int] = MappingProxyType(
    {
        EventKind.CHECKPOINT_FINISH: 0,
        EventKind.FINISH: 1,
        EventKind.RECOVERY: 2,
        EventKind.FAILURE: 3,
        EventKind.ARRIVAL: 4,
        EventKind.START: 5,
        EventKind.CHECKPOINT_REQUEST: 6,
        EventKind.CHECKPOINT_START: 7,
        EventKind.WAKEUP: 8,
        # Samples observe the final state of the timestep, after wakeups.
        EventKind.OBS_SAMPLE: 9,
    }
)


@dataclass
class Event:
    """A scheduled occurrence in simulated time.

    Events are created through :meth:`repro.sim.engine.EventLoop.schedule`;
    user code normally only inspects ``time``, ``kind`` and ``payload``.

    Attributes:
        time: Simulated timestamp (seconds) at which the event fires.
        kind: The :class:`EventKind` dispatched to the matching handler.
        payload: Free-form keyword data for the handler (job, node id, ...).
        seq: Insertion sequence number; with :data:`TIE_BREAK_ORDER` this
            makes processing order total and deterministic.
        cancelled: Lazily-deleted flag; cancelled events are skipped when
            popped rather than removed from the heap.
    """

    time: SimSeconds
    kind: EventKind
    payload: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0
    cancelled: bool = False
    #: Set by the owning loop so it can keep an O(1) live-event count;
    #: cleared once the event leaves the heap.  Not part of the public API.
    on_cancel: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )

    def cancel(self) -> None:
        """Mark the event so the loop discards it instead of dispatching."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()

    def sort_key(self) -> tuple:
        """Total ordering key: (time, per-kind tie-break, insertion order)."""
        return (self.time, TIE_BREAK_ORDER[self.kind], self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event {self.kind.value} @ {self.time:.1f}{state} {self.payload}>"
