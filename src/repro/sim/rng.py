"""Seeded randomness utilities.

Every stochastic component in the library (workload synthesis, failure
synthesis, detectability assignment, placement randomisation) draws from a
:class:`numpy.random.Generator` derived from an explicit seed.  To keep
components independent — so, for example, changing the workload seed never
perturbs the failure trace — each subsystem derives its own child stream via
:func:`substream` with a stable string tag.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default master seed used across the library when none is supplied.
DEFAULT_SEED = 20050628  # DSN 2005 conference dates.


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a Generator from a seed, an existing Generator, or the default.

    Passing an existing Generator returns it unchanged (shared stream);
    passing ``None`` uses :data:`DEFAULT_SEED` so library behaviour is
    reproducible by default rather than nondeterministic by default.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(int(seed))


def substream(seed: SeedLike, tag: str) -> np.random.Generator:
    """Derive an independent child Generator from ``(seed, tag)``.

    The derivation hashes the tag into the seed material, so distinct tags
    yield statistically independent streams and the mapping is stable across
    processes and Python versions (unlike ``hash``).

    Args:
        seed: Master seed (int or None; a Generator is not accepted here
            because a child stream must be derivable from *values*, not
            stateful objects).
        tag: Stable subsystem label, e.g. ``"workload.sdsc"``.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError("substream requires an integer seed, not a Generator")
    if seed is None:
        seed = DEFAULT_SEED
    digest = hashlib.sha256(f"{int(seed)}:{tag}".encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)


def stable_hash(key: str) -> int:
    """Deterministic 64-bit hash of a string, stable across processes.

    The builtin ``hash`` is salted per interpreter process
    (``PYTHONHASHSEED``), so values derived from it — message-template
    buckets, tie-breaks — silently differ between two runs of the same
    experiment.  This digest-based replacement is what sim-layer code must
    use instead (enforced by lint rule QOS110).
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def stable_uniform(key: str, seed: Optional[int] = None) -> float:
    """Deterministic uniform draw in [0, 1) keyed by a string.

    Used for per-entity attributes that must be reproducible regardless of
    generation order — e.g. the static detectability ``p_x`` the paper
    assigns to each failure event (Section 4.3): the value depends only on
    the failure's identity and the seed, never on query order.
    """
    if seed is None:
        seed = DEFAULT_SEED
    digest = hashlib.sha256(f"{int(seed)}|{key}".encode("utf-8")).digest()
    # 53 bits -> exactly representable double in [0, 1).
    return int.from_bytes(digest[:7], "little") % (1 << 53) / float(1 << 53)
