"""Event queue backends for the simulation engine.

The :class:`~repro.sim.engine.EventLoop` orders events by the total key
``(time, tie-break, insertion seq)`` (see :mod:`repro.sim.events`).  Any
correct priority queue therefore dispatches the *exact same sequence* —
the backend is purely a performance choice, and the property tests in
``tests/sim/test_calendar_queue.py`` hold the two implementations here to
bit-identical behaviour over randomised schedules.

* :class:`HeapEventQueue` — the seed implementation: one binary heap,
  O(log n) push/pop.  Simple and unbeatable at paper scale (hundreds of
  pending events); kept as the ``--event-loop heap`` fallback and as the
  oracle for the equivalence tests.

* :class:`CalendarEventQueue` — a calendar queue (R. Brown, CACM 1988):
  events hash by ``floor(time / width)`` into a ring of ``nbuckets``
  sorted buckets spanning one "year" of simulated time.  With the bucket
  width tracking the mean event spacing, push and pop touch O(1) items
  amortised regardless of queue depth, which is what keeps a million-job
  replay flat while the heap pays log(pending) per operation.  The ring
  doubles/halves (with a width re-estimate from the live time span) when
  the item count drifts out of band.

Cancellation stays lazy in both backends: cancelled events are purged
when they surface at a bucket/heap head, never searched for.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from typing import List, Optional, Protocol, Tuple

from repro.sim.events import Event

#: The engine's total event ordering: (time, tie-break rank, insertion seq).
SortKey = Tuple[float, int, int]

#: One stored queue entry.  Keys are unique (the seq component), so tuple
#: comparison never falls through to comparing events.
QueueItem = Tuple[SortKey, Event]


class EventQueue(Protocol):
    """What the engine needs from a queue backend."""

    def push(self, event: Event) -> None:
        """Insert an event (its ``sort_key()`` is the priority)."""

    def pop(self) -> Optional[Event]:
        """Remove and return the minimal live event; None when drained."""

    def peek(self) -> Optional[Event]:
        """The minimal live event without removing it; None when drained."""


class HeapEventQueue:
    """Single binary heap: the seed backend and equivalence oracle."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[QueueItem] = []

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.sort_key(), event))

    def peek(self) -> Optional[Event]:
        while self._heap:
            event = self._heap[0][1]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event
        return None

    def pop(self) -> Optional[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)[1]
            if event.cancelled:
                continue
            return event
        return None


class CalendarEventQueue:
    """Bucketed calendar queue with O(1) amortised push/pop.

    Invariants:

    * every stored item lives in bucket ``floor(time / width) % nbuckets``
      for the *current* width (resizes redistribute everything);
    * buckets are individually sorted by full key, so the earliest item of
      a bucket is always at index 0 once cancelled heads are purged;
    * ``_cursor`` never exceeds the virtual bucket of the minimal live
      item — pops advance it, and pushes are monotone in engine time, so
      a scan restarted at the cursor can never miss an event.
    """

    __slots__ = ("_buckets", "_nbuckets", "_width", "_count", "_cursor", "_head")

    #: Ring floor; below this, resizing churn outweighs any bucket gain.
    MIN_BUCKETS = 16

    def __init__(self, width: float = 1.0) -> None:
        if width <= 0.0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        self._nbuckets = self.MIN_BUCKETS
        self._buckets: List[List[QueueItem]] = [[] for _ in range(self._nbuckets)]
        self._width = float(width)
        #: Stored items, including cancelled ones not yet purged.
        self._count = 0
        #: Virtual (un-wrapped) bucket index the year scan resumes from.
        self._cursor = 0
        #: Cached minimal item from the last scan; invalidated by resizes
        #: and superseding pushes, revalidated against ``cancelled`` on use.
        self._head: Optional[QueueItem] = None

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def _virtual_bucket(self, time: float) -> int:
        return math.floor(time / self._width)

    def push(self, event: Event) -> None:
        key = event.sort_key()
        item = (key, event)
        vb = self._virtual_bucket(key[0])
        insort(self._buckets[vb % self._nbuckets], item)
        self._count += 1
        if vb < self._cursor:
            # A peek may have parked the cursor past this event's slot (the
            # clock has not advanced, so earlier times are still schedulable);
            # pull it back or the year scan would surface later events first.
            self._cursor = vb
        head = self._head
        if head is not None and key < head[0]:
            self._head = item
        if self._count > self._nbuckets * 2:
            self._resize()

    def peek(self) -> Optional[Event]:
        head = self._head
        if head is not None and not head[1].cancelled:
            return head[1]
        self._head = self._scan()
        return self._head[1] if self._head is not None else None

    def pop(self) -> Optional[Event]:
        head = self._head
        if head is None or head[1].cancelled:
            head = self._scan()
        self._head = None
        if head is None:
            return None
        self._remove_min(head)
        if self._count < self._nbuckets // 2 and self._nbuckets > self.MIN_BUCKETS:
            self._resize()
        return head[1]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _scan(self) -> Optional[QueueItem]:
        """Locate the minimal live item and park the cursor on its year slot.

        One lap over the ring checks each physical bucket for items of the
        virtual bucket it currently fronts (a sorted bucket's head is its
        earliest item, so one head test per bucket suffices).  An empty lap
        means the next event lies beyond the current year: fall back to a
        direct minimum over all bucket heads and jump the cursor there.
        """
        buckets = self._buckets
        nbuckets = self._nbuckets
        vb = self._cursor
        for _ in range(nbuckets):
            bucket = buckets[vb % nbuckets]
            while bucket and bucket[0][1].cancelled:
                del bucket[0]
                self._count -= 1
            if bucket:
                item = bucket[0]
                if self._virtual_bucket(item[0][0]) <= vb:
                    self._cursor = vb
                    return item
            vb += 1
        best: Optional[QueueItem] = None
        for bucket in buckets:
            while bucket and bucket[0][1].cancelled:
                del bucket[0]
                self._count -= 1
            if bucket and (best is None or bucket[0][0] < best[0]):
                best = bucket[0]
        if best is None:
            return None
        self._cursor = self._virtual_bucket(best[0][0])
        return best

    def _remove_min(self, item: QueueItem) -> None:
        """Remove a known-minimal live item from its bucket.

        Everything sorted before the global live minimum in its bucket is
        necessarily cancelled, so purge-from-the-front finds it without a
        search.
        """
        bucket = self._buckets[self._virtual_bucket(item[0][0]) % self._nbuckets]
        while bucket:
            head = bucket[0]
            del bucket[0]
            self._count -= 1
            if head is item:
                return
        raise RuntimeError("calendar queue invariant broken: head not in its bucket")

    def _resize(self) -> None:
        """Re-bucket all live items; drop cancelled ones while at it.

        The new ring holds ~1 live item per bucket and the width is set to
        the mean spacing over the live time span, so the active year covers
        the whole queue.  Ordering is untouched — the width only decides
        *where* items sit, never *when* they surface.
        """
        items: List[QueueItem] = []
        for bucket in self._buckets:
            for item in bucket:
                if not item[1].cancelled:
                    items.append(item)
        count = len(items)
        nbuckets = self.MIN_BUCKETS
        while nbuckets < count:
            nbuckets *= 2
        if count >= 2:
            tmin = min(item[0][0] for item in items)
            tmax = max(item[0][0] for item in items)
            span = tmax - tmin
            if span > 0.0:
                self._width = span / count
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        width = self._width
        for item in items:
            self._buckets[math.floor(item[0][0] / width) % nbuckets].append(item)
        for bucket in self._buckets:
            bucket.sort()
        self._count = count
        self._head = None
        if items:
            self._cursor = self._virtual_bucket(min(item[0][0] for item in items))
        else:
            self._cursor = 0


#: Queue backends selectable via ``SystemConfig.event_loop`` / ``--event-loop``.
EVENT_QUEUE_KINDS: Tuple[str, ...] = ("heap", "calendar")


def make_event_queue(kind: str) -> EventQueue:
    """Instantiate a queue backend by name (one of :data:`EVENT_QUEUE_KINDS`)."""
    if kind == "heap":
        return HeapEventQueue()
    if kind == "calendar":
        return CalendarEventQueue()
    raise ValueError(
        f"event queue must be one of {EVENT_QUEUE_KINDS}, got {kind!r}"
    )
