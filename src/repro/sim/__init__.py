"""Discrete-event simulation substrate (engine, events, seeded RNG)."""

from repro.sim.engine import EventLoop, SimulationError
from repro.sim.events import Event, EventKind, TIE_BREAK_ORDER
from repro.sim.rng import (
    DEFAULT_SEED,
    make_rng,
    stable_hash,
    stable_uniform,
    substream,
)

__all__ = [
    "EventLoop",
    "SimulationError",
    "Event",
    "EventKind",
    "TIE_BREAK_ORDER",
    "DEFAULT_SEED",
    "make_rng",
    "stable_hash",
    "stable_uniform",
    "substream",
]
