"""Discrete-event simulation substrate (engine, events, seeded RNG)."""

from repro.sim.calendar_queue import (
    EVENT_QUEUE_KINDS,
    CalendarEventQueue,
    HeapEventQueue,
    make_event_queue,
)
from repro.sim.engine import EventLoop, SimulationError
from repro.sim.events import Event, EventKind, TIE_BREAK_ORDER
from repro.sim.rng import (
    DEFAULT_SEED,
    make_rng,
    stable_hash,
    stable_uniform,
    substream,
)

__all__ = [
    "EVENT_QUEUE_KINDS",
    "CalendarEventQueue",
    "HeapEventQueue",
    "make_event_queue",
    "EventLoop",
    "SimulationError",
    "Event",
    "EventKind",
    "TIE_BREAK_ORDER",
    "DEFAULT_SEED",
    "make_rng",
    "stable_hash",
    "stable_uniform",
    "substream",
]
