"""A small, deterministic discrete-event simulation engine.

The engine is a classic event loop: pending
:class:`~repro.sim.events.Event` objects ordered by
``(time, kind tie-break, insertion sequence)``.  Handlers are registered per
:class:`~repro.sim.events.EventKind` and invoked with the event; handlers may
schedule or cancel further events.

The pending-event store is pluggable (``EventLoop(queue=...)``): the
default is the seed binary heap, and big-cluster runs select the
calendar queue (see :mod:`repro.sim.calendar_queue`) for O(1) amortised
scheduling at million-event depth.  Both backends honour the same total
ordering, so the dispatched sequence — and therefore every simulation
trajectory — is bit-identical across them.

Design notes
------------
* **Determinism.**  Given the same inputs (workload, failure trace, seeds)
  two runs produce identical event sequences.  All tie-breaking is explicit;
  no iteration order over sets or dicts ever influences scheduling.
* **Cancellation** is lazy: cancelled events stay in the queue and are
  skipped when popped.  This keeps cancellation O(1) and is the standard
  approach for simulators whose events are frequently superseded (e.g. a
  job's finish event is cancelled when a node failure kills the job).
* **Monotonic time.**  Scheduling an event in the past raises
  :class:`SimulationError`; this catches logic bugs early instead of silently
  reordering history.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.obs.prof import NULL_PROFILER, Profiler, Zone
from repro.obs.registry import NULL_REGISTRY, Counter, Histogram, MetricsRegistry
from repro.sim.calendar_queue import EVENT_QUEUE_KINDS, EventQueue, make_event_queue
from repro.sim.events import Event, EventKind
from repro.sim.units import SimSeconds

Handler = Callable[[Event], None]


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (past events, missing handlers...)."""


class EventLoop:
    """Deterministic event loop with per-kind handler dispatch.

    Example:
        >>> loop = EventLoop()
        >>> seen = []
        >>> loop.register(EventKind.WAKEUP, lambda ev: seen.append(ev.time))
        >>> _ = loop.schedule(5.0, EventKind.WAKEUP)
        >>> _ = loop.schedule(1.0, EventKind.WAKEUP)
        >>> loop.run()
        >>> seen
        [1.0, 5.0]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        queue: str = "heap",
        profiler: Optional[Profiler] = None,
    ) -> None:
        """Args:
            start_time: Initial simulated clock.
            registry: Optional obs registry (see class docstring).
            queue: Pending-event store, one of
                :data:`~repro.sim.calendar_queue.EVENT_QUEUE_KINDS` —
                ``"heap"`` (default, the seed backend) or ``"calendar"``
                (O(1) amortised at big-cluster depth).  Both dispatch the
                exact same event sequence.
            profiler: Optional hierarchical profiler
                (:mod:`repro.obs.prof`); when live, each dispatched event
                runs inside a per-kind ``sim.engine.dispatch.*`` zone and
                advances the profiler's sim-time bucket clock.
        """
        self._now = float(start_time)
        self._queue: EventQueue = make_event_queue(queue)
        self._queue_kind = queue
        self._seq = 0
        self._live = 0
        self._handlers: Dict[EventKind, Handler] = {}
        self._processed = 0
        self._running = False
        self._stopped = False
        # Observability (see repro.obs): per-kind dispatch counters, handler
        # wall-clock timers, and per-kind live-event counts.  All of it is
        # gated on one bool so the default NullRegistry costs a single
        # attribute test per event.
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._obs = self._registry.enabled
        self._dispatch_counters: Dict[EventKind, Counter] = {}
        self._handler_timers: Dict[EventKind, Histogram] = {}
        self._live_by_kind: Dict[EventKind, int] = {}
        # Profiling (repro.obs.prof): per-kind dispatch zones, gated on one
        # bool exactly like the registry so the NULL_PROFILER default costs
        # a single attribute test per event.
        self._profiler = profiler if profiler is not None else NULL_PROFILER
        self._prof = self._profiler.enabled
        self._dispatch_zones: Dict[EventKind, Zone] = {}
        # Dispatch counting for the span layer (repro.obs.trace): a plain
        # per-kind dict, cheaper than registry counters and available even
        # without a registry.  Costs one bool test per event when off.
        self._count_dispatch = False
        self._dispatch_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimSeconds:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def queue_kind(self) -> str:
        """The configured queue backend (``"heap"`` or ``"calendar"``)."""
        return self._queue_kind

    @property
    def processed_events(self) -> int:
        """Number of events dispatched so far (excludes cancelled)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter maintained on schedule/cancel/dispatch, instead of
        a scan over the heap.
        """
        return self._live

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty.

        Purges cancelled events off the queue head as a side effect, so
        the cost of lazy cancellation is paid once per cancelled event
        rather than on every peek; a peek with a live head is O(1).
        """
        event = self._queue.peek()
        return event.time if event is not None else None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def register(self, kind: EventKind, handler: Handler) -> None:
        """Bind ``handler`` to ``kind``, replacing any previous binding."""
        self._handlers[kind] = handler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, time: SimSeconds, kind: EventKind, **payload: Any
    ) -> Event:
        """Schedule an event at absolute simulated ``time``.

        Args:
            time: Absolute timestamp; must be >= :attr:`now`.
            kind: Event kind used for handler dispatch and tie-breaking.
            **payload: Arbitrary keyword data stored on the event.

        Returns:
            The scheduled :class:`Event`; keep it to :meth:`Event.cancel`.

        Raises:
            SimulationError: If ``time`` precedes the current time.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {kind.value} at t={time} before now={self._now}"
            )
        event = Event(time=float(time), kind=kind, payload=dict(payload), seq=self._seq)
        if self._obs:
            self._registry.counter("sim.engine.scheduled").inc()
            self._live_by_kind[kind] = self._live_by_kind.get(kind, 0) + 1
            event.on_cancel = lambda k=kind: self._on_cancel_kind(k)
        else:
            event.on_cancel = self._on_cancel
        self._seq += 1
        self._live += 1
        self._queue.push(event)
        return event

    def schedule_in(
        self, delay: SimSeconds, kind: EventKind, **payload: Any
    ) -> Event:
        """Schedule an event ``delay`` seconds after the current time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {kind.value}")
        return self.schedule(self._now + delay, kind, **payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the loop stop after the current event completes."""
        self._stopped = True

    def step(self) -> Optional[Event]:
        """Dispatch the next live event; returns it, or None if drained."""
        event = self._queue.pop()
        if event is None:
            return None
        # Off the queue: a late cancel() must not touch the live count.
        event.on_cancel = None
        self._live -= 1
        self._now = event.time
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise SimulationError(f"no handler registered for {event.kind.value}")
        if self._prof:
            self._profiler.set_sim_time(event.time)
            with self._dispatch_zone(event.kind):
                self._invoke(handler, event)
        else:
            self._invoke(handler, event)
        if self._count_dispatch:
            key = event.kind.value
            self._dispatch_counts[key] = self._dispatch_counts.get(key, 0) + 1
        self._processed += 1
        return event

    def _invoke(self, handler: Handler, event: Event) -> None:
        """Run ``handler`` with the registry instrumentation applied."""
        if self._obs:
            self._live_by_kind[event.kind] -= 1
            self._dispatched_counter(event.kind).inc()
            t0 = time.perf_counter_ns()  # qoslint: disable=QOS102 -- obs handler timer: measures real handler cost, never feeds sim state
            handler(event)
            self._handler_timer(event.kind).observe_ns(time.perf_counter_ns() - t0)  # qoslint: disable=QOS102 -- obs handler timer: wall duration goes to the registry only
        else:
            handler(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or stopped.

        Args:
            until: Optional horizon; events strictly after it are left queued
                and the clock is advanced to ``until``.
            max_events: Optional safety valve on dispatched events.

        Returns:
            The number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        self._stopped = False
        dispatched = 0
        try:
            while not self._stopped:
                if max_events is not None and dispatched >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                self.step()
                dispatched += 1
        finally:
            self._running = False
        return dispatched

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def enable_dispatch_counts(self) -> None:
        """Start counting dispatched events per kind (for trace metadata)."""
        self._count_dispatch = True

    def dispatch_counts(self) -> Dict[str, int]:
        """Dispatched events per kind value since counting was enabled.

        Empty unless :meth:`enable_dispatch_counts` was called — the span
        layer turns it on so exported timelines can carry an event-mix
        breakdown without requiring a metrics registry.
        """
        return dict(self._dispatch_counts)

    def observe_gauges(self) -> None:
        """Publish point-in-time engine state (live events per kind) to the
        registry.  Called by the owner at sampling instants; a no-op with
        the default null registry."""
        if not self._obs:
            return
        total = 0
        for kind, live in self._live_by_kind.items():
            self._registry.gauge(f"sim.engine.pending.{kind.value}").set(live)
            total += live
        self._registry.gauge("sim.engine.pending_total").set(total)

    def _dispatched_counter(self, kind: EventKind) -> Counter:
        counter = self._dispatch_counters.get(kind)
        if counter is None:
            counter = self._registry.counter(f"sim.engine.dispatched.{kind.value}")
            self._dispatch_counters[kind] = counter
        return counter

    def _handler_timer(self, kind: EventKind) -> Histogram:
        timer = self._handler_timers.get(kind)
        if timer is None:
            timer = self._registry.timer(f"sim.engine.handler_seconds.{kind.value}")
            self._handler_timers[kind] = timer
        return timer

    def _dispatch_zone(self, kind: EventKind) -> Zone:
        zone = self._dispatch_zones.get(kind)
        if zone is None:
            zone = self._profiler.zone(f"sim.engine.dispatch.{kind.value}")  # qoslint: disable=QOS111 -- per-kind dispatch zones: kind.value is a closed enum of lowercase segments
            self._dispatch_zones[kind] = zone
        return zone

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _on_cancel(self) -> None:
        """Event.cancel() hook: keep the live-event counter exact."""
        self._live -= 1

    def _on_cancel_kind(self, kind: EventKind) -> None:
        """Instrumented cancel hook: also keep per-kind live counts exact."""
        self._live -= 1
        self._live_by_kind[kind] -= 1
        self._registry.counter("sim.engine.cancelled").inc()
