"""Per-run execution state for a checkpointing job.

A running job alternates *compute segments* with (possibly skipped)
checkpoint requests; a performed checkpoint pauses progress for the
overhead ``C`` and makes all prior progress durable.  :class:`JobRun`
tracks one run — from a (re)start until a finish or a kill — and answers
the questions the simulator asks:

* when is the next event (checkpoint request or finish) and what progress
  will the job have reached by then;
* how much *unsaved* wall-clock time is destroyed if the partition fails
  now (the lost-work integrand ``t_x - c_{j_x}``);
* what execution remains after a kill (restart from last completed
  checkpoint).

All progress is measured in *execution seconds of the checkpoint-free
runtime* ``e_j``; overheads never count as progress, matching the paper's
"checkpointing overhead [is] unnecessary work" accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


@dataclass
class JobRun:
    """State machine for one run of one job.

    Attributes:
        job_id: The job being run.
        total_work: Full checkpoint-free runtime ``e_j``.
        interval: Checkpoint interval ``I``.
        overhead: Checkpoint overhead ``C``.
        saved_progress: Durable progress at run start (from earlier runs).
        start_time: Wall-clock time this run started.
        recovery_overhead: Restore time ``R`` consumed before computation
            resumes when the run starts from a checkpoint (the paper argues
            ``R = 0`` is acceptable because downtime is aggressively
            minimised; the parameter lets that claim be tested).  Charged
            only when ``saved_progress > 0`` — a fresh start reads no
            checkpoint.
        registry: Optional obs registry; when live, performed/skipped
            checkpoints, overhead seconds, kills, and lost wall seconds are
            totalled under ``checkpointing.runtime.*`` across all runs.
    """

    job_id: int
    total_work: float
    interval: float
    overhead: float
    saved_progress: float
    start_time: float
    recovery_overhead: float = 0.0
    registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )

    #: Progress (execution seconds) reached; includes unsaved work.
    progress: float = field(init=False)
    #: Wall time the current compute segment began (or checkpoint ended).
    segment_start: float = field(init=False)
    #: Consecutive skipped requests since the last completed checkpoint.
    skipped_since_checkpoint: int = field(init=False, default=0)
    #: Wall time the last *completed* checkpoint of this run started.
    last_checkpoint_start: Optional[float] = field(init=False, default=None)
    #: Wall time the in-flight checkpoint started, if any.
    checkpoint_begun_at: Optional[float] = field(init=False, default=None)
    #: Checkpoints performed / skipped in this run (statistics).
    checkpoints_performed: int = field(init=False, default=0)
    checkpoints_skipped: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.saved_progress < self.total_work:
            raise ValueError(
                f"job {self.job_id}: saved progress {self.saved_progress} out of "
                f"[0, {self.total_work})"
            )
        if self.interval <= 0 or self.overhead < 0:
            raise ValueError(
                f"job {self.job_id}: bad interval/overhead "
                f"{self.interval}/{self.overhead}"
            )
        if self.recovery_overhead < 0:
            raise ValueError(
                f"job {self.job_id}: recovery overhead must be >= 0, got "
                f"{self.recovery_overhead}"
            )
        self.progress = self.saved_progress
        # Restoring from a checkpoint costs R before compute resumes.
        restore = self.recovery_overhead if self.saved_progress > 0 else 0.0
        self.segment_start = self.start_time + restore
        registry = self.registry if self.registry is not None else NULL_REGISTRY
        self._obs = registry.enabled
        self._c_performed = registry.counter("checkpointing.runtime.performed")
        self._c_skipped = registry.counter("checkpointing.runtime.skipped")
        self._c_overhead = registry.counter(
            "checkpointing.runtime.overhead_seconds"
        )
        self._c_kills = registry.counter("checkpointing.runtime.kills")
        self._c_lost_wall = registry.counter(
            "checkpointing.runtime.lost_wall_seconds"
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def in_checkpoint(self) -> bool:
        return self.checkpoint_begun_at is not None

    @property
    def remaining_work(self) -> float:
        """Execution seconds left from current progress to completion."""
        return self.total_work - self.progress

    def next_request_progress(self) -> float:
        """Progress at which the next checkpoint request fires.

        Requests fire at multiples of ``I`` execution seconds; a request at
        or beyond completion is never issued.
        """
        k = math.floor(self.progress / self.interval + 1e-9) + 1
        return k * self.interval

    def next_event_delay(self) -> tuple:
        """``(kind, delay)`` of the next run event from ``segment_start``.

        ``kind`` is ``"request"`` or ``"finish"``; ``delay`` is seconds of
        execution from the current progress point.
        """
        if self.in_checkpoint:
            raise RuntimeError(f"job {self.job_id}: next event during checkpoint")
        to_request = self.next_request_progress() - self.progress
        to_finish = self.remaining_work
        if to_finish <= to_request + 1e-9:
            return "finish", to_finish
        return "request", to_request

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def reach_request(self, now: float) -> None:
        """Advance progress to the request point firing at ``now``."""
        executed = max(0.0, now - self.segment_start)
        self.progress = min(self.total_work, self.progress + executed)
        self.segment_start = now

    def skip_checkpoint(self, now: float) -> None:
        """Record a skipped request; computation continues immediately."""
        self.skipped_since_checkpoint += 1
        self.checkpoints_skipped += 1
        self.segment_start = now
        if self._obs:
            self._c_skipped.inc()

    def begin_checkpoint(self, now: float) -> None:
        """Pause computation for the overhead starting at ``now``."""
        if self.in_checkpoint:
            raise RuntimeError(f"job {self.job_id}: checkpoint already in flight")
        self.checkpoint_begun_at = now

    def complete_checkpoint(self, now: float) -> None:
        """Make progress durable; the checkpoint that began earlier ends."""
        if not self.in_checkpoint:
            raise RuntimeError(f"job {self.job_id}: no checkpoint in flight")
        if self._obs:
            self._c_performed.inc()
            self._c_overhead.inc(max(0.0, now - self.checkpoint_begun_at))
        self.saved_progress = self.progress
        self.last_checkpoint_start = self.checkpoint_begun_at
        self.checkpoint_begun_at = None
        self.skipped_since_checkpoint = 0
        self.checkpoints_performed += 1
        self.segment_start = now

    def finish(self, now: float) -> None:
        """Advance to completion (the finish event fired at ``now``)."""
        executed = max(0.0, now - self.segment_start)
        self.progress = min(self.total_work, self.progress + executed)
        if self.remaining_work > 1e-6:
            raise RuntimeError(
                f"job {self.job_id}: finish with {self.remaining_work}s remaining"
            )
        self.progress = self.total_work

    # ------------------------------------------------------------------
    # Failure accounting
    # ------------------------------------------------------------------
    def rollback_point(self) -> float:
        """Wall time work would roll back to if the partition failed now.

        The start of the last completed checkpoint of this run, or the run's
        start time — the ``c_{j_x}`` of the lost-work metric.
        """
        if self.last_checkpoint_start is not None:
            return self.last_checkpoint_start
        return self.start_time

    def kill(self, now: float) -> tuple:
        """Abort the run at ``now`` (node failure).

        In-flight checkpoints are lost.  Progress not covered by a completed
        checkpoint is discarded.

        Returns:
            ``(lost_wall_seconds, durable_progress)`` where the lost wall
            seconds are ``now - rollback_point()`` (multiply by the job size
            for node-seconds) and ``durable_progress`` seeds the next run.
        """
        # Progress accounting up to the failure instant (compute segments
        # only; checkpoint pauses contribute no progress).
        if not self.in_checkpoint:
            executed = max(0.0, now - self.segment_start)
            self.progress = min(self.total_work, self.progress + executed)
        lost_wall = max(0.0, now - self.rollback_point())
        if self._obs:
            self._c_kills.inc()
            self._c_lost_wall.inc(lost_wall)
        return lost_wall, self.saved_progress


def padded_remaining(
    remaining_work: float, interval: float, overhead: float
) -> float:
    """Reservation length for ``remaining_work`` assuming every future
    checkpoint is performed (the scheduler's conservative estimate E_j).

    Mirrors :meth:`repro.workload.job.Job.padded_runtime` but for restarts
    from a checkpoint.
    """
    if remaining_work <= 0:
        raise ValueError(f"remaining_work must be > 0, got {remaining_work}")
    requests = max(0, int(math.ceil(remaining_work / interval)) - 1)
    return remaining_work + overhead * requests
