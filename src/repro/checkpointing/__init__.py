"""Checkpointing: cooperative (risk-based) policy, baselines, run state."""

from repro.checkpointing.policies import (
    CheckpointDecision,
    CheckpointDecisionContext,
    CheckpointPolicy,
    CooperativePolicy,
    NeverPolicy,
    PeriodicPolicy,
    RiskFreePolicy,
    policy_by_name,
)
from repro.checkpointing.runtime import JobRun, padded_remaining

__all__ = [
    "CheckpointDecision",
    "CheckpointDecisionContext",
    "CheckpointPolicy",
    "CooperativePolicy",
    "NeverPolicy",
    "PeriodicPolicy",
    "RiskFreePolicy",
    "policy_by_name",
    "JobRun",
    "padded_remaining",
]
