"""Checkpointing policies, including the paper's cooperative scheme.

In cooperative checkpointing (Section 3.4) the *application* requests a
checkpoint every ``I`` seconds of execution and the *system* decides whether
to perform or skip it.  The risk-based heuristic performs checkpoint ``i``
iff the expected lost work from skipping exceeds the overhead:

    p_f * d * I  >=  C                                  (Equation 1)

where ``p_f`` is the predicted probability that the job's partition fails
before the next checkpoint would complete, ``d - 1`` is the number of
consecutively skipped requests (so ``d * I`` is the execution time at risk),
and ``C`` is the checkpoint overhead.

A second, deadline-driven rule overrides Equation 1: "even if
``p_f d I >= C``, the checkpoint will be skipped if doing so might allow a
job to meet a deadline that it would otherwise miss."

The policy object sees one :class:`CheckpointDecisionContext` per request
and returns perform/skip; all timing bookkeeping lives in
:mod:`repro.checkpointing.runtime`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.prediction.base import Predictor


@dataclass(frozen=True)
class CheckpointDecisionContext:
    """Everything a policy may consult for one checkpoint request.

    Attributes:
        now: Request time ``b_i`` (seconds).
        job_id: Requesting job.
        nodes: Partition the job occupies.
        interval: Checkpoint interval ``I`` (seconds of execution between
            requests).
        overhead: Checkpoint overhead ``C`` (seconds).
        skipped_since_checkpoint: Consecutive skipped requests since the
            last completed checkpoint (or run start); the paper's ``d - 1``.
        remaining_work: Execution seconds left after this request point.
        deadline: The job's negotiated deadline, or None if none was set.
        predictor: The system's event predictor.
    """

    now: float
    job_id: int
    nodes: Sequence[int]
    interval: float
    overhead: float
    skipped_since_checkpoint: int
    remaining_work: float
    deadline: Optional[float]
    predictor: Predictor

    @property
    def d(self) -> int:
        """The paper's ``d``: intervals of execution currently at risk."""
        return self.skipped_since_checkpoint + 1

    def failure_probability(self) -> float:
        """``p_f`` over the window ending when the *next* checkpoint would
        complete: perform now (C) + run one interval (I) + perform (C)."""
        horizon = self.overhead + min(self.interval, self.remaining_work) + self.overhead
        return self.predictor.failure_probability(
            self.nodes, self.now, self.now + horizon
        )

    def meets_deadline_if(self, perform: bool) -> Optional[bool]:
        """Whether the projected finish meets the deadline.

        The projection charges only *this* request's overhead — later
        requests re-decide with fresher information, so charging their
        overhead now would double-count the system's future flexibility.
        Returns None when the job has no deadline.
        """
        if self.deadline is None:
            return None
        projected = self.now + self.remaining_work + (self.overhead if perform else 0.0)
        return projected <= self.deadline


class CheckpointPolicy(abc.ABC):
    """Decides, per request, whether a checkpoint is performed."""

    name: str = "abstract"

    @abc.abstractmethod
    def should_checkpoint(self, ctx: CheckpointDecisionContext) -> bool:
        """True to perform the requested checkpoint, False to skip it."""


class PeriodicPolicy(CheckpointPolicy):
    """Always perform: classical periodic checkpointing (no cooperation)."""

    name = "periodic"

    def should_checkpoint(self, ctx: CheckpointDecisionContext) -> bool:
        return True


class NeverPolicy(CheckpointPolicy):
    """Never perform: the no-checkpointing lower bound for ablations."""

    name = "never"

    def should_checkpoint(self, ctx: CheckpointDecisionContext) -> bool:
        return False


class CooperativePolicy(CheckpointPolicy):
    """The paper's risk-based cooperative policy (Equation 1 + deadline rule).

    Args:
        deadline_aware: Enable the deadline-override rule.  The paper's
            system uses it; disable for the pure Equation 1 ablation.
    """

    name = "cooperative"

    def __init__(self, deadline_aware: bool = True) -> None:
        self.deadline_aware = deadline_aware

    def should_checkpoint(self, ctx: CheckpointDecisionContext) -> bool:
        p_f = ctx.failure_probability()
        risk_says_perform = p_f * ctx.d * ctx.interval >= ctx.overhead
        if not risk_says_perform:
            return False
        if self.deadline_aware:
            meets_if_perform = ctx.meets_deadline_if(perform=True)
            meets_if_skip = ctx.meets_deadline_if(perform=False)
            if meets_if_perform is False and meets_if_skip is True:
                # Skipping might rescue the promise; take the risk.
                return False
        return True


class RiskFreePolicy(CheckpointPolicy):
    """Perform only when a failure is *predicted at all* (p_f > 0).

    A useful intermediate for ablations: cheaper than periodic, blinder
    than Equation 1 (ignores how much work is at risk).
    """

    name = "risk-free"

    def should_checkpoint(self, ctx: CheckpointDecisionContext) -> bool:
        return ctx.failure_probability() > 0.0


def policy_by_name(name: str, deadline_aware: bool = True) -> CheckpointPolicy:
    """Factory for the bundled policies.

    Args:
        name: ``"cooperative"`` (paper), ``"periodic"``, ``"never"`` or
            ``"risk-free"``.
        deadline_aware: Passed through to :class:`CooperativePolicy`.
    """
    key = name.lower()
    if key == "cooperative":
        return CooperativePolicy(deadline_aware=deadline_aware)
    if key == "periodic":
        return PeriodicPolicy()
    if key == "never":
        return NeverPolicy()
    if key == "risk-free":
        return RiskFreePolicy()
    raise KeyError(
        f"unknown checkpoint policy {name!r}; available: "
        "cooperative, periodic, never, risk-free"
    )
