"""Checkpointing policies, including the paper's cooperative scheme.

In cooperative checkpointing (Section 3.4) the *application* requests a
checkpoint every ``I`` seconds of execution and the *system* decides whether
to perform or skip it.  The risk-based heuristic performs checkpoint ``i``
iff the expected lost work from skipping exceeds the overhead:

    p_f * d * I  >=  C                                  (Equation 1)

where ``p_f`` is the predicted probability that the job's partition fails
before the next checkpoint would complete, ``d - 1`` is the number of
consecutively skipped requests (so ``d * I`` is the execution time at risk),
and ``C`` is the checkpoint overhead.

A second, deadline-driven rule overrides Equation 1: "even if
``p_f d I >= C``, the checkpoint will be skipped if doing so might allow a
job to meet a deadline that it would otherwise miss."

The policy object sees one :class:`CheckpointDecisionContext` per request
and returns perform/skip; all timing bookkeeping lives in
:mod:`repro.checkpointing.runtime`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.prediction.base import Predictor


@dataclass(frozen=True)
class CheckpointDecisionContext:
    """Everything a policy may consult for one checkpoint request.

    Attributes:
        now: Request time ``b_i`` (seconds).
        job_id: Requesting job.
        nodes: Partition the job occupies.
        interval: Checkpoint interval ``I`` (seconds of execution between
            requests).
        overhead: Checkpoint overhead ``C`` (seconds).
        skipped_since_checkpoint: Consecutive skipped requests since the
            last completed checkpoint (or run start); the paper's ``d - 1``.
        remaining_work: Execution seconds left after this request point.
        deadline: The job's negotiated deadline, or None if none was set.
        predictor: The system's event predictor.
    """

    now: float
    job_id: int
    nodes: Sequence[int]
    interval: float
    overhead: float
    skipped_since_checkpoint: int
    remaining_work: float
    deadline: Optional[float]
    predictor: Predictor

    @property
    def d(self) -> int:
        """The paper's ``d``: intervals of execution currently at risk."""
        return self.skipped_since_checkpoint + 1

    def failure_probability(self) -> float:
        """``p_f`` over the window ending when the *next* checkpoint would
        complete: perform now (C) + run one interval (I) + perform (C)."""
        horizon = self.overhead + min(self.interval, self.remaining_work) + self.overhead
        return self.predictor.failure_probability(
            self.nodes, self.now, self.now + horizon
        )

    def meets_deadline_if(self, perform: bool) -> Optional[bool]:
        """Whether the projected finish meets the deadline.

        The projection charges only *this* request's overhead — later
        requests re-decide with fresher information, so charging their
        overhead now would double-count the system's future flexibility.
        Returns None when the job has no deadline.
        """
        if self.deadline is None:
            return None
        projected = self.now + self.remaining_work + (self.overhead if perform else 0.0)
        return projected <= self.deadline


@dataclass(frozen=True)
class CheckpointDecision:
    """A perform/skip decision plus the rationale that produced it.

    The rationale is what the span layer (:mod:`repro.obs.trace`) attaches
    to each checkpoint span/mark so audit trails can explain *why* work
    was or was not made durable — the attribution Xu et al. motivate for
    opportunistic checkpointing analyses.

    Attributes:
        perform: True to perform the requested checkpoint.
        reason: Short machine-stable tag, e.g. ``"risk-exceeds-overhead"``.
        failure_probability: The ``p_f`` the decision consulted, when the
            policy evaluated the predictor (None for oblivious policies).
        at_risk: Execution seconds that were at risk (``d * I``), when the
            policy weighed them.
    """

    perform: bool
    reason: str
    failure_probability: Optional[float] = None
    at_risk: Optional[float] = None


class CheckpointPolicy(abc.ABC):
    """Decides, per request, whether a checkpoint is performed."""

    name: str = "abstract"

    @abc.abstractmethod
    def decide(self, ctx: CheckpointDecisionContext) -> CheckpointDecision:
        """Full decision with rationale; the simulator's entry point."""

    def should_checkpoint(self, ctx: CheckpointDecisionContext) -> bool:
        """True to perform the requested checkpoint, False to skip it."""
        return self.decide(ctx).perform


class PeriodicPolicy(CheckpointPolicy):
    """Always perform: classical periodic checkpointing (no cooperation)."""

    name = "periodic"

    def decide(self, ctx: CheckpointDecisionContext) -> CheckpointDecision:
        return CheckpointDecision(perform=True, reason="periodic-always")


class NeverPolicy(CheckpointPolicy):
    """Never perform: the no-checkpointing lower bound for ablations."""

    name = "never"

    def decide(self, ctx: CheckpointDecisionContext) -> CheckpointDecision:
        return CheckpointDecision(perform=False, reason="never-policy")


class CooperativePolicy(CheckpointPolicy):
    """The paper's risk-based cooperative policy (Equation 1 + deadline rule).

    Args:
        deadline_aware: Enable the deadline-override rule.  The paper's
            system uses it; disable for the pure Equation 1 ablation.
    """

    name = "cooperative"

    def __init__(self, deadline_aware: bool = True) -> None:
        self.deadline_aware = deadline_aware

    def decide(self, ctx: CheckpointDecisionContext) -> CheckpointDecision:
        p_f = ctx.failure_probability()
        at_risk = ctx.d * ctx.interval
        if p_f * at_risk < ctx.overhead:
            return CheckpointDecision(
                perform=False,
                reason="risk-below-overhead",
                failure_probability=p_f,
                at_risk=at_risk,
            )
        if self.deadline_aware:
            meets_if_perform = ctx.meets_deadline_if(perform=True)
            meets_if_skip = ctx.meets_deadline_if(perform=False)
            if meets_if_perform is False and meets_if_skip is True:
                # Skipping might rescue the promise; take the risk.
                return CheckpointDecision(
                    perform=False,
                    reason="deadline-rescue",
                    failure_probability=p_f,
                    at_risk=at_risk,
                )
        return CheckpointDecision(
            perform=True,
            reason="risk-exceeds-overhead",
            failure_probability=p_f,
            at_risk=at_risk,
        )


class RiskFreePolicy(CheckpointPolicy):
    """Perform only when a failure is *predicted at all* (p_f > 0).

    A useful intermediate for ablations: cheaper than periodic, blinder
    than Equation 1 (ignores how much work is at risk).
    """

    name = "risk-free"

    def decide(self, ctx: CheckpointDecisionContext) -> CheckpointDecision:
        p_f = ctx.failure_probability()
        if p_f > 0.0:
            return CheckpointDecision(
                perform=True, reason="failure-predicted", failure_probability=p_f
            )
        return CheckpointDecision(
            perform=False, reason="no-failure-predicted", failure_probability=p_f
        )


def policy_by_name(name: str, deadline_aware: bool = True) -> CheckpointPolicy:
    """Factory for the bundled policies.

    Args:
        name: ``"cooperative"`` (paper), ``"periodic"``, ``"never"`` or
            ``"risk-free"``.
        deadline_aware: Passed through to :class:`CooperativePolicy`.
    """
    key = name.lower()
    if key == "cooperative":
        return CooperativePolicy(deadline_aware=deadline_aware)
    if key == "periodic":
        return PeriodicPolicy()
    if key == "never":
        return NeverPolicy()
    if key == "risk-free":
        return RiskFreePolicy()
    raise KeyError(
        f"unknown checkpoint policy {name!r}; available: "
        "cooperative, periodic, never, risk-free"
    )
