"""Causal span tracing: per-job lifecycles and guarantee audit trails.

The point records of :mod:`repro.analysis.tracelog` say *what happened*;
this layer assembles them into *stories*.  A :class:`SpanBuilder` folds the
record stream — live, as the simulation emits it, or replayed from a JSONL
trace — into interval **spans** on per-job and per-node tracks::

    queued -> running -> (checkpoint | failure -> queued -> running)* -> end

Each span carries the decision context that produced it: the promised
probability and risk threshold behind a ``queued`` span, the skip rationale
behind every checkpoint decision, the lost work behind a kill.  Two
consumers make the stories usable:

* :func:`to_chrome_trace` exports a timeline as Chrome Trace Event Format
  JSON that loads directly in Perfetto / ``chrome://tracing`` — jobs as
  tracks, node downtime as a lane, simulated time as the clock;
* :func:`explain_job` reconstructs, from spans alone, the complete audit
  trail of one job's guarantee: what was promised, what the predictor
  believed, every checkpoint decision, and whether the promise was honoured.

Zero-cost default: the simulator records through a
:class:`~repro.analysis.tracelog.NullRecorder` unless a builder is
attached, mirroring ``NullRecorder``/``NullRegistry`` — uninstrumented
sweeps pay nothing for the facility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.analysis.tracelog import TraceRecord, TraceRecorder
from repro.obs.audit import margin_honours, promise_margin

#: Version stamp embedded in timeline metadata and Chrome exports.
SPAN_SCHEMA_VERSION = 1

#: Interval span names on the job track.
JOB_SPAN_NAMES = ("queued", "running", "checkpoint")

#: Interval span names on the node track.
NODE_SPAN_NAMES = ("down",)

#: Chrome Trace Event process ids: one synthetic process per track family.
_PID_JOBS = 1
_PID_NODES = 2

#: Seconds -> Chrome trace microseconds.
_US = 1e6


@dataclass
class Span:
    """One interval on a track: a phase of a job's life or a node outage.

    Attributes:
        name: Span kind — one of :data:`JOB_SPAN_NAMES` on job tracks or
            :data:`NODE_SPAN_NAMES` on node tracks.
        track: ``"job"`` or ``"node"``.
        track_id: Job id or node index the span belongs to.
        start: Simulated start time (seconds).
        end: Simulated end time, or None while the span is still open.
        attrs: Decision context captured when the span opened/closed
            (promised probability, checkpoint rationale, lost work, ...).
    """

    name: str
    track: str
    track_id: int
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Seconds covered, or None while open."""
        return None if self.end is None else self.end - self.start


@dataclass(frozen=True)
class Mark:
    """An instantaneous annotation on a track (decision, failure, outcome)."""

    name: str
    track: str
    track_id: int
    time: float
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SpanTimeline:
    """The assembled product: spans + marks + run metadata.

    Surfaced on :attr:`repro.core.system.SimulationResult.spans` when the
    system ran with a live :class:`SpanBuilder`, and rebuilt from JSONL
    traces by :func:`timeline_from_records`.
    """

    spans: List[Span]
    marks: List[Mark]
    meta: Dict[str, Any] = field(default_factory=dict)

    def job_ids(self) -> List[int]:
        """All job ids with at least one span or mark, ascending."""
        ids = {s.track_id for s in self.spans if s.track == "job"}
        ids.update(m.track_id for m in self.marks if m.track == "job")
        return sorted(ids)

    def node_ids(self) -> List[int]:
        """All node indexes with at least one span or mark, ascending."""
        ids = {s.track_id for s in self.spans if s.track == "node"}
        ids.update(m.track_id for m in self.marks if m.track == "node")
        return sorted(ids)

    def for_job(self, job_id: int) -> Tuple[List[Span], List[Mark]]:
        """One job's spans and marks, each in time order."""
        spans = sorted(
            (s for s in self.spans if s.track == "job" and s.track_id == job_id),
            key=lambda s: (s.start, 0 if s.name == "queued" else 1),
        )
        marks = sorted(
            (m for m in self.marks if m.track == "job" and m.track_id == job_id),
            key=lambda m: m.time,
        )
        return spans, marks


class SpanBuilder(TraceRecorder):
    """A trace recorder that assembles lifecycle spans as records arrive.

    It *is* a :class:`~repro.analysis.tracelog.TraceRecorder` — pass it to
    :class:`~repro.core.system.ProbabilisticQoSSystem` via ``spans=`` (or
    ``recorder=``) and it captures the JSONL-able record stream and the
    span timeline in one pass.  Replaying a loaded trace through
    :meth:`from_records` produces the identical timeline, so spans are
    reconstructible offline from the flight-recorder file alone.

    Args:
        stream: Optional text stream each record is streamed to as JSONL
            (the ``--trace PATH`` flight recorder).
        keep_in_memory: Retain the raw records too (defaults off here —
            the spans usually *are* the memory the caller wants).
    """

    def __init__(
        self, stream: Optional[TextIO] = None, keep_in_memory: bool = False
    ) -> None:
        super().__init__(stream=stream, keep_in_memory=keep_in_memory)
        self._spans: List[Span] = []
        self._marks: List[Mark] = []
        #: job_id -> its open queued/running span, at most one per job.
        self._open_job: Dict[int, Span] = {}
        #: node -> its open down span.
        self._open_down: Dict[int, Span] = {}
        #: job_id -> run attempts started so far.
        self._attempts: Dict[int, int] = {}
        self._last_time: float = 0.0

    # ------------------------------------------------------------------
    # Assembly (fed by TraceRecorder.record / from_records)
    # ------------------------------------------------------------------
    def _ingest(self, record: TraceRecord) -> None:
        super()._ingest(record)
        self._last_time = max(self._last_time, record.time)
        handler = _SPAN_HANDLERS.get(record.kind)
        if handler is not None:
            handler(self, record)

    def _mark(self, record: TraceRecord, track: str, track_id: int) -> None:
        self._marks.append(
            Mark(
                name=record.kind,
                track=track,
                track_id=track_id,
                time=record.time,
                attrs=dict(record.detail),
            )
        )

    def _open_job_span(
        self, job_id: int, name: str, start: float, attrs: Dict[str, Any]
    ) -> None:
        span = Span(name=name, track="job", track_id=job_id, start=start, attrs=attrs)
        self._open_job[job_id] = span
        self._spans.append(span)

    def _close_job_span(
        self, job_id: int, end: float, extra: Optional[Dict[str, Any]] = None
    ) -> None:
        span = self._open_job.pop(job_id, None)
        if span is None:
            return
        span.end = end
        if extra:
            span.attrs.update(extra)

    # -- per-kind handlers ---------------------------------------------
    def _on_negotiated(self, record: TraceRecord) -> None:
        job_id = record.job_id
        assert job_id is not None
        self._mark(record, "job", job_id)
        self._close_job_span(job_id, record.time)  # defensive; normally absent
        self._open_job_span(job_id, "queued", record.time, dict(record.detail))

    def _on_start(self, record: TraceRecord) -> None:
        job_id = record.job_id
        assert job_id is not None
        self._close_job_span(job_id, record.time)
        attempt = self._attempts.get(job_id, 0) + 1
        self._attempts[job_id] = attempt
        attrs: Dict[str, Any] = dict(record.detail)
        attrs["attempt"] = attempt
        self._open_job_span(job_id, "running", record.time, attrs)

    def _on_checkpoint_performed(self, record: TraceRecord) -> None:
        job_id = record.job_id
        assert job_id is not None
        attrs = dict(record.detail)
        began_at = attrs.pop("began_at", None)
        start = float(began_at) if began_at is not None else record.time
        self._spans.append(
            Span(
                name="checkpoint",
                track="job",
                track_id=job_id,
                start=start,
                end=record.time,
                attrs=attrs,
            )
        )

    def _on_checkpoint_skipped(self, record: TraceRecord) -> None:
        assert record.job_id is not None
        self._mark(record, "job", record.job_id)

    def _on_finish(self, record: TraceRecord) -> None:
        job_id = record.job_id
        assert job_id is not None
        extra = dict(record.detail)
        extra["outcome"] = "finished"
        self._close_job_span(job_id, record.time, extra)
        self._mark(record, "job", job_id)

    def _on_killed(self, record: TraceRecord) -> None:
        job_id = record.job_id
        assert job_id is not None
        extra = dict(record.detail)
        extra["outcome"] = "killed"
        self._close_job_span(job_id, record.time, extra)
        self._mark(record, "job", job_id)

    def _on_evacuated(self, record: TraceRecord) -> None:
        job_id = record.job_id
        assert job_id is not None
        extra = dict(record.detail)
        extra["outcome"] = "evacuated"
        self._close_job_span(job_id, record.time, extra)
        self._mark(record, "job", job_id)

    def _on_requeued(self, record: TraceRecord) -> None:
        job_id = record.job_id
        assert job_id is not None
        self._mark(record, "job", job_id)
        self._close_job_span(job_id, record.time)  # defensive; normally closed
        self._open_job_span(job_id, "queued", record.time, dict(record.detail))

    def _on_failure(self, record: TraceRecord) -> None:
        if record.node is not None:
            self._mark(record, "node", record.node)

    def _on_node_down(self, record: TraceRecord) -> None:
        node = record.node
        if node is None or node in self._open_down:
            return
        span = Span(
            name="down",
            track="node",
            track_id=node,
            start=record.time,
            attrs=dict(record.detail),
        )
        self._open_down[node] = span
        self._spans.append(span)

    def _on_node_up(self, record: TraceRecord) -> None:
        node = record.node
        if node is None:
            return
        span = self._open_down.pop(node, None)
        if span is not None:
            span.end = record.time

    # ------------------------------------------------------------------
    # Product
    # ------------------------------------------------------------------
    def build(
        self,
        end_time: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> SpanTimeline:
        """Assemble the timeline seen so far.

        Args:
            end_time: Close still-open spans at this time, flagging them
                ``open=True`` (a job mid-run when the event budget ran out,
                a node still down at the horizon).  When None, open spans
                are left out of the timeline entirely.
            meta: Run metadata to attach (config, engine dispatch counts).

        Non-destructive: open spans are closed on *copies*, so the builder
        can keep recording and ``build`` can be called again later.
        """
        spans: List[Span] = []
        for span in self._spans:
            if span.end is not None:
                spans.append(span)
            elif end_time is not None:
                attrs = dict(span.attrs)
                attrs["open"] = True
                spans.append(
                    Span(
                        name=span.name,
                        track=span.track,
                        track_id=span.track_id,
                        start=span.start,
                        end=max(end_time, span.start),
                        attrs=attrs,
                    )
                )
        spans.sort(key=lambda s: (s.start, s.track, s.track_id))
        marks = sorted(self._marks, key=lambda m: (m.time, m.track, m.track_id))
        full_meta: Dict[str, Any] = {"schema": SPAN_SCHEMA_VERSION}
        if meta:
            full_meta.update(meta)
        return SpanTimeline(spans=spans, marks=marks, meta=full_meta)

    @property
    def last_time(self) -> float:
        """Largest record timestamp observed so far (0.0 before any)."""
        return self._last_time


#: Record kind -> SpanBuilder handler.  Module-level so dispatch is one
#: dict lookup per record instead of an if/elif chain.
_SPAN_HANDLERS = {
    "negotiated": SpanBuilder._on_negotiated,
    "start": SpanBuilder._on_start,
    "checkpoint_performed": SpanBuilder._on_checkpoint_performed,
    "checkpoint_skipped": SpanBuilder._on_checkpoint_skipped,
    "finish": SpanBuilder._on_finish,
    "killed": SpanBuilder._on_killed,
    "evacuated": SpanBuilder._on_evacuated,
    "requeued": SpanBuilder._on_requeued,
    "failure": SpanBuilder._on_failure,
    "node_down": SpanBuilder._on_node_down,
    "node_up": SpanBuilder._on_node_up,
}


def timeline_from_records(
    records: Iterable[TraceRecord],
    end_time: Optional[float] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> SpanTimeline:
    """Assemble a timeline from materialised records (e.g. a loaded trace).

    ``end_time`` defaults to the last record's timestamp, so spans still
    open when the trace stopped are closed there and flagged ``open``.
    """
    builder = SpanBuilder.from_records(records, keep_in_memory=False)
    assert isinstance(builder, SpanBuilder)
    if end_time is None:
        end_time = builder.last_time
    return builder.build(end_time=end_time, meta=meta)


# ----------------------------------------------------------------------
# Consumer 1: Chrome Trace Event Format export
# ----------------------------------------------------------------------
def to_chrome_trace(timeline: SpanTimeline) -> Dict[str, Any]:
    """Export a timeline as a Chrome Trace Event Format document.

    The returned dict serialises to JSON that loads directly in Perfetto
    or ``chrome://tracing``: jobs are threads of a synthetic "jobs"
    process, node downtime is a lane per node under a "nodes" process,
    spans are complete (``ph="X"``) events, decisions/outcomes are instant
    (``ph="i"``) events, and the clock is simulated time exported as
    microseconds.  Events are sorted by timestamp (longer spans first on
    ties, so nested slices render inside their parents).
    """
    events: List[Dict[str, Any]] = []
    meta_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID_JOBS,
            "tid": 0,
            "args": {"name": "jobs"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID_NODES,
            "tid": 0,
            "args": {"name": "nodes"},
        },
    ]
    for job_id in timeline.job_ids():
        meta_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_JOBS,
                "tid": job_id,
                "args": {"name": f"job {job_id}"},
            }
        )
    for node in timeline.node_ids():
        meta_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_NODES,
                "tid": node,
                "args": {"name": f"node {node}"},
            }
        )

    pid_of = {"job": _PID_JOBS, "node": _PID_NODES}
    for span in timeline.spans:
        if span.end is None:
            continue
        ts = span.start * _US
        events.append(
            {
                "name": span.name,
                "cat": span.track,
                "ph": "X",
                "ts": ts,
                # Difference of the *scaled* endpoints, so ts + dur lands on
                # the next sibling's ts to within one ulp even late in long
                # traces ((end - start) * 1e6 drifts further).
                "dur": span.end * _US - ts,
                "pid": pid_of[span.track],
                "tid": span.track_id,
                "args": dict(span.attrs),
            }
        )
    for mark in timeline.marks:
        events.append(
            {
                "name": mark.name,
                "cat": mark.track,
                "ph": "i",
                "ts": mark.time * _US,
                "pid": pid_of[mark.track],
                "tid": mark.track_id,
                "s": "t",
                "args": dict(mark.attrs),
            }
        )
    events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    return {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ms",
        "otherData": dict(
            timeline.meta, clock="simulated seconds exported as microseconds"
        ),
    }


def validate_chrome_trace(doc: Any) -> List[str]:
    """Validate a Chrome Trace Event document; returns problems ([] = ok).

    Checks the contract Perfetto relies on — shared by the test suite and
    the CI smoke job:

    * top level is an object with a ``traceEvents`` list;
    * every event has a known phase and the fields that phase requires;
    * non-metadata events are timestamp-sorted with ``dur >= 0``;
    * complete events on one track are properly nested — any two either
      do not overlap or one contains the other.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]

    last_ts: Optional[float] = None
    by_track: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("M", "X", "i"):
            problems.append(f"event {i}: unknown phase {phase!r}")
            continue
        if phase == "M":
            continue
        missing = [k for k in ("name", "ts", "pid", "tid") if k not in event]
        if missing:
            problems.append(f"event {i}: missing {', '.join(missing)}")
            continue
        ts = float(event["ts"])
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {i}: timestamp {ts} precedes previous {last_ts}"
            )
        last_ts = ts
        if phase == "X":
            if "dur" not in event:
                problems.append(f"event {i}: complete event without dur")
                continue
            dur = float(event["dur"])
            if dur < 0:
                problems.append(f"event {i}: negative dur {dur}")
                continue
            by_track.setdefault((event["pid"], event["tid"]), []).append(
                (ts, ts + dur)
            )

    for (pid, tid), intervals in sorted(by_track.items()):
        stack: List[Tuple[float, float]] = []
        for start, end in intervals:  # already ts-sorted within one track
            # Timestamps are scaled doubles; a span's reconstructed end
            # (ts + dur) can miss its sibling's ts by an ulp, which grows
            # with magnitude — so the tolerance must scale with it too.
            eps = 1e-6 + 1e-9 * abs(end)
            while stack and stack[-1][1] <= start + eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                problems.append(
                    f"track pid={pid} tid={tid}: span [{start}, {end}] "
                    f"partially overlaps [{stack[-1][0]}, {stack[-1][1]}]"
                )
            stack.append((start, end))
    return problems


# ----------------------------------------------------------------------
# Consumer 2: the guarantee audit trail
# ----------------------------------------------------------------------
def _fmt(value: Any, digits: int = 4) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}f}" if abs(value) < 1e6 else f"{value:.4g}"
    return str(value)


def _promise_lines(mark: Mark) -> List[str]:
    a = mark.attrs
    lines = [
        f"t={_fmt(mark.time, 0)} negotiated: promised p={_fmt(a.get('probability'))} "
        f"for deadline t={_fmt(a.get('deadline'), 0)}"
    ]
    context: List[str] = []
    if "predicted_pf" in a:
        context.append(f"predictor believed p_f={_fmt(a['predicted_pf'])}")
    if "user_threshold" in a:
        context.append(f"risk threshold U={_fmt(a['user_threshold'], 2)}")
    if "offers_declined" in a:
        context.append(f"{a['offers_declined']} offer(s) declined")
    if a.get("forced"):
        context.append("IMPOSED (dialogue cap hit)")
    if context:
        lines.append("  " + ", ".join(context))
    if "planned_start" in a:
        planned = f"  planned start t={_fmt(a['planned_start'], 0)}"
        if "planned_nodes" in a:
            planned += f" on nodes {_node_list(a['planned_nodes'])}"
        lines.append(planned)
    return lines


def _node_list(nodes: Sequence[int], limit: int = 12) -> str:
    nodes = list(nodes)
    body = ", ".join(str(n) for n in nodes[:limit])
    suffix = ", ..." if len(nodes) > limit else ""
    return f"[{body}{suffix}]"


def _checkpoint_line(item: Any, index: int) -> str:
    if isinstance(item, Mark):  # a skipped request
        a = item.attrs
        why = a.get("reason", "policy decision")
        extra = ""
        if a.get("p_f") is not None:
            extra = f", p_f={_fmt(a['p_f'])}"
            if a.get("at_risk") is not None:
                extra += f", {_fmt(a['at_risk'], 0)} s at risk"
        return (
            f"  t={_fmt(item.time, 0)} checkpoint request #{index}: "
            f"SKIPPED ({why}{extra})"
        )
    a = item.attrs
    why = a.get("reason", "policy decision")
    extra = ""
    if a.get("p_f") is not None:
        extra = f", p_f={_fmt(a['p_f'])}"
    dur = item.duration
    overhead = f" [+{_fmt(dur, 0)} s overhead]" if dur else ""
    return (
        f"  t={_fmt(item.start, 0)} checkpoint request #{index}: "
        f"performed ({why}{extra}){overhead}"
    )


def explain_job(timeline: SpanTimeline, job_id: int) -> str:
    """Reconstruct one job's complete guarantee story from spans alone.

    The audit trail answers, in order: what was promised and on what
    evidence; how long the job queued and where it ran; every checkpoint
    decision with its rationale; what each failure cost; and whether the
    promise was ultimately honoured.  Raises ``KeyError`` if the timeline
    has no trace of the job.
    """
    spans, marks = timeline.for_job(job_id)
    if not spans and not marks:
        raise KeyError(f"no spans or marks for job {job_id} in this timeline")

    lines: List[str] = [f"Job {job_id} — guarantee audit trail"]

    negotiated = next((m for m in marks if m.name == "negotiated"), None)
    if negotiated is not None:
        lines.extend(_promise_lines(negotiated))
    else:
        lines.append("  (no negotiation in trace: promise unknown)")

    # Interleave lifecycle spans, checkpoint decisions, and outcome marks
    # in time order.  Checkpoint request index restarts never; it counts
    # decisions across the whole job (the paper's per-request numbering).
    checkpoint_items: List[Any] = [
        m for m in marks if m.name == "checkpoint_skipped"
    ] + [s for s in spans if s.name == "checkpoint"]
    checkpoint_items.sort(
        key=lambda x: x.time if isinstance(x, Mark) else x.start
    )
    checkpoint_index = {id(item): i + 1 for i, item in enumerate(checkpoint_items)}

    events: List[Tuple[float, int, List[str]]] = []
    for span in spans:
        if span.name == "queued":
            dur = span.duration
            dur_txt = f" ({_fmt(dur, 0)} s)" if dur is not None else ""
            label = "queued" if "restart_at" not in span.attrs else "requeued"
            line = f"t={_fmt(span.start, 0)} {label}{dur_txt}"
            if "nodes" in span.attrs:
                line += f" for nodes {_node_list(span.attrs['nodes'])}"
            if span.attrs.get("open"):
                line += " — still queued at end of trace"
            events.append((span.start, 1, [line]))
        elif span.name == "running":
            attempt = span.attrs.get("attempt", "?")
            nodes = span.attrs.get("nodes")
            where = f" on nodes {_node_list(nodes)}" if nodes else ""
            until = (
                f" .. t={_fmt(span.end, 0)}" if span.end is not None else ""
            )
            line = (
                f"t={_fmt(span.start, 0)} attempt {attempt}: "
                f"running{where}{until}"
            )
            if span.attrs.get("open"):
                line += " — still running at end of trace"
            events.append((span.start, 2, [line]))
        elif span.name == "checkpoint":
            events.append(
                (span.start, 3, [_checkpoint_line(span, checkpoint_index[id(span)])])
            )
    for mark in marks:
        if mark.name == "checkpoint_skipped":
            events.append(
                (mark.time, 3, [_checkpoint_line(mark, checkpoint_index[id(mark)])])
            )
        elif mark.name == "killed":
            a = mark.attrs
            lost = a.get("lost_node_seconds")
            lost_txt = (
                f": {_fmt(lost, 0)} node-seconds of work lost"
                if lost is not None
                else ""
            )
            events.append(
                (mark.time, 0, [f"t={_fmt(mark.time, 0)} KILLED by node failure{lost_txt}"])
            )
        elif mark.name == "evacuated":
            a = mark.attrs
            pf = a.get("predicted_pf")
            why = f" (predicted p_f={_fmt(pf)})" if pf is not None else ""
            events.append(
                (mark.time, 0, [f"t={_fmt(mark.time, 0)} evacuated voluntarily{why}"])
            )

    events.sort(key=lambda e: (e[0], e[1]))
    for _, _, chunk in events:
        for line in chunk:
            lines.append("  " + line)

    # Verdict: recomputed from (deadline, finish) via the canonical
    # epsilon comparison shared with QoSGuarantee.kept and the audit
    # layer, never read from the recorded ``met`` flag when a deadline is
    # on record.  The margin is always reported signed (positive =
    # finished early), matching the audit layer's convention.
    finish = next((m for m in marks if m.name == "finish"), None)
    promised = negotiated.attrs if negotiated is not None else {}
    deadline = promised.get("deadline")
    if deadline is None and finish is not None:
        deadline = finish.attrs.get("deadline")
    if finish is not None:
        when = f"finished at t={_fmt(finish.time, 0)}"
        if deadline is not None:
            margin = promise_margin(float(deadline), finish.time)
            verdict = "HONOURED" if margin_honours(margin) else "BROKEN"
            assert margin is not None  # finish.time is never None here
            lines.append(
                f"Verdict: {when} — guarantee {verdict} (margin {margin:+.0f} s)"
            )
        else:
            met = finish.attrs.get("met")
            if met is True:
                lines.append(f"Verdict: {when} — guarantee HONOURED")
            elif met is False:
                lines.append(f"Verdict: {when} — guarantee BROKEN")
            else:
                lines.append(f"Verdict: {when} — no deadline on record")
    else:
        lines.append(
            "Verdict: never finished within the trace — guarantee BROKEN "
            "(an unfinished promise scores zero)"
        )
    return "\n".join(lines)


def explain_job_data(timeline: SpanTimeline, job_id: int) -> Dict[str, Any]:
    """Machine-readable form of :func:`explain_job`'s audit trail.

    Emits the same verdict/margin fields the audit layer computes (shared
    epsilon comparison, signed margin with positive = early), plus the
    promise context and lifecycle counters.  Raises ``KeyError`` if the
    timeline has no trace of the job.
    """
    spans, marks = timeline.for_job(job_id)
    if not spans and not marks:
        raise KeyError(f"no spans or marks for job {job_id} in this timeline")

    negotiated = next((m for m in marks if m.name == "negotiated"), None)
    finish = next((m for m in marks if m.name == "finish"), None)

    promise: Optional[Dict[str, Any]] = None
    if negotiated is not None:
        a = negotiated.attrs
        promise = {
            "negotiated_at": negotiated.time,
            "probability": a.get("probability"),
            "deadline": a.get("deadline"),
            "predicted_pf": a.get("predicted_pf"),
            "user_threshold": a.get("user_threshold"),
            "user_id": a.get("user_id"),
            "size": a.get("size"),
            "planned_start": a.get("planned_start"),
            "planned_nodes": list(a.get("planned_nodes") or []),
            "offers_declined": a.get("offers_declined"),
            "forced": bool(a.get("forced", False)),
        }

    deadline: Optional[float] = None
    if promise is not None and promise["deadline"] is not None:
        deadline = float(promise["deadline"])
    elif finish is not None and finish.attrs.get("deadline") is not None:
        deadline = float(finish.attrs["deadline"])

    finish_time = finish.time if finish is not None else None
    margin = promise_margin(deadline, finish_time) if deadline is not None else None
    if deadline is not None:
        verdict = "HONOURED" if margin_honours(margin) else "BROKEN"
    elif finish is not None:
        met = finish.attrs.get("met")
        if met is True:
            verdict = "HONOURED"
        elif met is False:
            verdict = "BROKEN"
        else:
            verdict = "UNKNOWN"
    else:
        verdict = "UNKNOWN"

    kills = [m for m in marks if m.name == "killed"]
    lost = 0.0
    for m in kills:
        value = m.attrs.get("lost_node_seconds")
        if value is not None:
            lost += float(value)
    queued_seconds = 0.0
    for s in spans:
        if s.name == "queued" and s.duration is not None:
            queued_seconds += s.duration

    return {
        "job_id": job_id,
        "promise": promise,
        "deadline": deadline,
        "finish_time": finish_time,
        "margin": margin,
        "verdict": verdict,
        "attempts": sum(1 for s in spans if s.name == "running"),
        "queued_seconds": queued_seconds,
        "checkpoints": {
            "performed": sum(1 for s in spans if s.name == "checkpoint"),
            "skipped": sum(1 for m in marks if m.name == "checkpoint_skipped"),
        },
        "kills": len(kills),
        "evacuations": sum(1 for m in marks if m.name == "evacuated"),
        "lost_node_seconds": lost,
    }


def summarize_timeline(timeline: SpanTimeline) -> str:
    """One-paragraph overview: span counts per kind, jobs, nodes, horizon."""
    counts: Dict[str, int] = {}
    for span in timeline.spans:
        counts[span.name] = counts.get(span.name, 0) + 1
    mark_counts: Dict[str, int] = {}
    for mark in timeline.marks:
        mark_counts[mark.name] = mark_counts.get(mark.name, 0) + 1
    horizon = max(
        [s.end for s in timeline.spans if s.end is not None]
        + [m.time for m in timeline.marks],
        default=0.0,
    )
    lines = [
        f"Span timeline: {len(timeline.spans)} spans, {len(timeline.marks)} "
        f"marks across {len(timeline.job_ids())} jobs and "
        f"{len(timeline.node_ids())} nodes, horizon t={horizon:g} s",
        "  spans: "
        + (
            ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
            if counts
            else "(none)"
        ),
        "  marks: "
        + (
            ", ".join(f"{k}={mark_counts[k]}" for k in sorted(mark_counts))
            if mark_counts
            else "(none)"
        ),
    ]
    return "\n".join(lines)
