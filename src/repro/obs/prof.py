"""Hierarchical wall-clock profiler with sim-time bucketing.

The missing leg of the observability triad (metrics, traces, audits —
see DESIGN.md "Observability"): *where does the wall clock go?*  Every
hot path in the control system opens a **zone** — engine event dispatch,
``find_slot``, negotiation dialogues, fastpath evaluations, predictor
queries, checkpoint decisions — and the profiler maintains the live zone
stack, attributing self and cumulative nanoseconds plus call counts to
each node of the resulting call tree.

Design constraints, in order (mirroring :mod:`repro.obs.registry`):

* **~zero cost when off.**  The default is :data:`NULL_PROFILER`
  (pattern of :class:`~repro.obs.registry.NullRegistry`): its ``enabled``
  flag is False and its zones are inert, so instrumented hot paths guard
  with one attribute test and uninstrumented sweeps pay nothing.
  Components bind :class:`Zone` objects once at construction — entering
  a zone is a dict-free push.
* **Deterministic shape.**  The zone *tree structure*, call counts, and
  sim-time bucket indices are pure functions of the simulated trajectory
  and therefore bit-identical across reruns and event-queue backends;
  only the wall-ns payloads vary run to run.  Tests pin the shape with
  :func:`strip_wall_ns`.
* **Sim-time bucketing.**  The owner calls :meth:`Profiler.set_sim_time`
  as simulated time advances (the engine does this per dispatched
  event); each zone entry charges its *self* nanoseconds to the bucket
  ``floor(sim_time_at_entry / bucket_width)``, so a profile can answer
  "which phase of the trace got slow", not just "which function".
* **Mergeable.**  :meth:`Profiler.merge_snapshot` folds per-worker
  profiles across the process pool exactly like
  :meth:`~repro.obs.registry.MetricsRegistry.merge` folds registries;
  integer nanosecond arithmetic makes the fold exact and associative.
* **No third-party deps.**  Snapshots are JSON dicts; the collapsed
  export is the classic FlameGraph / speedscope ``frame;frame value``
  stack format.

Zone names follow the repo-wide ``<layer>.<component>.<name>`` scheme,
validated at :meth:`Profiler.zone` registration and statically by the
QOS111 lint rule.
"""

from __future__ import annotations

import functools
import json
import re
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

#: Version of the on-disk profile layout.
PROF_SCHEMA_VERSION = 1

#: Zone names share the metric naming contract: dot-separated lowercase
#: identifiers, at least ``<layer>.<component>.<name>`` deep.
ZONE_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+){2,}$")

#: Default sim-time bucket width, seconds (one simulated hour — the
#: paper's checkpoint interval, a natural phase length for these traces).
DEFAULT_BUCKET_WIDTH = 3600.0

_F = TypeVar("_F", bound=Callable[..., Any])


def _validate_zone_name(name: str) -> None:
    if not ZONE_NAME_RE.match(name):
        raise ValueError(
            f"zone name {name!r} does not follow "
            "'<layer>.<component>.<name>' (lowercase, dot-separated, "
            ">= 3 components)"
        )


class _ZoneNode:
    """One node of the call tree: totals for a zone *at a stack position*."""

    __slots__ = ("name", "calls", "cum_ns", "self_ns", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.cum_ns = 0
        self.self_ns = 0
        self.children: Dict[str, "_ZoneNode"] = {}


class Zone:
    """A reusable, re-entrant context manager bound to one zone name.

    Components request their zones once at construction
    (``self._z_find_slot = profiler.zone("cluster.ledger.find_slot")``)
    and enter them on the hot path; entering costs one list append plus
    one ``perf_counter_ns`` read.
    """

    __slots__ = ("_profiler", "name")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self.name = name

    def __enter__(self) -> "Zone":
        self._profiler.push(self.name)
        return self

    def __exit__(self, *exc: Any) -> None:
        self._profiler.pop()


class Profiler:
    """Maintains the live zone stack and the accumulated call tree.

    Args:
        bucket_width: Sim-time bucket width in (simulated) seconds; each
            zone entry charges its self-time to bucket
            ``floor(sim_time / bucket_width)``.
    """

    #: Hot paths test this once per call; :class:`NullProfiler` flips it.
    enabled = True

    def __init__(self, bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        self.bucket_width = float(bucket_width)
        self._root = _ZoneNode("root")
        # One frame per live zone: [node, start_ns, child_ns, bucket].
        self._frames: List[List[Any]] = []
        self._sim_time = 0.0
        # bucket index -> zone name -> [calls, self_ns]
        self._buckets: Dict[int, Dict[str, List[int]]] = {}
        self._zones: Dict[str, Zone] = {}

    # ------------------------------------------------------------------
    # Zone access
    # ------------------------------------------------------------------
    def zone(self, name: str) -> Zone:
        """The reusable context manager for ``name`` (validated, cached)."""
        zone = self._zones.get(name)
        if zone is None:
            _validate_zone_name(name)
            zone = self._zones[name] = Zone(self, name)
        return zone

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def set_sim_time(self, sim_time: float) -> None:
        """Advance the simulated clock used for bucket attribution."""
        self._sim_time = sim_time

    @property
    def sim_time(self) -> float:
        return self._sim_time

    @property
    def depth(self) -> int:
        """Number of currently open zones."""
        return len(self._frames)

    def push(self, name: str) -> None:
        """Open zone ``name`` under the innermost open zone."""
        frames = self._frames
        parent = frames[-1][0] if frames else self._root
        node = parent.children.get(name)
        if node is None:
            node = parent.children[name] = _ZoneNode(name)
        frames.append(
            [
                node,
                time.perf_counter_ns(),
                0,
                int(self._sim_time // self.bucket_width),
            ]
        )

    def pop(self) -> None:
        """Close the innermost open zone and account its elapsed time."""
        end_ns = time.perf_counter_ns()
        if not self._frames:
            raise RuntimeError("Profiler.pop() without a matching push()")
        node, start_ns, child_ns, bucket = self._frames.pop()
        elapsed = end_ns - start_ns
        self_ns = elapsed - child_ns
        node.calls += 1
        node.cum_ns += elapsed
        node.self_ns += self_ns
        if self._frames:
            self._frames[-1][2] += elapsed
        slots = self._buckets.get(bucket)
        if slots is None:
            slots = self._buckets[bucket] = {}
        slot = slots.get(node.name)
        if slot is None:
            slots[node.name] = [1, self_ns]
        else:
            slot[0] += 1
            slot[1] += self_ns

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The accumulated profile as a JSON-serialisable dict.

        Open zones contribute nothing until they pop; snapshotting is
        intended for quiescent profilers (end of run / end of worker).
        """
        return {
            "schema": PROF_SCHEMA_VERSION,
            "bucket_width": self.bucket_width,
            "meta": dict(meta) if meta else {},
            "root": _node_to_dict(self._root),
            "buckets": {
                str(index): {
                    name: {"calls": slot[0], "self_ns": slot[1]}
                    for name, slot in sorted(slots.items())
                }
                for index, slots in sorted(self._buckets.items())
            },
        }

    def merge(self, other: "Profiler") -> "Profiler":
        """Fold another profiler's totals into this one (returns self)."""
        return self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> "Profiler":
        """Fold a ``snapshot()``-shaped dict into this profiler.

        The cross-process form of :meth:`merge`: pool workers return
        their snapshot and the parent folds the dicts in submission
        order.  All arithmetic is integer nanoseconds, so the fold is
        exact and associative regardless of grouping.
        """
        if not self.enabled:
            return self
        schema = snapshot.get("schema")
        if schema != PROF_SCHEMA_VERSION:
            raise ValueError(
                f"cannot merge profile schema {schema!r} "
                f"(this build speaks {PROF_SCHEMA_VERSION})"
            )
        width = snapshot.get("bucket_width")
        if width != self.bucket_width:
            raise ValueError(
                f"cannot merge profiles with different bucket widths "
                f"({self.bucket_width} vs {width})"
            )
        _merge_node(self._root, snapshot.get("root", {}))
        for index_key, zones in sorted(snapshot.get("buckets", {}).items()):
            index = int(index_key)
            slots = self._buckets.get(index)
            if slots is None:
                slots = self._buckets[index] = {}
            for name, data in sorted(zones.items()):
                slot = slots.get(name)
                if slot is None:
                    slots[name] = [int(data["calls"]), int(data["self_ns"])]
                else:
                    slot[0] += int(data["calls"])
                    slot[1] += int(data["self_ns"])
        return self


def _node_to_dict(node: _ZoneNode) -> Dict[str, Any]:
    return {
        "calls": node.calls,
        "cum_ns": node.cum_ns,
        "self_ns": node.self_ns,
        "children": {
            name: _node_to_dict(child)
            for name, child in sorted(node.children.items())
        },
    }


def _merge_node(node: _ZoneNode, data: Dict[str, Any]) -> None:
    node.calls += int(data.get("calls", 0))
    node.cum_ns += int(data.get("cum_ns", 0))
    node.self_ns += int(data.get("self_ns", 0))
    for name, child_data in sorted(data.get("children", {}).items()):
        child = node.children.get(name)
        if child is None:
            child = node.children[name] = _ZoneNode(name)
        _merge_node(child, child_data)


def profiled(
    name: str, attr: str = "_profiler"
) -> Callable[[_F], _F]:
    """Method decorator: run the call inside zone ``name``.

    The profiler is read from the instance attribute ``attr`` (default
    ``_profiler``) at call time, so decorated methods stay zero-cost on
    objects carrying :data:`NULL_PROFILER` (one attribute test).
    """
    _validate_zone_name(name)

    def wrap(fn: _F) -> _F:
        @functools.wraps(fn)
        def inner(self: Any, *args: Any, **kwargs: Any) -> Any:
            profiler = getattr(self, attr, None)
            if profiler is None or not profiler.enabled:
                return fn(self, *args, **kwargs)
            profiler.push(name)
            try:
                return fn(self, *args, **kwargs)
            finally:
                profiler.pop()

        return inner  # type: ignore[return-value]

    return wrap


class _NullZone(Zone):
    __slots__ = ()

    def __enter__(self) -> "Zone":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


class NullProfiler(Profiler):
    """A profiler that records nothing (the default, zero-cost).

    Hands out one shared inert zone, so uninstrumented paths pay one
    no-op call at worst — and nothing at all on paths that guard with
    :attr:`Profiler.enabled`, which is the instrumented-code contract.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_zone = _NullZone(self, "null.null.zone")

    def zone(self, name: str) -> Zone:
        return self._null_zone


#: Shared default instance; safe because its zones record nothing.
NULL_PROFILER = NullProfiler()


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def write_profile(path: str, snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Write a profile snapshot to ``path``; returns what was written."""
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snapshot


def load_profile(path: str) -> Dict[str, Any]:
    """Read a profile back; raises ValueError on an unknown schema."""
    with open(path) as fh:
        snapshot = json.load(fh)
    schema = snapshot.get("schema")
    if schema != PROF_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported profile schema {schema!r} "
            f"(this build reads {PROF_SCHEMA_VERSION})"
        )
    return snapshot


# ----------------------------------------------------------------------
# Analysis helpers
# ----------------------------------------------------------------------
def strip_wall_ns(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The snapshot with every wall-ns payload zeroed.

    What remains — tree structure, call counts, bucket indices and
    per-bucket call counts — is the deterministic surface: bit-identical
    across reruns and event-queue backends for the same trajectory.
    """

    def strip_node(node: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "calls": node.get("calls", 0),
            "cum_ns": 0,
            "self_ns": 0,
            "children": {
                name: strip_node(child)
                for name, child in sorted(node.get("children", {}).items())
            },
        }

    return {
        "schema": snapshot.get("schema"),
        "bucket_width": snapshot.get("bucket_width"),
        "meta": {},
        "root": strip_node(snapshot.get("root", {})),
        "buckets": {
            index: {
                name: {"calls": data.get("calls", 0), "self_ns": 0}
                for name, data in sorted(zones.items())
            }
            for index, zones in sorted(snapshot.get("buckets", {}).items())
        },
    }


def walk_zones(
    snapshot: Dict[str, Any]
) -> Iterator[Tuple[Tuple[str, ...], Dict[str, Any]]]:
    """Yield ``(stack, node_dict)`` for every zone, depth-first, sorted."""

    def walk(
        node: Dict[str, Any], stack: Tuple[str, ...]
    ) -> Iterator[Tuple[Tuple[str, ...], Dict[str, Any]]]:
        for name, child in sorted(node.get("children", {}).items()):
            child_stack = stack + (name,)
            yield child_stack, child
            yield from walk(child, child_stack)

    yield from walk(snapshot.get("root", {}), ())


def aggregate_self(snapshot: Dict[str, Any]) -> Dict[str, Tuple[int, int]]:
    """Flatten the tree: zone name -> (calls, self_ns) across all stacks."""
    totals: Dict[str, Tuple[int, int]] = {}
    for stack, node in walk_zones(snapshot):
        name = stack[-1]
        calls, self_ns = totals.get(name, (0, 0))
        totals[name] = (calls + node["calls"], self_ns + node["self_ns"])
    return totals


def total_ns(snapshot: Dict[str, Any]) -> int:
    """Wall nanoseconds under profile: the root children's cumulative sum."""
    root = snapshot.get("root", {})
    return sum(
        child.get("cum_ns", 0)
        for child in root.get("children", {}).values()
    )


# ----------------------------------------------------------------------
# Collapsed-stack (FlameGraph / speedscope) export
# ----------------------------------------------------------------------
def to_collapsed(snapshot: Dict[str, Any]) -> str:
    """The profile in collapsed-stack form: ``a;b;c <self_ns>`` per line.

    The classic Brendan Gregg FlameGraph input, which speedscope also
    imports directly; weights are integer self-nanoseconds.  Zones whose
    self time rounds to zero are omitted (a collapsed line's weight must
    be positive).
    """
    lines: List[str] = []
    for stack, node in walk_zones(snapshot):
        self_ns = node.get("self_ns", 0)
        if self_ns > 0:
            lines.append(";".join(stack) + f" {self_ns}")
    return "\n".join(lines) + ("\n" if lines else "")


def validate_collapsed(text: str) -> List[str]:
    """Problems that would stop FlameGraph/speedscope loading ``text``.

    Checks the grammar the importers share: one ``frame(;frame)* weight``
    per non-empty line, frames non-empty, weight a positive integer.
    Returns an empty list when the document is valid.
    """
    problems: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        stack_part, _, weight_part = line.rpartition(" ")
        if not stack_part:
            problems.append(f"line {lineno}: missing stack or weight")
            continue
        if not weight_part.isdigit() or int(weight_part) <= 0:
            problems.append(
                f"line {lineno}: weight {weight_part!r} is not a "
                "positive integer"
            )
        frames = stack_part.split(";")
        if any(not frame for frame in frames):
            problems.append(f"line {lineno}: empty frame in {stack_part!r}")
    return problems


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------
def _fmt_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}us"
    return f"{ns}ns"


def render_report(
    snapshot: Dict[str, Any],
    top: int = 12,
    max_depth: Optional[int] = None,
    bucket_rows: int = 12,
) -> str:
    """Render a profile as the ``probqos prof report`` text.

    Three sections: the zone call tree (by cumulative time), the
    flattened top self-time zones, and the sim-time bucket breakdown.
    """
    lines: List[str] = []
    total = total_ns(snapshot)
    meta = snapshot.get("meta", {})
    zone_count = sum(1 for _ in walk_zones(snapshot))
    lines.append(
        f"Profile: {zone_count} zones, {_fmt_ns(total)} profiled wall time"
        f" (sim-time buckets of {snapshot.get('bucket_width', 0.0):g} s)"
    )
    for key in sorted(meta):
        lines.append(f"  {key}: {meta[key]}")

    lines.append("")
    lines.append("Zone tree (by cumulative time):")

    def render_node(node: Dict[str, Any], name: str, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        share = (node["cum_ns"] / total * 100.0) if total else 0.0
        lines.append(
            f"  {'  ' * depth}{name:<{max(1, 46 - 2 * depth)}}"
            f" {share:5.1f}%  cum {_fmt_ns(node['cum_ns']):>9}"
            f"  self {_fmt_ns(node['self_ns']):>9}"
            f"  calls {node['calls']}"
        )
        children = sorted(
            node.get("children", {}).items(),
            key=lambda kv: (-kv[1]["cum_ns"], kv[0]),
        )
        for child_name, child in children:
            render_node(child, child_name, depth + 1)

    roots = sorted(
        snapshot.get("root", {}).get("children", {}).items(),
        key=lambda kv: (-kv[1]["cum_ns"], kv[0]),
    )
    for name, node in roots:
        render_node(node, name, 0)

    totals = aggregate_self(snapshot)
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))[:top]
    if ranked:
        lines.append("")
        lines.append(f"Top {len(ranked)} zones by self time (all stacks):")
        width = max(len(name) for name, _ in ranked)
        for name, (calls, self_ns) in ranked:
            share = (self_ns / total * 100.0) if total else 0.0
            per_call = self_ns // calls if calls else 0
            lines.append(
                f"  {name:<{width}}  {share:5.1f}%  self {_fmt_ns(self_ns):>9}"
                f"  calls {calls:>8}  ({_fmt_ns(per_call)}/call)"
            )

    buckets = snapshot.get("buckets", {})
    if buckets:
        width_s = snapshot.get("bucket_width", DEFAULT_BUCKET_WIDTH)
        by_index = sorted((int(k), v) for k, v in buckets.items())
        bucket_totals = [
            sum(d["self_ns"] for d in zones.values()) for _, zones in by_index
        ]
        lines.append("")
        lines.append(
            f"Sim-time buckets: {len(by_index)} buckets, wall cost per "
            "simulated phase:"
        )
        ranked_buckets = sorted(
            zip(by_index, bucket_totals),
            key=lambda pair: (-pair[1], pair[0][0]),
        )[:bucket_rows]
        for (index, zones), bucket_ns in sorted(
            ranked_buckets, key=lambda pair: pair[0][0]
        ):
            hot = max(zones.items(), key=lambda kv: (kv[1]["self_ns"], kv[0]))
            share = (bucket_ns / total * 100.0) if total else 0.0
            lines.append(
                f"  [{index * width_s:>12g}s, {(index + 1) * width_s:>12g}s)"
                f"  {share:5.1f}%  {_fmt_ns(bucket_ns):>9}"
                f"  hottest {hot[0]} ({_fmt_ns(hot[1]['self_ns'])})"
            )
        if len(by_index) > bucket_rows:
            lines.append(
                f"  ... {len(by_index) - bucket_rows} cooler buckets omitted"
            )
    return "\n".join(lines)
