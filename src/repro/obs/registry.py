"""The instrumentation registry: named counters, gauges, and histograms.

The control system is a feedback loop — monitoring and prediction feed
scheduling, checkpointing, and negotiation — and this module is how the
simulator explains *how* it arrived at a number: every layer increments
counters on its decision points (negotiation probe depth, ledger cache
hits, backfill successes, checkpoint skips) into one shared
:class:`MetricsRegistry`.

Design constraints, in order:

* **~zero cost when off.**  The default is a :class:`NullRegistry`
  (mirroring :class:`repro.analysis.tracelog.NullRecorder`): its
  instruments are inert singletons and its ``enabled`` flag is False, so
  instrumented hot paths guard with one attribute test and sweeps pay
  nothing.  Components additionally bind instrument objects once at
  construction, so the per-event cost with a live registry is one method
  call — never a dict lookup by name.
* **No third-party deps.**  Counters are plain numbers, histograms are
  fixed-bucket arrays; everything snapshots to JSON-serialisable dicts.
* **Disciplined naming.**  Metric names follow
  ``<layer>.<component>.<name>`` (see DESIGN.md "Observability"), enforced
  at registration so snapshots group cleanly by layer.
"""

from __future__ import annotations

import re
import time
from typing import Any, Dict, List, Optional, Sequence

#: Names are dot-separated lowercase identifiers with at least three
#: components: ``<layer>.<component>.<name>`` (deeper nesting is allowed,
#: e.g. per-event-kind counters under ``sim.engine.dispatched.*``).
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+){2,}$")

#: Default histogram buckets for dimensionless counts (offer ranks, probe
#: depths, queue lengths): roughly powers of two.
DEFAULT_COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Default buckets for wall-clock timers, in seconds (1 µs .. 10 s).
DEFAULT_TIME_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """A monotonically increasing total (float increments allowed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"{self.name}: counter increments must be >= 0")
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, rolling rate, skyline size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class _TimerContext:
    """Context manager recording a wall-clock duration into a histogram.

    Durations are measured with ``perf_counter_ns`` and recorded through
    :meth:`Histogram.observe_ns`, so the exact integer-nanosecond total
    survives cross-process merging (float ``sum`` accumulates rounding
    that depends on fold order; ``sum_ns`` does not).
    """

    __slots__ = ("_histogram", "_t0")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._t0 = 0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._histogram.observe_ns(time.perf_counter_ns() - self._t0)


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max sidecars.

    Args:
        name: Registered metric name.
        buckets: Ascending upper bounds; an implicit ``+inf`` bucket catches
            overflow.  Bounds are fixed at creation — no rebucketing.
    """

    __slots__ = (
        "name", "bounds", "bucket_counts", "count", "sum", "sum_ns",
        "min", "max",
    )

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_COUNT_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"{name}: bucket bounds must be strictly ascending")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self.count = 0
        self.sum = 0.0
        #: Exact integer-nanosecond total for timer samples (observe_ns);
        #: stays 0 for plain value histograms.
        self.sum_ns = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        idx = 0
        for bound in self.bounds:
            if value <= bound:
                break
            idx += 1
        self.bucket_counts[idx] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_ns(self, duration_ns: int) -> None:
        """Record one timer sample given in integer nanoseconds.

        Bucket/min/max/float-sum bookkeeping goes through :meth:`observe`
        on the seconds value; the nanosecond total is additionally kept as
        an exact integer so merged timers report true totals independent
        of fold order.
        """
        self.observe(duration_ns / 1e9)
        self.sum_ns += duration_ns

    def time(self) -> _TimerContext:
        """``with histogram.time():`` records the block's wall duration."""
        return _TimerContext(self)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "sum_ns": self.sum_ns,
            "min": self.min,
            "max": self.max,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self.bucket_counts)
            ]
            + [{"le": "inf", "count": self.bucket_counts[-1]}],
        }


class MetricsRegistry:
    """Get-or-create store of named instruments, snapshotable to JSON.

    Instruments are created on first request and shared thereafter;
    re-requesting a name with a different instrument type (or different
    histogram buckets) raises, catching copy-paste divergence early.
    """

    #: Hot paths test this once instead of calling into a null instrument
    #: per event; the :class:`NullRegistry` subclass flips it to False.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._validate(name)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._validate(name)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_COUNT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._validate(name)
            instrument = self._histograms[name] = Histogram(name, buckets)
        elif instrument.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return instrument

    def timer(self, name: str) -> Histogram:
        """A histogram pre-bucketed for wall-clock seconds."""
        return self.histogram(name, DEFAULT_TIME_BUCKETS)

    # ------------------------------------------------------------------
    # Convenience one-shots (cold paths that don't keep a binding)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float,
        buckets: Sequence[float] = DEFAULT_COUNT_BUCKETS,
    ) -> None:
        self.histogram(name, buckets).observe(value)

    # ------------------------------------------------------------------
    # Aggregation (parallel experiment execution)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's totals into this one (returns self).

        Counter and histogram merging is associative and commutative up to
        float summation order, so per-worker registries can be folded in
        any grouping.  Gauges are levels, not totals: the merged value is
        simply the other registry's last level (last-write-wins), which is
        the only meaningful choice for point-in-time readings.
        """
        return self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> "MetricsRegistry":
        """Fold a ``snapshot()``-shaped dict into this registry.

        This is the cross-process form of :meth:`merge`: pool workers
        cannot ship live instrument objects back to the parent, so they
        return ``registry.snapshot()`` and the parent folds the dicts in a
        deterministic (submission) order.
        """
        if not self.enabled:
            return self
        for name, total in snapshot.get("counters", {}).items():
            self.counter(name).inc(total)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            buckets = data["buckets"]
            bounds = tuple(b["le"] for b in buckets if b["le"] != "inf")
            histogram = self.histogram(name, bounds)
            for idx, bucket in enumerate(buckets):
                histogram.bucket_counts[idx] += bucket["count"]
            histogram.count += data["count"]
            histogram.sum += data["sum"]
            # .get(): snapshots written before the sum_ns sidecar existed
            # still merge cleanly.
            histogram.sum_ns += data.get("sum_ns", 0)
            for side, better in (("min", min), ("max", max)):
                incoming = data.get(side)
                if incoming is None:
                    continue
                current = getattr(histogram, side)
                setattr(
                    histogram,
                    side,
                    incoming if current is None else better(current, incoming),
                )
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metric_names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def layers(self) -> List[str]:
        """Distinct ``<layer>`` prefixes across all registered metrics."""
        return sorted({name.split(".", 1)[0] for name in self.metric_names()})

    def snapshot(self) -> Dict[str, Any]:
        """The full current state as a JSON-serialisable dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def scalar_snapshot(self) -> Dict[str, float]:
        """Counters and gauges flattened to one ``{name: value}`` map,
        histograms contributing their sample count under ``<name>.count``
        — the compact row format the :class:`~repro.obs.sampler.Sampler`
        stores per sampling instant."""
        row: Dict[str, float] = {}
        for name, counter in self._counters.items():
            row[name] = counter.value
        for name, gauge in self._gauges.items():
            row[name] = gauge.value
        for name, histogram in self._histograms.items():
            row[name + ".count"] = histogram.count
        return row

    @staticmethod
    def _validate(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} does not follow "
                "'<layer>.<component>.<name>' (lowercase, dot-separated, "
                ">= 3 components)"
            )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        return


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return

    def observe_ns(self, duration_ns: int) -> None:
        return


class NullRegistry(MetricsRegistry):
    """A registry that records nothing (the default, zero-cost).

    Hands out shared inert instruments so uninstrumented sweeps pay one
    no-op call at worst — and nothing at all on paths that guard with
    :attr:`MetricsRegistry.enabled`.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null.null.counter")
        self._null_gauge = _NullGauge("null.null.gauge")
        self._null_histogram = _NullHistogram("null.null.histogram")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_COUNT_BUCKETS
    ) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def scalar_snapshot(self) -> Dict[str, float]:
        return {}


#: Shared default instance; safe because it holds no state.
NULL_REGISTRY = NullRegistry()
