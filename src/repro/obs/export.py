"""Serialising observability state to disk and rendering it for humans.

One JSON document carries everything one run (or one batch of runs)
produced: the final registry snapshot plus the sampler's sim-time series.
``probqos run --obs out.json`` writes it; ``probqos obs summarize
out.json`` renders it back as the report below; downstream tooling
(perf-PR diffs, notebooks) reads the raw JSON.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler

#: Version of the on-disk report layout.
OBS_SCHEMA_VERSION = 1


def build_report(
    registry: MetricsRegistry,
    sampler: Optional[Sampler] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSON-serialisable observability report."""
    report: Dict[str, Any] = {
        "schema": OBS_SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "metric_names": registry.metric_names(),
        "layers": registry.layers(),
        "metrics": registry.snapshot(),
        "series": {
            "interval": sampler.interval if sampler is not None else None,
            "rows": sampler.rows if sampler is not None else [],
        },
    }
    return report


def write_report(
    path: str,
    registry: MetricsRegistry,
    sampler: Optional[Sampler] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the report to ``path``; returns the dict that was written."""
    report = build_report(registry, sampler, meta)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def load_report(path: str) -> Dict[str, Any]:
    """Read a report back; raises ValueError on an unknown schema."""
    with open(path) as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema != OBS_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported obs schema {schema!r} "
            f"(this build reads {OBS_SCHEMA_VERSION})"
        )
    return report


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}" if abs(value) < 1000 else f"{value:.4g}"
    return f"{int(value)}"


#: Eight block heights, lowest to highest, for sparkline rendering.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"

#: Metrics shown in the summarize time-series section.
SERIES_TOP_K = 8


def _sparkline(values: List[float], width: int = 24) -> str:
    """Render a value series as a fixed-width block-character sparkline.

    Longer series are bucketed down to ``width`` columns (each column shows
    its bucket's mean); shorter series use one column per sample.  A flat
    series renders at the lowest level so trends stay visually honest.
    """
    if not values:
        return ""
    if len(values) > width:
        buckets: List[float] = []
        for column in range(width):
            lo = column * len(values) // width
            hi = max(lo + 1, (column + 1) * len(values) // width)
            chunk = values[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        values = buckets
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    return "".join(
        _SPARK_LEVELS[
            min(
                len(_SPARK_LEVELS) - 1,
                int((v - low) / span * len(_SPARK_LEVELS)),
            )
        ]
        for v in values
    )


def summarize(report: Dict[str, Any]) -> str:
    """Render a loaded report as the ``probqos obs summarize`` text."""
    lines: List[str] = []
    meta = report.get("meta", {})
    names = report.get("metric_names", [])
    layers = report.get("layers", [])
    lines.append(
        f"Observability report: {len(names)} metrics across "
        f"{len(layers)} layers ({', '.join(layers) if layers else 'none'})"
    )
    for key in sorted(meta):
        lines.append(f"  {key}: {meta[key]}")

    metrics = report.get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})

    if counters:
        lines.append("")
        lines.append("Counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {_format_value(counters[name])}")
    if gauges:
        lines.append("")
        lines.append("Gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {_format_value(gauges[name])}")
    if histograms:
        lines.append("")
        lines.append("Histograms:")
        width = max(len(n) for n in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            count = h.get("count", 0)
            mean = (h.get("sum", 0.0) / count) if count else 0.0
            lines.append(
                f"  {name:<{width}}  count={count} mean={mean:.4g}"
                f" min={_format_value(h.get('min') or 0)}"
                f" max={_format_value(h.get('max') or 0)}"
            )

    series = report.get("series", {})
    rows = series.get("rows", [])
    if rows:
        t0, t1 = rows[0]["time"], rows[-1]["time"]
        lines.append("")
        lines.append(
            f"Time series: {len(rows)} samples over sim-time "
            f"[{t0:g}, {t1:g}] s"
            + (
                f" (interval {series['interval']:g} s)"
                if series.get("interval")
                else ""
            )
        )
        final = rows[-1].get("metrics", {})
        top = sorted(final.items(), key=lambda kv: (-kv[1], kv[0]))[:SERIES_TOP_K]
        if top:
            lines.append(
                f"  top {len(top)} metrics by final value "
                "(sparkline over all samples):"
            )
            width = max(len(name) for name, _ in top)
            for name, _ in top:
                values = [row.get("metrics", {}).get(name, 0.0) for row in rows]
                lines.append(
                    f"  {name:<{width}}  {_sparkline(values)}  "
                    f"min={_format_value(min(values))} "
                    f"mean={sum(values) / len(values):.4g} "
                    f"max={_format_value(max(values))} "
                    f"final={_format_value(values[-1])}"
                )
    else:
        lines.append("")
        lines.append("Time series: no samples (no sampler attached)")
    return "\n".join(lines)
