"""Serialising observability state to disk and rendering it for humans.

One JSON document carries everything one run (or one batch of runs)
produced: the final registry snapshot plus the sampler's sim-time series.
``probqos run --obs out.json`` writes it; ``probqos obs summarize
out.json`` renders it back as the report below; downstream tooling
(perf-PR diffs, notebooks) reads the raw JSON.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler

#: Version of the on-disk report layout.
OBS_SCHEMA_VERSION = 1


def build_report(
    registry: MetricsRegistry,
    sampler: Optional[Sampler] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSON-serialisable observability report."""
    report: Dict[str, Any] = {
        "schema": OBS_SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "metric_names": registry.metric_names(),
        "layers": registry.layers(),
        "metrics": registry.snapshot(),
        "series": {
            "interval": sampler.interval if sampler is not None else None,
            "rows": sampler.rows if sampler is not None else [],
        },
    }
    return report


def write_report(
    path: str,
    registry: MetricsRegistry,
    sampler: Optional[Sampler] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the report to ``path``; returns the dict that was written."""
    report = build_report(registry, sampler, meta)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def load_report(path: str) -> Dict[str, Any]:
    """Read a report back; raises ValueError on an unknown schema."""
    with open(path) as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema != OBS_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported obs schema {schema!r} "
            f"(this build reads {OBS_SCHEMA_VERSION})"
        )
    return report


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}" if abs(value) < 1000 else f"{value:.4g}"
    return f"{int(value)}"


#: Eight block heights, lowest to highest, for sparkline rendering.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"

#: Metrics shown in the summarize time-series section.
SERIES_TOP_K = 8


def _sparkline(values: List[float], width: int = 24) -> str:
    """Render a value series as a fixed-width block-character sparkline.

    Longer series are bucketed down to ``width`` columns (each column shows
    its bucket's mean); shorter series use one column per sample.  A flat
    series renders at the lowest level so trends stay visually honest.
    """
    if not values:
        return ""
    if len(values) > width:
        buckets: List[float] = []
        for column in range(width):
            lo = column * len(values) // width
            hi = max(lo + 1, (column + 1) * len(values) // width)
            chunk = values[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        values = buckets
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    return "".join(
        _SPARK_LEVELS[
            min(
                len(_SPARK_LEVELS) - 1,
                int((v - low) / span * len(_SPARK_LEVELS)),
            )
        ]
        for v in values
    )


def summarize_data(report: Dict[str, Any]) -> Dict[str, Any]:
    """The structured form of the ``obs summarize`` report.

    Everything the text renderer prints, as one JSON-serialisable dict —
    ``--format json`` emits it verbatim and :func:`summarize` renders it.
    Derived values (histogram means, series extrema) are computed here so
    both formats agree by construction.
    """
    meta = report.get("meta", {})
    names = report.get("metric_names", [])
    layers = report.get("layers", [])
    metrics = report.get("metrics", {})
    histograms: Dict[str, Any] = {}
    for name, h in metrics.get("histograms", {}).items():
        count = h.get("count", 0)
        histograms[name] = {
            "count": count,
            "mean": (h.get("sum", 0.0) / count) if count else 0.0,
            "min": h.get("min"),
            "max": h.get("max"),
        }

    series = report.get("series", {})
    rows = series.get("rows", [])
    series_data: Dict[str, Any] = {
        "samples": len(rows),
        "interval": series.get("interval"),
    }
    if rows:
        series_data["span"] = [rows[0]["time"], rows[-1]["time"]]
        final = rows[-1].get("metrics", {})
        top = sorted(final.items(), key=lambda kv: (-kv[1], kv[0]))[:SERIES_TOP_K]
        series_data["top"] = [
            {
                "name": name,
                "values": values,
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
                "final": values[-1],
            }
            for name, values in (
                (
                    name,
                    [row.get("metrics", {}).get(name, 0.0) for row in rows],
                )
                for name, _ in top
            )
        ]
    return {
        "meta": dict(meta),
        "metric_count": len(names),
        "layers": list(layers),
        "counters": dict(metrics.get("counters", {})),
        "gauges": dict(metrics.get("gauges", {})),
        "histograms": histograms,
        "series": series_data,
    }


def summarize(report: Dict[str, Any]) -> str:
    """Render a loaded report as the ``probqos obs summarize`` text."""
    data = summarize_data(report)
    lines: List[str] = []
    layers = data["layers"]
    lines.append(
        f"Observability report: {data['metric_count']} metrics across "
        f"{len(layers)} layers ({', '.join(layers) if layers else 'none'})"
    )
    meta = data["meta"]
    for key in sorted(meta):
        lines.append(f"  {key}: {meta[key]}")

    counters = data["counters"]
    gauges = data["gauges"]
    histograms = data["histograms"]

    if counters:
        lines.append("")
        lines.append("Counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {_format_value(counters[name])}")
    if gauges:
        lines.append("")
        lines.append("Gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {_format_value(gauges[name])}")
    if histograms:
        lines.append("")
        lines.append("Histograms:")
        width = max(len(n) for n in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<{width}}  count={h['count']} mean={h['mean']:.4g}"
                f" min={_format_value(h['min'] or 0)}"
                f" max={_format_value(h['max'] or 0)}"
            )

    series = data["series"]
    if series["samples"]:
        t0, t1 = series["span"]
        lines.append("")
        lines.append(
            f"Time series: {series['samples']} samples over sim-time "
            f"[{t0:g}, {t1:g}] s"
            + (
                f" (interval {series['interval']:g} s)"
                if series.get("interval")
                else ""
            )
        )
        top = series.get("top", [])
        if top:
            lines.append(
                f"  top {len(top)} metrics by final value "
                "(sparkline over all samples):"
            )
            width = max(len(entry["name"]) for entry in top)
            for entry in top:
                lines.append(
                    f"  {entry['name']:<{width}}  "
                    f"{_sparkline(entry['values'])}  "
                    f"min={_format_value(entry['min'])} "
                    f"mean={entry['mean']:.4g} "
                    f"max={_format_value(entry['max'])} "
                    f"final={_format_value(entry['final'])}"
                )
    else:
        lines.append("")
        lines.append("Time series: no samples (no sampler attached)")
    return "\n".join(lines)
