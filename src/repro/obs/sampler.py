"""Sim-time sampling of the metrics registry into a time-series.

Counters answer "how many, in total"; the :class:`Sampler` answers "when".
It snapshots the registry's scalar state (counters, gauges, histogram
sample counts) at a fixed sim-time cadence, producing the rows that let a
metric like backfill success rate or predictor detection rate be plotted
*over* a simulation instead of only summed across it.

The sampler itself is passive — it has no clock.  The owner (the simulated
system) calls :meth:`sample` from a recurring ``OBS_SAMPLE`` event, so the
cadence is exact in simulated seconds and costs nothing when no sampler is
attached.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, TextIO, Tuple

from repro.obs.registry import MetricsRegistry


class Sampler:
    """Snapshots a registry every ``interval`` simulated seconds.

    Args:
        registry: The registry to snapshot.
        interval: Sim-seconds between samples (> 0).

    Rows are plain dicts ``{"time": t, "metrics": {name: value}}`` in
    nondecreasing time order; a row arriving at the same instant as the
    previous one replaces it (the final end-of-run sample may coincide
    with the last periodic one).
    """

    def __init__(self, registry: MetricsRegistry, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"sampler interval must be > 0, got {interval}")
        self.registry = registry
        self.interval = float(interval)
        self._rows: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def sample(self, now: float) -> None:
        """Record one row at simulated time ``now``."""
        if self._rows and now < self._rows[-1]["time"]:
            raise ValueError(
                f"sample at t={now} precedes last row t={self._rows[-1]['time']}"
            )
        row = {"time": float(now), "metrics": self.registry.scalar_snapshot()}
        if self._rows and self._rows[-1]["time"] == row["time"]:
            self._rows[-1] = row
        else:
            self._rows.append(row)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """All rows, oldest first (a copy)."""
        return list(self._rows)

    def series(self, name: str) -> List[Tuple[float, float]]:
        """``(time, value)`` pairs for one metric (0.0 where unregistered)."""
        return [
            (row["time"], row["metrics"].get(name, 0.0)) for row in self._rows
        ]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def write_jsonl(self, stream: TextIO) -> None:
        """One JSON object per line, oldest first."""
        for row in self._rows:
            stream.write(json.dumps(row, sort_keys=True) + "\n")

    @staticmethod
    def load_jsonl(lines: Iterable[str]) -> List[Dict[str, Any]]:
        """Parse rows back from JSONL (inverse of :meth:`write_jsonl`)."""
        rows = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            rows.append(json.loads(line))
        return rows
