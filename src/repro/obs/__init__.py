"""Observability: counters, histograms, sim-time sampling, spans, audits.

The instrumentation substrate for the whole control system.  Every layer
(engine, ledger, schedulers, negotiation, checkpointing, prediction)
accepts a :class:`MetricsRegistry` and records its decision points into
named metrics following ``<layer>.<component>.<name>``; the default
:class:`NullRegistry` makes all of it free for uninstrumented sweeps.
``repro.obs.trace`` assembles causal per-job spans, and
``repro.obs.audit`` folds promise/outcome pairs into calibration & SLO
audit reports.  See DESIGN.md "Observability" for the naming scheme and
the overhead budget.
"""

from repro.obs.audit import (
    AUDIT_DIMENSIONS,
    AUDIT_SCHEMA_VERSION,
    AUDIT_STATUSES,
    NULL_AUDIT,
    VERDICT_EPSILON,
    AuditConfig,
    AuditReport,
    CalibrationCurve,
    CalibrationSummary,
    GuaranteeAudit,
    NullAudit,
    ReliabilityBin,
    RollupStat,
    audit_from_records,
    breach_excess_pvalue,
    margin_honours,
    merge_reports,
    poisson_tail,
    promise_margin,
    reliability_diagram_csv,
    reliability_diagram_text,
    render_report,
    validate_audit_report,
    wilson_interval,
)
from repro.obs.export import (
    OBS_SCHEMA_VERSION,
    build_report,
    load_report,
    summarize,
    write_report,
)
from repro.obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.sampler import Sampler
from repro.obs.trace import (
    SPAN_SCHEMA_VERSION,
    Mark,
    Span,
    SpanBuilder,
    SpanTimeline,
    explain_job,
    explain_job_data,
    summarize_timeline,
    timeline_from_records,
    to_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "Mark",
    "Span",
    "SpanBuilder",
    "SpanTimeline",
    "explain_job",
    "explain_job_data",
    "summarize_timeline",
    "timeline_from_records",
    "to_chrome_trace",
    "validate_chrome_trace",
    "AUDIT_DIMENSIONS",
    "AUDIT_SCHEMA_VERSION",
    "AUDIT_STATUSES",
    "NULL_AUDIT",
    "VERDICT_EPSILON",
    "AuditConfig",
    "AuditReport",
    "CalibrationCurve",
    "CalibrationSummary",
    "GuaranteeAudit",
    "NullAudit",
    "ReliabilityBin",
    "RollupStat",
    "audit_from_records",
    "breach_excess_pvalue",
    "margin_honours",
    "merge_reports",
    "poisson_tail",
    "promise_margin",
    "reliability_diagram_csv",
    "reliability_diagram_text",
    "render_report",
    "validate_audit_report",
    "wilson_interval",
    "OBS_SCHEMA_VERSION",
    "build_report",
    "load_report",
    "summarize",
    "write_report",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Sampler",
]
