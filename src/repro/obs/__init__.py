"""Observability: counters, histograms, and sim-time sampling.

The instrumentation substrate for the whole control system.  Every layer
(engine, ledger, schedulers, negotiation, checkpointing, prediction)
accepts a :class:`MetricsRegistry` and records its decision points into
named metrics following ``<layer>.<component>.<name>``; the default
:class:`NullRegistry` makes all of it free for uninstrumented sweeps.
See DESIGN.md "Observability" for the naming scheme and the overhead
budget.
"""

from repro.obs.export import (
    OBS_SCHEMA_VERSION,
    build_report,
    load_report,
    summarize,
    write_report,
)
from repro.obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.sampler import Sampler
from repro.obs.trace import (
    SPAN_SCHEMA_VERSION,
    Mark,
    Span,
    SpanBuilder,
    SpanTimeline,
    explain_job,
    summarize_timeline,
    timeline_from_records,
    to_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "Mark",
    "Span",
    "SpanBuilder",
    "SpanTimeline",
    "explain_job",
    "summarize_timeline",
    "timeline_from_records",
    "to_chrome_trace",
    "validate_chrome_trace",
    "OBS_SCHEMA_VERSION",
    "build_report",
    "load_report",
    "summarize",
    "write_report",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Sampler",
]
