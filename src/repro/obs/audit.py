"""Streaming guarantee-calibration & SLO audit layer.

The paper's value proposition is Equation 2: the system *promises* a
completion probability, so the reproduction must be able to answer "are
those promises honest?" at scale.  ``trace explain`` audits one job at a
time; this module folds every promise/outcome pair of a run into an
aggregate :class:`AuditReport`:

* a **reliability diagram** — fixed promise bins mapped to the empirical
  honoured rate, with Wilson 95% score intervals and per-bin counts;
* **proper scoring** — the Brier score with Murphy's
  calibration/refinement decomposition, plus log loss;
* **per-dimension SLO rollups** — breach counters by user class,
  partition, job-size bucket and promise decile, with configurable alert
  thresholds that mark a run ``DEGRADED`` or ``VIOLATED``.

The same :class:`GuaranteeAudit` aggregator is fed two ways and produces
*identical* reports (tested property):

* **live** — ``ProbabilisticQoSSystem(..., audit=GuaranteeAudit())``
  calls :meth:`GuaranteeAudit.observe_promise` at negotiation time and
  :meth:`GuaranteeAudit.observe_outcome` at finish time;
* **replay** — :func:`audit_from_records` feeds the same aggregator from
  a JSONL trace's ``negotiated``/``finish`` records via
  :meth:`GuaranteeAudit.ingest`.

Verdicts are always recomputed inside the aggregator from
``(deadline, finish_time)`` using the canonical epsilon comparison
(:func:`promise_margin` / :func:`margin_honours`) — never read from the
trace — so live and replayed reports cannot drift.  Those helpers are
also the single source of truth for ``QoSGuarantee.kept`` and
``trace explain``'s HONOURED/BROKEN verdict.

Reports store raw additive sums (bin counts, honoured counts, promise
sums, Brier/log-loss sums) so :meth:`AuditReport.merge` across
replication shards is exact up to float summation order, mirroring
``MetricsRegistry.merge``; derived quantities (Wilson intervals, status,
alerts) are recomputed after every merge.

This module is dependency-light by design: it imports only the stdlib
and ``repro.analysis.tracelog``, so ``repro.core`` and
``repro.prediction`` may import it freely without cycles.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.tracelog import TraceRecord

#: Version stamp embedded in every serialized :class:`AuditReport`.
AUDIT_SCHEMA_VERSION = 1

#: Absolute tolerance (simulated seconds) for deadline verdicts.  A finish
#: within ``VERDICT_EPSILON`` *after* the promised deadline still counts as
#: honoured: deadlines are sums of float durations, and a promise must not
#: flip to BROKEN over one ULP of accumulated rounding.  This is the single
#: epsilon shared by ``QoSGuarantee.kept``, ``trace explain`` verdicts and
#: the audit layer (lint rule QOS104: float comparisons need an explicit,
#: documented tolerance).
VERDICT_EPSILON = 1e-6

#: Clamp for log loss: a promise of exactly 0.0 or 1.0 that goes the wrong
#: way would otherwise score an infinite penalty.
LOG_LOSS_CLAMP = 1e-12

#: Two-sided z for the default 95% Wilson score interval (same value the
#: replication layer uses for its normal-approximation fallback).
Z_95 = 1.96

AUDIT_STATUS_OK = "OK"
AUDIT_STATUS_DEGRADED = "DEGRADED"
AUDIT_STATUS_VIOLATED = "VIOLATED"

#: Ladder order, least to most severe.
AUDIT_STATUSES = (AUDIT_STATUS_OK, AUDIT_STATUS_DEGRADED, AUDIT_STATUS_VIOLATED)

#: Rollup dimensions, in the order keys are attached to each promise.
AUDIT_DIMENSIONS = ("user", "partition", "size", "promise")


def promise_margin(deadline: float, finish_time: Optional[float]) -> Optional[float]:
    """Signed slack of a finish against its promised deadline.

    Positive = finished early (honoured), negative = finished late.
    ``None`` finish (job never completed within the simulation) yields
    ``None`` — a broken promise with no finite margin.
    """
    if finish_time is None:
        return None
    return deadline - finish_time


def margin_honours(margin: Optional[float]) -> bool:
    """Whether a signed margin honours the promise.

    ``None`` (never finished) is broken; otherwise the promise is honoured
    iff ``margin >= -VERDICT_EPSILON`` — see :data:`VERDICT_EPSILON` for
    why the tolerance exists and why it leans toward HONOURED.
    """
    return margin is not None and margin >= -VERDICT_EPSILON


def wilson_interval(successes: int, count: int, z: float = Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Unlike the normal approximation, the Wilson interval stays inside
    ``[0, 1]`` and behaves sensibly at the extremes (``0/n`` and ``n/n``)
    — exactly where calibration bins live when the system promises
    p ≈ 1.  Returns ``(0.0, 1.0)`` for an empty bin (no information).
    """
    if count <= 0:
        return (0.0, 1.0)
    if not 0 <= successes <= count:
        raise ValueError(f"successes {successes} not in [0, {count}]")
    n = float(count)
    phat = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = phat + z2 / (2.0 * n)
    spread = z * math.sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n))
    low = (centre - spread) / denom
    high = (centre + spread) / denom
    # The exact bounds at the degenerate proportions are 0 and 1; the
    # float evaluation above can land an ULP inside them.
    if successes == 0:
        low = 0.0
    if successes == count:
        high = 1.0
    return (max(0.0, low), min(1.0, high))


def poisson_tail(observed: int, mean: float) -> float:
    """Upper tail ``P(X >= observed)`` for ``X ~ Poisson(mean)``.

    Exact by summation for small means; for ``mean > 100`` (where the
    exact sum both loses precision and stops mattering) the
    continuity-corrected normal approximation.  Used by
    :func:`breach_excess_pvalue` as the Le Cam upper bound on the
    Poisson-binomial breach count.
    """
    if observed <= 0:
        return 1.0
    if mean <= 0.0:
        return 0.0
    if mean > 100.0:
        z = (observed - 0.5 - mean) / math.sqrt(mean)
        return 0.5 * math.erfc(z / math.sqrt(2.0))
    # 1 - CDF(observed - 1), summed in increasing-term order.
    term = math.exp(-mean)
    cdf = term
    for k in range(1, observed):
        term *= mean / k
        cdf += term
    return max(0.0, 1.0 - cdf)


def breach_excess_pvalue(count: int, successes: int, forecast_sum: float) -> float:
    """One-sided p-value for "more breaches than the forecasts allowed".

    Under honest forecasts each promise ``i`` breaks independently with
    probability ``1 - f_i``, so the breach count is Poisson-binomial with
    mean ``mu = count - forecast_sum``.  Only the bin's raw sums survive
    aggregation, so the Poisson(mu) upper bound (Le Cam) stands in for
    the exact tail: it is conservative (Poisson variance ``mu`` is at
    least the Poisson-binomial's ``sum f_i (1 - f_i)``), and it is sharp
    exactly where guarantee audits live — forecasts near 1, where a
    Wilson-only check would flag a single break among hundreds of
    p ~ 0.999 promises as over-promising even though the promised
    probabilities themselves allow it.
    """
    breaches = count - successes
    return poisson_tail(breaches, count - forecast_sum)


@dataclass(frozen=True)
class ReliabilityBin:
    """One fixed-width forecast bin of a reliability diagram.

    ``count``/``successes``/``forecast_sum`` are the raw additive sums
    (the merge substrate); the remaining fields are derived from them at
    build time.  In the guarantee-audit context a "success" is an
    honoured promise and the forecast is the promised probability.

    Attributes:
        low: Bin lower edge (inclusive).
        high: Bin upper edge (exclusive; the last bin includes 1.0).
        count: Observations in the bin.
        successes: Observations whose outcome was a success.
        forecast_sum: Sum of the binned forecast probabilities.
        mean_forecast: ``forecast_sum / count`` (0.0 for an empty bin).
        success_rate: ``successes / count`` (0.0 for an empty bin).
        wilson_low: Lower edge of the Wilson interval on ``success_rate``.
        wilson_high: Upper edge of the Wilson interval on ``success_rate``.
        over_confident: True when the forecasts in this bin promise more
            than the evidence supports (over-promising, in audit terms):
            the mean forecast exceeds the Wilson upper bound *and* the
            breach count is significantly above what the promised
            probabilities themselves allow
            (:func:`breach_excess_pvalue`).  The second condition keeps
            the flag honest in the p ~ 1 bin, where one broken p = 0.9
            promise among hundreds of honoured p = 0.999 ones shifts the
            mean forecast past the Wilson bound without any promise
            having lied.
    """

    low: float
    high: float
    count: int
    successes: int
    forecast_sum: float
    mean_forecast: float
    success_rate: float
    wilson_low: float
    wilson_high: float
    over_confident: bool

    @property
    def midpoint(self) -> float:
        """Centre of the bin's forecast range."""
        return (self.low + self.high) / 2.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "low": self.low,
            "high": self.high,
            "count": self.count,
            "successes": self.successes,
            "forecast_sum": self.forecast_sum,
            "mean_forecast": self.mean_forecast,
            "success_rate": self.success_rate,
            "wilson_low": self.wilson_low,
            "wilson_high": self.wilson_high,
            "over_confident": self.over_confident,
        }


@dataclass(frozen=True)
class CalibrationSummary:
    """Scoring summary of a :class:`CalibrationCurve`.

    ``brier`` is the exact per-observation mean squared error;
    ``brier_binned`` is the same quantity computed from bin aggregates,
    and decomposes exactly (Murphy 1973) as
    ``brier_binned == calibration + refinement`` where

    * ``calibration`` = Σₖ nₖ(f̄ₖ − rₖ)² / N — how far each bin's mean
      forecast sits from its observed success rate (0 is honest);
    * ``refinement`` = Σₖ nₖ rₖ(1 − rₖ) / N — outcome variance within
      bins (low means the forecasts sort outcomes sharply).

    ``brier`` and ``brier_binned`` differ only by the within-bin variance
    of the forecasts themselves (binning discards it).
    """

    count: int
    successes: int
    brier: float
    log_loss: float
    brier_binned: float
    calibration: float
    refinement: float
    expected_calibration_error: float
    bins: Tuple[ReliabilityBin, ...]

    @property
    def success_rate(self) -> float:
        return self.successes / self.count if self.count else 0.0

    @property
    def mean_forecast(self) -> float:
        if not self.count:
            return 0.0
        return sum(b.forecast_sum for b in self.bins) / self.count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "successes": self.successes,
            "success_rate": self.success_rate,
            "mean_forecast": self.mean_forecast,
            "brier": self.brier,
            "log_loss": self.log_loss,
            "brier_binned": self.brier_binned,
            "calibration": self.calibration,
            "refinement": self.refinement,
            "expected_calibration_error": self.expected_calibration_error,
            "bins": [b.to_dict() for b in self.bins],
        }


class CalibrationCurve:
    """Streaming (forecast, outcome) accumulator behind reliability math.

    One implementation shared by guarantee auditing, predictor evaluation
    (``repro.prediction.evaluation``) and the offline calibration module
    (``repro.core.calibration``).  Holds only raw additive sums, so two
    curves over the same observations in any split are mergeable.
    """

    def __init__(self, bin_count: int = 10, confidence_z: float = Z_95) -> None:
        if bin_count < 1:
            raise ValueError(f"bin_count must be >= 1, got {bin_count}")
        if confidence_z <= 0.0:
            raise ValueError(f"confidence_z must be > 0, got {confidence_z}")
        self.bin_count = bin_count
        self.confidence_z = confidence_z
        self.count = 0
        self.successes = 0
        self.brier_sum = 0.0
        self.log_loss_sum = 0.0
        self._counts = [0] * bin_count
        self._successes = [0] * bin_count
        self._forecast_sums = [0.0] * bin_count

    def bin_index(self, forecast: float) -> int:
        """Bin holding ``forecast``; the last bin includes 1.0."""
        return min(int(forecast * self.bin_count), self.bin_count - 1)

    def observe(self, forecast: float, success: bool) -> None:
        """Fold one (forecast probability, realized outcome) pair."""
        if not 0.0 <= forecast <= 1.0:
            raise ValueError(f"forecast {forecast} not in [0, 1]")
        idx = self.bin_index(forecast)
        self.count += 1
        self._counts[idx] += 1
        self._forecast_sums[idx] += forecast
        outcome = 1.0 if success else 0.0
        if success:
            self.successes += 1
            self._successes[idx] += 1
        self.brier_sum += (forecast - outcome) ** 2
        clamped = min(max(forecast, LOG_LOSS_CLAMP), 1.0 - LOG_LOSS_CLAMP)
        if success:
            self.log_loss_sum += -math.log(clamped)
        else:
            self.log_loss_sum += -math.log1p(-clamped)

    def add_raw(
        self,
        index: int,
        count: int,
        successes: int,
        forecast_sum: float,
    ) -> None:
        """Fold pre-aggregated bin sums (the merge/deserialize path)."""
        if not 0 <= index < self.bin_count:
            raise ValueError(f"bin index {index} not in [0, {self.bin_count})")
        if not 0 <= successes <= count:
            raise ValueError(f"successes {successes} not in [0, {count}]")
        self.count += count
        self.successes += successes
        self._counts[index] += count
        self._successes[index] += successes
        self._forecast_sums[index] += forecast_sum

    def clone(self) -> "CalibrationCurve":
        other = CalibrationCurve(self.bin_count, self.confidence_z)
        other.count = self.count
        other.successes = self.successes
        other.brier_sum = self.brier_sum
        other.log_loss_sum = self.log_loss_sum
        other._counts = list(self._counts)
        other._successes = list(self._successes)
        other._forecast_sums = list(self._forecast_sums)
        return other

    def bins(self) -> Tuple[ReliabilityBin, ...]:
        """All ``bin_count`` bins, empty ones included (merge substrate)."""
        width = 1.0 / self.bin_count
        # One-sided significance matching the two-sided confidence_z
        # (z = 1.96 -> alpha = 0.025).
        alpha = 0.5 * math.erfc(self.confidence_z / math.sqrt(2.0))
        out: List[ReliabilityBin] = []
        for k in range(self.bin_count):
            n = self._counts[k]
            s = self._successes[k]
            fsum = self._forecast_sums[k]
            mean_f = fsum / n if n else 0.0
            rate = s / n if n else 0.0
            low, high = wilson_interval(s, n, self.confidence_z)
            over = (
                n > 0
                and mean_f > high
                and breach_excess_pvalue(n, s, fsum) < alpha
            )
            out.append(
                ReliabilityBin(
                    low=k * width,
                    high=(k + 1) * width,
                    count=n,
                    successes=s,
                    forecast_sum=fsum,
                    mean_forecast=mean_f,
                    success_rate=rate,
                    wilson_low=low,
                    wilson_high=high,
                    over_confident=over,
                )
            )
        return tuple(out)

    def summary(self) -> CalibrationSummary:
        """Score the curve: Brier (+ decomposition), log loss, ECE."""
        bins = self.bins()
        n_total = self.count
        if n_total == 0:
            return CalibrationSummary(
                count=0,
                successes=0,
                brier=0.0,
                log_loss=0.0,
                brier_binned=0.0,
                calibration=0.0,
                refinement=0.0,
                expected_calibration_error=0.0,
                bins=bins,
            )
        calibration = 0.0
        refinement = 0.0
        brier_binned = 0.0
        ece = 0.0
        for b in bins:
            if b.count == 0:
                continue
            gap = b.mean_forecast - b.success_rate
            calibration += b.count * gap * gap
            refinement += b.count * b.success_rate * (1.0 - b.success_rate)
            # Binned Brier from raw sums: Σ (n·f̄² − 2·f̄·s + s).
            brier_binned += (
                b.count * b.mean_forecast * b.mean_forecast
                - 2.0 * b.mean_forecast * b.successes
                + b.successes
            )
            ece += b.count * abs(gap)
        return CalibrationSummary(
            count=n_total,
            successes=self.successes,
            brier=self.brier_sum / n_total,
            log_loss=self.log_loss_sum / n_total,
            brier_binned=brier_binned / n_total,
            calibration=calibration / n_total,
            refinement=refinement / n_total,
            expected_calibration_error=ece / n_total,
            bins=bins,
        )


@dataclass(frozen=True)
class AuditConfig:
    """Knobs for binning, intervals and alert thresholds.

    Attributes:
        bin_count: Reliability-diagram bins over ``[0, 1]``.
        confidence_z: Two-sided z for Wilson intervals (1.96 ≈ 95%).
        node_block: Partition rollup granularity — jobs are grouped by
            which ``node_block``-wide block their lowest planned node
            falls in (a proxy for "where on the machine it ran").
        min_slo_count: Rollup keys with fewer audited promises than this
            never raise alerts (too little evidence).
        degraded_overpromise_bins: A run is at least DEGRADED when this
            many populated bins are over-promised (mean promise above the
            Wilson upper bound).
        violated_overpromise_share: A run is VIOLATED when over-promised
            bins cover at least this fraction of all audited promises.
        max_breach_rate: Optional SLO on any single rollup key's breach
            rate; keys above it (with enough evidence) mark the run at
            least DEGRADED.  ``None`` disables the per-key SLO.
    """

    bin_count: int = 10
    confidence_z: float = Z_95
    node_block: int = 32
    min_slo_count: int = 10
    degraded_overpromise_bins: int = 1
    violated_overpromise_share: float = 0.25
    max_breach_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bin_count < 1:
            raise ValueError(f"bin_count must be >= 1, got {self.bin_count}")
        if self.confidence_z <= 0.0:
            raise ValueError(f"confidence_z must be > 0, got {self.confidence_z}")
        if self.node_block < 1:
            raise ValueError(f"node_block must be >= 1, got {self.node_block}")
        if self.min_slo_count < 1:
            raise ValueError(f"min_slo_count must be >= 1, got {self.min_slo_count}")
        if self.degraded_overpromise_bins < 1:
            raise ValueError(
                f"degraded_overpromise_bins must be >= 1, "
                f"got {self.degraded_overpromise_bins}"
            )
        if not 0.0 < self.violated_overpromise_share <= 1.0:
            raise ValueError(
                f"violated_overpromise_share must be in (0, 1], "
                f"got {self.violated_overpromise_share}"
            )
        if self.max_breach_rate is not None and not 0.0 <= self.max_breach_rate <= 1.0:
            raise ValueError(
                f"max_breach_rate must be in [0, 1], got {self.max_breach_rate}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bin_count": self.bin_count,
            "confidence_z": self.confidence_z,
            "node_block": self.node_block,
            "min_slo_count": self.min_slo_count,
            "degraded_overpromise_bins": self.degraded_overpromise_bins,
            "violated_overpromise_share": self.violated_overpromise_share,
            "max_breach_rate": self.max_breach_rate,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "AuditConfig":
        return cls(
            bin_count=int(doc["bin_count"]),
            confidence_z=float(doc["confidence_z"]),
            node_block=int(doc["node_block"]),
            min_slo_count=int(doc["min_slo_count"]),
            degraded_overpromise_bins=int(doc["degraded_overpromise_bins"]),
            violated_overpromise_share=float(doc["violated_overpromise_share"]),
            max_breach_rate=(
                None
                if doc["max_breach_rate"] is None
                else float(doc["max_breach_rate"])
            ),
        )


@dataclass(frozen=True)
class RollupStat:
    """Breach accounting for one rollup key (raw additive sums)."""

    count: int
    honoured: int
    promise_sum: float

    @property
    def breaches(self) -> int:
        return self.count - self.honoured

    @property
    def breach_rate(self) -> float:
        return self.breaches / self.count if self.count else 0.0

    @property
    def mean_promised(self) -> float:
        return self.promise_sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "honoured": self.honoured,
            "promise_sum": self.promise_sum,
            "breaches": self.breaches,
            "breach_rate": self.breach_rate,
            "mean_promised": self.mean_promised,
        }


def _size_key(size: int) -> str:
    """Power-of-two job-size bucket, e.g. ``size:4-7``."""
    if size < 1:
        return "size:0"
    lo = 1 << (size.bit_length() - 1)
    hi = lo * 2 - 1
    if lo == hi:
        return f"size:{lo}"
    return f"size:{lo}-{hi}"


def _partition_key(nodes: Sequence[int], block: int) -> str:
    """Node-block bucket of the lowest planned node, e.g. ``nodes:0-31``."""
    if not nodes:
        return "nodes:unplaced"
    base = (min(nodes) // block) * block
    return f"nodes:{base}-{base + block - 1}"


def _promise_key(probability: float) -> str:
    """Promise decile, e.g. ``p:[0.9,1.0]`` (last decile includes 1.0)."""
    decile = min(int(probability * 10.0), 9)
    low = decile / 10.0
    if decile == 9:
        return f"p:[{low:.1f},1.0]"
    return f"p:[{low:.1f},{(decile + 1) / 10.0:.1f})"


@dataclass(frozen=True)
class _Promise:
    """A pending promise awaiting its outcome."""

    probability: float
    deadline: float
    keys: Tuple[str, str, str, str]


@dataclass(frozen=True)
class AuditReport:
    """Immutable promise-vs-outcome audit of one run (or a merge of runs).

    Never-finished promises are folded in as BROKEN at build time, so
    ``sum(bin counts) == total`` and every rollup dimension's counts also
    sum to ``total``.  ``meta`` carries provenance (source trace, run
    parameters, merge arity) and is excluded from equality — the
    live-vs-replay equivalence property compares everything else.
    """

    schema: int
    config: AuditConfig
    total: int
    honoured: int
    unfinished: int
    brier_sum: float
    log_loss_sum: float
    bins: Tuple[ReliabilityBin, ...]
    rollups: Dict[str, Dict[str, RollupStat]]
    status: str
    alerts: Tuple[str, ...]
    meta: Dict[str, Any] = field(compare=False, default_factory=dict)

    @property
    def broken(self) -> int:
        return self.total - self.honoured

    @property
    def honoured_rate(self) -> float:
        return self.honoured / self.total if self.total else 0.0

    @property
    def mean_promised(self) -> float:
        if not self.total:
            return 0.0
        return sum(b.forecast_sum for b in self.bins) / self.total

    @property
    def brier(self) -> float:
        return self.brier_sum / self.total if self.total else 0.0

    @property
    def log_loss(self) -> float:
        return self.log_loss_sum / self.total if self.total else 0.0

    def _scoring_curve(self) -> CalibrationCurve:
        curve = CalibrationCurve(self.config.bin_count, self.config.confidence_z)
        for k, b in enumerate(self.bins):
            curve.add_raw(k, b.count, b.successes, b.forecast_sum)
        curve.brier_sum = self.brier_sum
        curve.log_loss_sum = self.log_loss_sum
        return curve

    def scoring(self) -> CalibrationSummary:
        """Full proper-scoring summary (Brier decomposition, ECE)."""
        return self._scoring_curve().summary()

    def merge(self, other: "AuditReport") -> "AuditReport":
        """Fold two shards into one report; exact on the raw sums.

        Raises ValueError when the shards were audited under different
        configs — their bins would not be comparable.
        """
        if self.config != other.config:
            raise ValueError(
                f"cannot merge audit reports with different configs: "
                f"{self.config} != {other.config}"
            )
        if self.schema != other.schema:
            raise ValueError(
                f"cannot merge audit schema {self.schema} with {other.schema}"
            )
        curve = self._scoring_curve()
        for k, b in enumerate(other.bins):
            curve.add_raw(k, b.count, b.successes, b.forecast_sum)
        curve.brier_sum += other.brier_sum
        curve.log_loss_sum += other.log_loss_sum
        rollups: Dict[str, Dict[str, List[float]]] = {}
        for report in (self, other):
            for dim in AUDIT_DIMENSIONS:
                accs = rollups.setdefault(dim, {})
                for key, stat in report.rollups.get(dim, {}).items():
                    acc = accs.setdefault(key, [0, 0, 0.0])
                    acc[0] += stat.count
                    acc[1] += stat.honoured
                    acc[2] += stat.promise_sum
        merged_meta = {
            "merged": int(self.meta.get("merged", 1)) + int(other.meta.get("merged", 1))
        }
        return _build_report(
            curve=curve,
            rollup_accs=rollups,
            unfinished=self.unfinished + other.unfinished,
            config=self.config,
            meta=merged_meta,
        )

    def to_dict(self) -> Dict[str, Any]:
        scoring = self.scoring()
        return {
            "schema": self.schema,
            "config": self.config.to_dict(),
            "total": self.total,
            "honoured": self.honoured,
            "broken": self.broken,
            "unfinished": self.unfinished,
            "honoured_rate": self.honoured_rate,
            "mean_promised": self.mean_promised,
            "brier_sum": self.brier_sum,
            "log_loss_sum": self.log_loss_sum,
            "scoring": {
                "brier": scoring.brier,
                "log_loss": scoring.log_loss,
                "brier_binned": scoring.brier_binned,
                "calibration": scoring.calibration,
                "refinement": scoring.refinement,
                "expected_calibration_error": scoring.expected_calibration_error,
            },
            "bins": [b.to_dict() for b in self.bins],
            "rollups": {
                dim: {key: stat.to_dict() for key, stat in sorted(keys.items())}
                for dim, keys in sorted(self.rollups.items())
            },
            "status": self.status,
            "alerts": list(self.alerts),
            "meta": dict(self.meta),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "AuditReport":
        """Rebuild a report from its JSON form.

        Derived fields (bins, status, alerts) are recomputed from the raw
        sums, so a loaded report is `==` to the one that was saved.
        """
        schema = doc.get("schema")
        if schema != AUDIT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported audit schema {schema!r} "
                f"(expected {AUDIT_SCHEMA_VERSION})"
            )
        config = AuditConfig.from_dict(doc["config"])
        curve = CalibrationCurve(config.bin_count, config.confidence_z)
        raw_bins = doc["bins"]
        if len(raw_bins) != config.bin_count:
            raise ValueError(
                f"expected {config.bin_count} bins, got {len(raw_bins)}"
            )
        for k, b in enumerate(raw_bins):
            curve.add_raw(k, int(b["count"]), int(b["successes"]), float(b["forecast_sum"]))
        curve.brier_sum = float(doc["brier_sum"])
        curve.log_loss_sum = float(doc["log_loss_sum"])
        rollups: Dict[str, Dict[str, List[float]]] = {}
        for dim, keys in doc["rollups"].items():
            accs = rollups.setdefault(str(dim), {})
            for key, stat in keys.items():
                accs[str(key)] = [
                    int(stat["count"]),
                    int(stat["honoured"]),
                    float(stat["promise_sum"]),
                ]
        return _build_report(
            curve=curve,
            rollup_accs=rollups,
            unfinished=int(doc["unfinished"]),
            config=config,
            meta=dict(doc.get("meta", {})),
        )


def _evaluate_status(
    bins: Sequence[ReliabilityBin],
    rollups: Mapping[str, Mapping[str, RollupStat]],
    config: AuditConfig,
    total: int,
) -> Tuple[str, Tuple[str, ...]]:
    """Derive the OK/DEGRADED/VIOLATED verdict and its alert lines."""
    alerts: List[str] = []
    over = [b for b in bins if b.count > 0 and b.over_confident]
    for b in over:
        closing = "]" if b.high >= 1.0 else ")"
        alerts.append(
            f"over-promised bin [{b.low:.1f},{b.high:.1f}{closing}: mean promise "
            f"{b.mean_forecast:.3f} exceeds Wilson upper bound "
            f"{b.wilson_high:.3f} (honoured {b.successes}/{b.count})"
        )
    breached_keys = 0
    if config.max_breach_rate is not None:
        for dim in AUDIT_DIMENSIONS:
            for key in sorted(rollups.get(dim, {})):
                stat = rollups[dim][key]
                if stat.count < config.min_slo_count:
                    continue
                if stat.breach_rate > config.max_breach_rate:
                    breached_keys += 1
                    alerts.append(
                        f"SLO breach on {dim} rollup {key}: breach rate "
                        f"{stat.breach_rate:.3f} > {config.max_breach_rate:.3f} "
                        f"(breaches {stat.breaches}/{stat.count})"
                    )
    status = AUDIT_STATUS_OK
    if len(over) >= config.degraded_overpromise_bins or breached_keys > 0:
        status = AUDIT_STATUS_DEGRADED
    if total > 0 and over:
        over_share = sum(b.count for b in over) / total
        if over_share >= config.violated_overpromise_share:
            status = AUDIT_STATUS_VIOLATED
    return status, tuple(alerts)


def _build_report(
    curve: CalibrationCurve,
    rollup_accs: Mapping[str, Mapping[str, Sequence[float]]],
    unfinished: int,
    config: AuditConfig,
    meta: Optional[Mapping[str, Any]] = None,
) -> AuditReport:
    bins = curve.bins()
    rollups: Dict[str, Dict[str, RollupStat]] = {}
    for dim in AUDIT_DIMENSIONS:
        stats: Dict[str, RollupStat] = {}
        for key in sorted(rollup_accs.get(dim, {})):
            acc = rollup_accs[dim][key]
            stats[key] = RollupStat(
                count=int(acc[0]), honoured=int(acc[1]), promise_sum=float(acc[2])
            )
        rollups[dim] = stats
    status, alerts = _evaluate_status(bins, rollups, config, curve.count)
    return AuditReport(
        schema=AUDIT_SCHEMA_VERSION,
        config=config,
        total=curve.count,
        honoured=curve.successes,
        unfinished=unfinished,
        brier_sum=curve.brier_sum,
        log_loss_sum=curve.log_loss_sum,
        bins=bins,
        rollups=rollups,
        status=status,
        alerts=alerts,
        meta=dict(meta or {}),
    )


class GuaranteeAudit:
    """Streaming promise-vs-outcome aggregator.

    Fed live by ``ProbabilisticQoSSystem`` (``observe_promise`` at
    negotiation, ``observe_outcome`` at finish) or offline from a trace
    via :meth:`ingest`/:meth:`consume`.  :meth:`report` is
    non-destructive: pending promises are folded in as BROKEN in the
    report without mutating the aggregator, so it can be called
    mid-stream.
    """

    enabled = True

    def __init__(self, config: Optional[AuditConfig] = None) -> None:
        self.config = config if config is not None else AuditConfig()
        self._curve = CalibrationCurve(self.config.bin_count, self.config.confidence_z)
        self._rollups: Dict[str, Dict[str, List[float]]] = {
            dim: {} for dim in AUDIT_DIMENSIONS
        }
        self._pending: Dict[int, _Promise] = {}

    @property
    def audited(self) -> int:
        """Promises with a resolved outcome so far."""
        return self._curve.count

    @property
    def pending(self) -> int:
        """Promises still awaiting their finish."""
        return len(self._pending)

    def observe_promise(
        self,
        job_id: int,
        probability: float,
        deadline: float,
        size: int = 0,
        user_id: int = -1,
        nodes: Sequence[int] = (),
    ) -> None:
        """Register a promise made at negotiation time."""
        self._pending[job_id] = _Promise(
            probability=probability,
            deadline=deadline,
            keys=(
                f"user:{user_id}",
                _partition_key(nodes, self.config.node_block),
                _size_key(size),
                _promise_key(probability),
            ),
        )

    def observe_outcome(self, job_id: int, finish_time: Optional[float]) -> None:
        """Resolve a promise against the job's finish time.

        The verdict is recomputed here from ``(deadline, finish_time)``
        via the canonical epsilon helpers — identically for live and
        replayed feeds.  Finishes for jobs with no registered promise
        (EASY runs, truncated traces) are ignored.
        """
        promise = self._pending.pop(job_id, None)
        if promise is None:
            return
        honoured = margin_honours(promise_margin(promise.deadline, finish_time))
        self._score(promise, honoured)

    def ingest(self, record: TraceRecord) -> None:
        """Fold one replayed trace record (negotiated/finish; rest ignored)."""
        if record.kind == "negotiated":
            detail = record.detail
            nodes = detail.get("planned_nodes") or ()
            self.observe_promise(
                job_id=int(record.job_id if record.job_id is not None else -1),
                probability=float(detail["probability"]),
                deadline=float(detail["deadline"]),
                size=int(detail.get("size", 0)),
                user_id=int(detail.get("user_id", -1)),
                nodes=[int(n) for n in nodes],
            )
        elif record.kind == "finish":
            self.observe_outcome(
                job_id=int(record.job_id if record.job_id is not None else -1),
                finish_time=record.time,
            )

    def consume(self, records: Iterable[TraceRecord]) -> "GuaranteeAudit":
        """Fold a whole record stream; returns self for chaining."""
        for record in records:
            self.ingest(record)
        return self

    def _score(self, promise: _Promise, honoured: bool) -> None:
        self._curve.observe(promise.probability, honoured)
        for dim, key in zip(AUDIT_DIMENSIONS, promise.keys):
            acc = self._rollups[dim].setdefault(key, [0, 0, 0.0])
            acc[0] += 1
            if honoured:
                acc[1] += 1
            acc[2] += promise.probability

    def report(self, meta: Optional[Mapping[str, Any]] = None) -> AuditReport:
        """Build the report; pending promises count as BROKEN.

        Non-destructive: the aggregator keeps streaming afterwards.
        Pending promises are folded in deterministic (sorted job id)
        order so live and replayed reports agree bit-for-bit.
        """
        curve = self._curve.clone()
        rollups: Dict[str, Dict[str, List[float]]] = {
            dim: {key: list(acc) for key, acc in accs.items()}
            for dim, accs in self._rollups.items()
        }
        unfinished = len(self._pending)
        for job_id in sorted(self._pending):
            promise = self._pending[job_id]
            curve.observe(promise.probability, False)
            for dim, key in zip(AUDIT_DIMENSIONS, promise.keys):
                acc = rollups[dim].setdefault(key, [0, 0, 0.0])
                acc[0] += 1
                acc[2] += promise.probability
        return _build_report(
            curve=curve,
            rollup_accs=rollups,
            unfinished=unfinished,
            config=self.config,
            meta=meta,
        )


class NullAudit(GuaranteeAudit):
    """Do-nothing audit so uninstrumented runs pay ~0.

    Safe as a shared module-level default because it drops every
    observation — it holds no per-run state (same contract as
    ``NullRegistry``/``NullRecorder``).
    """

    enabled = False

    def observe_promise(
        self,
        job_id: int,
        probability: float,
        deadline: float,
        size: int = 0,
        user_id: int = -1,
        nodes: Sequence[int] = (),
    ) -> None:
        pass

    def observe_outcome(self, job_id: int, finish_time: Optional[float]) -> None:
        pass

    def ingest(self, record: TraceRecord) -> None:
        pass


#: Shared default sink: drops everything, holds no state.
NULL_AUDIT = NullAudit()


def merge_reports(reports: Sequence[AuditReport]) -> AuditReport:
    """Fold a sequence of shard reports into one (associative, and
    commutative up to float summation order).  Raises on an empty
    sequence or mismatched configs."""
    if not reports:
        raise ValueError("cannot merge an empty sequence of audit reports")
    merged = reports[0]
    for report in reports[1:]:
        merged = merged.merge(report)
    return merged


def audit_from_records(
    records: Iterable[TraceRecord],
    config: Optional[AuditConfig] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> AuditReport:
    """One-shot replay audit of a trace record stream."""
    return GuaranteeAudit(config).consume(records).report(meta=meta)


def validate_audit_report(doc: Mapping[str, Any]) -> List[str]:
    """Structural validation of a serialized report; returns problem list.

    Shared by tests and CI (same pattern as ``validate_chrome_trace``):
    an empty return value means the document is a well-formed audit
    report whose counts are internally consistent.
    """
    problems: List[str] = []
    if not isinstance(doc, Mapping):
        return ["report is not a JSON object"]
    if doc.get("schema") != AUDIT_SCHEMA_VERSION:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {AUDIT_SCHEMA_VERSION}"
        )
    for field_name in ("total", "honoured", "broken", "unfinished"):
        value = doc.get(field_name)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{field_name} is {value!r}, expected int >= 0")
    status = doc.get("status")
    if status not in AUDIT_STATUSES:
        problems.append(f"status {status!r} not in {AUDIT_STATUSES}")
    if not isinstance(doc.get("alerts"), list):
        problems.append("alerts is not a list")
    bins = doc.get("bins")
    if not isinstance(bins, list) or not bins:
        problems.append("bins is not a non-empty list")
        return problems
    total = doc.get("total")
    if isinstance(total, int):
        bin_total = sum(int(b.get("count", 0)) for b in bins)
        if bin_total != total:
            problems.append(f"bin counts sum to {bin_total}, total is {total}")
        honoured = doc.get("honoured")
        bin_honoured = sum(int(b.get("successes", 0)) for b in bins)
        if isinstance(honoured, int) and bin_honoured != honoured:
            problems.append(
                f"bin successes sum to {bin_honoured}, honoured is {honoured}"
            )
    prev_high: Optional[float] = None
    for i, b in enumerate(bins):
        for key in ("low", "high", "mean_forecast", "success_rate", "wilson_low", "wilson_high"):
            if not isinstance(b.get(key), (int, float)):
                problems.append(f"bin {i}: {key} is {b.get(key)!r}, expected number")
        if not isinstance(b.get("count"), int) or not isinstance(b.get("successes"), int):
            problems.append(f"bin {i}: count/successes must be ints")
            continue
        if b["successes"] > b["count"]:
            problems.append(f"bin {i}: successes {b['successes']} > count {b['count']}")
        low, high = b.get("low"), b.get("high")
        if isinstance(low, (int, float)) and isinstance(high, (int, float)):
            if high <= low:
                problems.append(f"bin {i}: high {high} <= low {low}")
            if prev_high is not None and abs(low - prev_high) > 1e-9:
                problems.append(f"bin {i}: low {low} does not abut previous high {prev_high}")
            prev_high = float(high)
        wl, wh, rate = b.get("wilson_low"), b.get("wilson_high"), b.get("success_rate")
        if (
            isinstance(wl, (int, float))
            and isinstance(wh, (int, float))
            and isinstance(rate, (int, float))
            and b["count"] > 0
            and not (wl - 1e-9 <= rate <= wh + 1e-9)
        ):
            problems.append(
                f"bin {i}: success_rate {rate} outside Wilson interval [{wl}, {wh}]"
            )
    rollups = doc.get("rollups")
    if not isinstance(rollups, Mapping):
        problems.append("rollups is not an object")
    else:
        for dim in AUDIT_DIMENSIONS:
            keys = rollups.get(dim)
            if not isinstance(keys, Mapping):
                problems.append(f"rollup dimension {dim!r} missing")
                continue
            if isinstance(total, int):
                dim_total = sum(int(s.get("count", 0)) for s in keys.values())
                if dim_total != total:
                    problems.append(
                        f"rollup {dim!r} counts sum to {dim_total}, total is {total}"
                    )
    return problems


def _fmt_interval(b: ReliabilityBin) -> str:
    return f"[{b.wilson_low:.3f}, {b.wilson_high:.3f}]"


def reliability_diagram_text(
    bins: Sequence[ReliabilityBin], width: int = 30
) -> str:
    """ASCII reliability diagram of the populated bins.

    Per row: the promise range, count, a bar of the empirical honoured
    rate (``=``), a ``|`` marker where the bar should end for perfect
    honesty (the bin's mean promise), and the Wilson 95% interval.
    """
    populated = [b for b in bins if b.count > 0]
    if not populated:
        return "(no promises audited)"
    lines = [
        f"{'promise':>12} {'n':>7} {'rate':>6}  "
        f"{'honoured rate (=) vs promised (|)':<{width + 2}} wilson 95%"
    ]
    for b in populated:
        bar_len = int(round(b.success_rate * width))
        marker = min(int(round(b.mean_forecast * width)), width)
        row = ["="] * bar_len + [" "] * (width - bar_len + 1)
        row[marker] = "|"
        flag = "  OVER-PROMISED" if b.over_confident else ""
        closing = "]" if b.high >= 1.0 else ")"
        lines.append(
            f"[{b.low:4.2f},{b.high:4.2f}{closing} {b.count:7d} {b.success_rate:6.1%}  "
            f"{''.join(row)}  {_fmt_interval(b)}{flag}"
        )
    return "\n".join(lines)


def reliability_diagram_csv(report: AuditReport) -> str:
    """CSV of the reliability diagram (populated bins only)."""
    lines = [
        "low,high,count,honoured,honoured_rate,mean_promised,"
        "wilson_low,wilson_high,over_promised"
    ]
    for b in report.bins:
        if b.count == 0:
            continue
        lines.append(
            f"{b.low:.2f},{b.high:.2f},{b.count},{b.successes},"
            f"{b.success_rate:.6f},{b.mean_forecast:.6f},"
            f"{b.wilson_low:.6f},{b.wilson_high:.6f},"
            f"{int(b.over_confident)}"
        )
    return "\n".join(lines) + "\n"


def _render_rollup_section(report: AuditReport, dim: str, limit: int = 8) -> List[str]:
    stats = report.rollups.get(dim, {})
    populated = [(key, s) for key, s in sorted(stats.items()) if s.count > 0]
    if not populated:
        return []
    lines = [f"  by {dim} ({len(populated)} keys):"]
    # Worst offenders first when the key space is wide; everything when
    # it is narrow.  Ties broken by key for deterministic output.
    shown = sorted(populated, key=lambda kv: (-kv[1].breach_rate, kv[0]))[:limit]
    for key, s in shown:
        lines.append(
            f"    {key:<16} n={s.count:<6d} breaches={s.breaches:<5d} "
            f"breach rate {s.breach_rate:6.1%}  mean promise {s.mean_promised:.3f}"
        )
    if len(populated) > limit:
        lines.append(f"    ... {len(populated) - limit} more keys (see JSON report)")
    return lines


def render_report(report: AuditReport) -> str:
    """Human-readable audit report (the CLI's text format)."""
    scoring = report.scoring()
    lines = [
        f"Guarantee audit — status: {report.status}",
        (
            f"  promises audited: {report.total} "
            f"(honoured {report.honoured}, broken {report.broken}, "
            f"never finished {report.unfinished})"
        ),
    ]
    if report.total:
        lines.append(
            f"  honoured rate {report.honoured_rate:.4f} vs mean promise "
            f"{report.mean_promised:.4f}"
        )
        lines.append(
            f"  brier {scoring.brier:.4f} (calibration {scoring.calibration:.4f} "
            f"+ refinement {scoring.refinement:.4f} = binned "
            f"{scoring.brier_binned:.4f})  log loss {scoring.log_loss:.4f}  "
            f"ECE {scoring.expected_calibration_error:.4f}"
        )
    if report.meta.get("merged", 1) != 1:
        lines.append(f"  merged from {report.meta['merged']} reports")
    lines.append("")
    lines.append("Reliability (promise bin -> empirical honoured rate):")
    lines.append(reliability_diagram_text(report.bins))
    rollup_lines: List[str] = []
    for dim in AUDIT_DIMENSIONS:
        rollup_lines.extend(_render_rollup_section(report, dim))
    if rollup_lines:
        lines.append("")
        lines.append("SLO rollups (worst breach rates first):")
        lines.extend(rollup_lines)
    if report.alerts:
        lines.append("")
        lines.append("Alerts:")
        for alert in report.alerts:
            lines.append(f"  - {alert}")
    return "\n".join(lines)
