"""Continuous perf-regression tracking over BENCH ledgers.

``benchmarks/perf/run.py`` writes one JSON ledger per run (schema in
``benchmarks/perf/ledger_bench.py``): named scenarios, each carrying its
``params``, wall-clock timing entries (``median_s``), throughput medians
(``events_per_s_median``), and the deterministic ``obs`` counter totals
the run produced.  This module diffs two such ledgers — ``probqos bench
compare OLD NEW`` — and renders history across many — ``probqos bench
trend`` — so a perf regression fails CI loudly *with the scenario- and
metric-level diff attached* instead of rotting silently in an artifact.

Metric classes and their gates:

* **time** (paths ending in ``median_s``; seconds, lower is better):
  regressed only when *both* the ratio exceeds ``time_ratio`` *and* the
  absolute slowdown exceeds ``min_abs_s``.  The two-sided guard is the
  noise tolerance: micro-benchmarks jitter by tens of percent on shared
  CI runners, so a pure ratio gate on a 2 ms scenario would cry wolf
  weekly, while a pure absolute gate would wave through a 10x slowdown
  of a fast path.
* **rate** (``events_per_s_median``; higher is better): ratio-only, same
  tolerance factor, no absolute guard (throughput medians are already
  aggregates).
* **count** (paths under ``obs.``; simulation-determined work counters):
  machine-independent, so they gate cross-machine runs where wall time
  cannot (``--counts-only``).  A count regression means the *algorithm*
  did more work — extra probes, extra rebuilds — regardless of runner
  speed.

Scenario params must match (excluding :data:`VOLATILE_PARAMS`) for a
scenario to be compared at all; mismatches are reported as
``incomparable``, and scenarios present on only one side as ``added`` /
``removed`` — neither is a regression.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Version of the comparison-result layout.
BENCH_COMPARE_SCHEMA_VERSION = 1

#: A time metric regresses only past BOTH thresholds (ratio and absolute).
DEFAULT_TIME_RATIO = 1.5
DEFAULT_MIN_ABS_S = 0.05

#: Work counters are deterministic; small relative drift still allowed
#: (pool scheduling can shift which worker pays one-off preparation).
DEFAULT_COUNT_RATIO = 1.25
#: ...and tiny counters are exempt from the ratio gate entirely.
COUNT_MIN_DELTA = 16

#: Scenario params that legitimately differ across machines; excluded
#: from the comparability check.
VOLATILE_PARAMS = frozenset({"cpu_count", "replays_per_config"})

#: Per-metric and per-scenario verdicts, roughly worst-first.
VERDICTS = ("regressed", "incomparable", "removed", "added", "improved", "ok")


def load_ledger(path: str) -> Dict[str, Any]:
    """Read a BENCH ledger; raises ValueError if it is not one."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "scenarios" not in doc:
        raise ValueError(f"{path}: not a BENCH ledger (no 'scenarios' key)")
    if not isinstance(doc.get("schema"), int):
        raise ValueError(f"{path}: BENCH ledger missing integer 'schema'")
    return doc


# ----------------------------------------------------------------------
# Metric extraction
# ----------------------------------------------------------------------
def _flatten(obj: Any, prefix: str, out: Dict[str, float]) -> None:
    if isinstance(obj, dict):
        for key in obj:
            _flatten(obj[key], f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)


def _metric_class(path: str) -> Optional[str]:
    """``time`` / ``rate`` / ``count`` for gated paths, None otherwise.

    Everything else in a scenario — sample lists, RSS, checksums,
    ``speedup_vs_seed`` — is informational and never gated.
    """
    leaf = path.rsplit(".", 1)[-1]
    if leaf == "median_s":
        return "time"
    if leaf == "events_per_s_median":
        return "rate"
    if path.startswith("obs."):
        return "count"
    return None


def scenario_metrics(scenario: Dict[str, Any]) -> Dict[str, Tuple[str, float]]:
    """Gated metrics of one scenario: ``{path: (class, value)}``."""
    flat: Dict[str, float] = {}
    for key, value in scenario.items():
        if key in ("params", "description"):
            continue
        _flatten(value, key, flat)
    metrics: Dict[str, Tuple[str, float]] = {}
    for path in sorted(flat):
        cls = _metric_class(path)
        if cls is not None:
            metrics[path] = (cls, flat[path])
    return metrics


def _params_diff(
    old: Dict[str, Any], new: Dict[str, Any]
) -> Dict[str, List[Any]]:
    """``{param: [old, new]}`` for every non-volatile mismatch."""
    diff: Dict[str, List[Any]] = {}
    for key in sorted(set(old) | set(new)):
        if key in VOLATILE_PARAMS:
            continue
        if old.get(key) != new.get(key):
            diff[key] = [old.get(key), new.get(key)]
    return diff


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _judge(
    cls: str,
    old: float,
    new: float,
    time_ratio: float,
    min_abs_s: float,
    count_ratio: float,
) -> str:
    if cls == "time":
        if new > old * time_ratio and new - old > min_abs_s:
            return "regressed"
        if old > new * time_ratio and old - new > min_abs_s:
            return "improved"
        return "ok"
    if cls == "rate":  # higher is better
        if old > 0 and new < old / time_ratio:
            return "regressed"
        if new > 0 and old < new / time_ratio:
            return "improved"
        return "ok"
    # count: deterministic work totals, near-exact
    if new > old * count_ratio and new - old > COUNT_MIN_DELTA:
        return "regressed"
    if old > new * count_ratio and old - new > COUNT_MIN_DELTA:
        return "improved"
    return "ok"


def compare_ledgers(
    old_doc: Dict[str, Any],
    new_doc: Dict[str, Any],
    time_ratio: float = DEFAULT_TIME_RATIO,
    min_abs_s: float = DEFAULT_MIN_ABS_S,
    count_ratio: float = DEFAULT_COUNT_RATIO,
    counts_only: bool = False,
) -> Dict[str, Any]:
    """Diff two BENCH ledgers with noise-tolerant gates.

    Args:
        old_doc: The baseline ledger (e.g. the committed one).
        new_doc: The candidate ledger (e.g. this run's).
        time_ratio: Slowdown factor a time/rate metric must exceed.
        min_abs_s: Absolute seconds a time metric must additionally lose.
        count_ratio: Relative growth a work counter must exceed.
        counts_only: Gate only the machine-independent ``obs.`` counters
            (for cross-machine CI, where the baseline's wall times were
            measured on different hardware).

    Returns:
        A JSON-serialisable result: per-scenario metric verdicts, the
        flat ``regressions`` list CI prints, and the overall ``verdict``
        (``regressed`` iff any metric regressed).
    """
    if old_doc.get("schema") != new_doc.get("schema"):
        raise ValueError(
            f"ledger schema mismatch: old={old_doc.get('schema')!r} "
            f"new={new_doc.get('schema')!r} — regenerate the baseline"
        )
    old_scenarios = old_doc.get("scenarios", {})
    new_scenarios = new_doc.get("scenarios", {})
    scenarios: Dict[str, Any] = {}
    regressions: List[Dict[str, Any]] = []
    improvements: List[Dict[str, Any]] = []

    for name in sorted(set(old_scenarios) | set(new_scenarios)):
        if name not in new_scenarios:
            scenarios[name] = {"verdict": "removed", "metrics": {}}
            continue
        if name not in old_scenarios:
            scenarios[name] = {"verdict": "added", "metrics": {}}
            continue
        old_s, new_s = old_scenarios[name], new_scenarios[name]
        diff = _params_diff(old_s.get("params", {}), new_s.get("params", {}))
        if diff:
            scenarios[name] = {
                "verdict": "incomparable",
                "params_diff": diff,
                "metrics": {},
            }
            continue
        old_m = scenario_metrics(old_s)
        new_m = scenario_metrics(new_s)
        metrics: Dict[str, Any] = {}
        worst = "ok"
        for path in sorted(set(old_m) | set(new_m)):
            if path not in old_m or path not in new_m:
                continue  # instrumentation added/removed, not a regression
            cls, old_v = old_m[path]
            _, new_v = new_m[path]
            if counts_only and cls != "count":
                continue
            verdict = _judge(
                cls, old_v, new_v, time_ratio, min_abs_s, count_ratio
            )
            if old_v:
                ratio = new_v / old_v
            else:
                ratio = 1.0 if not new_v else float("inf")
            metrics[path] = {
                "class": cls,
                "old": old_v,
                "new": new_v,
                "ratio": ratio,
                "verdict": verdict,
            }
            entry = {
                "scenario": name,
                "metric": path,
                "class": cls,
                "old": old_v,
                "new": new_v,
                "ratio": ratio,
            }
            if verdict == "regressed":
                regressions.append(entry)
                worst = "regressed"
            elif verdict == "improved":
                improvements.append(entry)
                if worst == "ok":
                    worst = "improved"
        scenarios[name] = {"verdict": worst, "metrics": metrics}

    return {
        "schema": BENCH_COMPARE_SCHEMA_VERSION,
        "thresholds": {
            "time_ratio": time_ratio,
            "min_abs_s": min_abs_s,
            "count_ratio": count_ratio,
            "counts_only": counts_only,
        },
        "scenarios": scenarios,
        "regressions": regressions,
        "improvements": improvements,
        "verdict": "regressed" if regressions else "ok",
    }


def _fmt_metric(cls: str, value: float) -> str:
    if cls == "time":
        return f"{value * 1e3:.2f} ms" if value < 1.0 else f"{value:.3f} s"
    if cls == "rate":
        return f"{value:.0f}/s"
    return f"{value:g}"


def render_compare(result: Dict[str, Any], verbose: bool = False) -> str:
    """Render a :func:`compare_ledgers` result as the CLI text report."""
    lines: List[str] = []
    thresholds = result["thresholds"]
    gates = (
        f"time >{thresholds['time_ratio']:g}x and "
        f">{thresholds['min_abs_s']:g}s, counts >{thresholds['count_ratio']:g}x"
    )
    if thresholds["counts_only"]:
        gates += " (counts only)"
    lines.append(f"Bench compare: {result['verdict'].upper()}  [{gates}]")
    for name in sorted(result["scenarios"]):
        scenario = result["scenarios"][name]
        verdict = scenario["verdict"]
        gated = len(scenario["metrics"])
        flagged = [
            (path, m)
            for path, m in scenario["metrics"].items()
            if m["verdict"] != "ok"
        ]
        lines.append(f"  {name:<24} {verdict:<12} ({gated} metrics gated)")
        if "params_diff" in scenario:
            for param, (old, new) in sorted(scenario["params_diff"].items()):
                lines.append(f"    params.{param}: {old!r} -> {new!r}")
        shown = (
            sorted(scenario["metrics"].items()) if verbose
            else sorted(flagged)
        )
        for path, m in shown:
            lines.append(
                f"    {m['verdict']:<10} {path}: "
                f"{_fmt_metric(m['class'], m['old'])} -> "
                f"{_fmt_metric(m['class'], m['new'])} "
                f"({m['ratio']:.2f}x)"
            )
    if result["regressions"]:
        lines.append("")
        lines.append(f"{len(result['regressions'])} regression(s):")
        for entry in result["regressions"]:
            lines.append(
                f"  {entry['scenario']}::{entry['metric']} "
                f"{entry['ratio']:.2f}x"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trend
# ----------------------------------------------------------------------
def trend_data(
    docs: Sequence[Tuple[str, Dict[str, Any]]]
) -> Dict[str, Dict[str, Any]]:
    """Metric history across a ledger sequence (oldest first).

    Returns ``{scenario::path: {"class", "labels", "values"}}`` for every
    gated metric present in at least two of the ledgers; ledgers missing
    a metric contribute ``None`` at their position.
    """
    series: Dict[str, Dict[str, Any]] = {}
    labels = [label for label, _ in docs]
    for position, (_, doc) in enumerate(docs):
        for name, scenario in doc.get("scenarios", {}).items():
            for path, (cls, value) in scenario_metrics(scenario).items():
                key = f"{name}::{path}"
                row = series.setdefault(
                    key,
                    {
                        "class": cls,
                        "labels": labels,
                        "values": [None] * len(docs),
                    },
                )
                row["values"][position] = value
    return {
        key: row
        for key, row in sorted(series.items())
        if sum(v is not None for v in row["values"]) >= 2
    }


def render_trend(docs: Sequence[Tuple[str, Dict[str, Any]]]) -> str:
    """Render metric history across ledgers with sparklines."""
    from repro.obs.export import _sparkline

    series = trend_data(docs)
    lines = [
        f"Bench trend over {len(docs)} ledgers "
        f"({', '.join(label for label, _ in docs)}):"
    ]
    if not series:
        lines.append("  no metric appears in two or more ledgers")
        return "\n".join(lines)
    width = max(len(key) for key in series)
    for key, row in series.items():
        present = [v for v in row["values"] if v is not None]
        first, last = present[0], present[-1]
        if first:
            change = (last / first - 1.0) * 100.0
        else:
            change = 0.0 if not last else float("inf")
        lines.append(
            f"  {key:<{width}}  {_sparkline(present)}  "
            f"{_fmt_metric(row['class'], first)} -> "
            f"{_fmt_metric(row['class'], last)} ({change:+.1f}%)"
        )
    return "\n".join(lines)
