"""The deadline-negotiation dialogue between system and user.

This is the paper's central mechanism (Sections 3.3 and 3.5): at submission
the scheduler looks for the earliest time the job could run, selects the
partition with the lowest predicted failure probability, and offers the user
a deadline together with a promised success probability ``p = 1 − p_f``.
If the user declines (their risk threshold ``U`` exceeds ``p``), the system
produces the next-earliest offer — a later slot and/or a safer partition —
and the dialogue repeats.  The user accepts the earliest offer satisfying
Equation 3, so deadlines are pushed "no further than necessary".

Offer enumeration is exact for the booked region: free capacity changes
only at reservation end points, so those are the only candidate start times
(plus "now").  Past the booking horizon the cluster is entirely free and
offers can only improve by *jumping past predicted failures*; the loop
advances the candidate start just beyond the earliest predicted failure of
the best partition until the promise clears the threshold (the failure
trace is finite, so this terminates), with a hard cap as a safety valve —
if the cap is hit, the best offer seen is imposed and flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.reservations import NodeScorer, ReservationLedger
from repro.cluster.topology import Topology
from repro.core.guarantee import DeadlineOffer, QoSGuarantee
from repro.core.users import UserModel
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.prediction.base import Predictor

#: Seconds added when jumping a candidate start past a predicted failure.
_FAILURE_JUMP_EPSILON = 1.0


@dataclass(frozen=True)
class NegotiationOutcome:
    """Result of one submission dialogue.

    Attributes:
        guarantee: The promise as recorded by the system.
        start: Reserved start time.
        nodes: Reserved partition (sorted).
        reserved_end: Reservation end (start + padded duration).
        offers_made: Offers laid on the table including the accepted one.
        forced: True if the safety cap ended the dialogue and the best
            offer was imposed rather than accepted.
    """

    guarantee: QoSGuarantee
    start: float
    nodes: Tuple[int, ...]
    reserved_end: float
    offers_made: int
    forced: bool


class Negotiator:
    """Produces offers and records accepted guarantees.

    Args:
        ledger: The scheduler's reservation book.
        topology: Allocation-shape constraint (flat in the paper).
        predictor: The event predictor behind every promise.
        scorer: Node ranking used to pick partitions; the paper's system
            passes the fault-aware scorer.
        max_offers: Dialogue safety cap.
        registry: Optional obs registry; when live, every dialogue records
            its probe depth, offer count, and the rank of the accepted
            offer under ``negotiation.dialogue.*``.
    """

    def __init__(
        self,
        ledger: ReservationLedger,
        topology: Topology,
        predictor: Predictor,
        scorer: Optional[NodeScorer] = None,
        max_offers: int = 400,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_offers < 1:
            raise ValueError(f"max_offers must be >= 1, got {max_offers}")
        self._ledger = ledger
        self._topology = topology
        self._predictor = predictor
        self._scorer = scorer
        self._max_offers = max_offers
        registry = registry if registry is not None else NULL_REGISTRY
        self._obs = registry.enabled
        self._c_dialogues = registry.counter("negotiation.dialogue.dialogues")
        self._c_probes = registry.counter("negotiation.dialogue.probes")
        self._c_forced = registry.counter("negotiation.dialogue.forced")
        self._h_offers = registry.histogram("negotiation.dialogue.offers_per_job")
        self._h_accepted_rank = registry.histogram(
            "negotiation.dialogue.accepted_rank"
        )

    # ------------------------------------------------------------------
    # Offer generation
    # ------------------------------------------------------------------
    def make_offer(
        self, size: int, duration: float, start: float
    ) -> Optional[DeadlineOffer]:
        """Best offer starting exactly at ``start``, or None if infeasible.

        Picks the lowest-failure-probability partition among the free nodes
        (the paper's tie-breaking), then quotes ``p = 1 − p_f`` for it.
        """
        free = self._ledger.free_nodes(start, start + duration)
        if len(free) < size:
            return None
        nodes = self._topology.select_partition(
            free, size, start, start + duration, self._scorer
        )
        if nodes is None:
            return None
        p_f = self._predictor.failure_probability(nodes, start, start + duration)
        return DeadlineOffer(
            start=start,
            nodes=tuple(nodes),
            deadline=start + duration,
            probability=1.0 - p_f,
            failure_probability=p_f,
        )

    def iter_offers(self, size: int, duration: float, earliest: float):
        """Yield offers in nondecreasing deadline order.

        First the exact candidates of the booked region, then the
        jump-past-predicted-failure sequence; stops after
        ``self._max_offers`` offers.
        """
        produced = 0
        last_start = earliest
        obs = self._obs
        probes = self._c_probes
        # Capacity prefilter: reject candidates that cannot possibly have
        # enough simultaneously free nodes without per-node scans.  The
        # ledger is not mutated during one dialogue, so its cached profile
        # serves the whole enumeration.
        profile = self._ledger.profile()
        total = self._ledger.node_count
        for start in self._ledger.candidate_times(earliest):
            last_start = start
            if obs:
                probes.inc()
            if not profile.window_fits(start, start + duration, size, total):
                continue
            offer = self.make_offer(size, duration, start)
            if offer is None:
                continue
            produced += 1
            yield offer
            if produced >= self._max_offers:
                return
        # Past the booking horizon: jump beyond predicted failures.
        start = last_start
        while produced < self._max_offers:
            if obs:
                probes.inc()
            offer = self.make_offer(size, duration, start)
            if offer is None:
                return  # cluster narrower than the job; caller validates
            produced += 1
            yield offer
            predicted = self._predictor.predicted_failures(
                offer.nodes, start, start + duration
            )
            if not predicted:
                return  # perfect offer; nothing later can beat p = 1
            start = predicted[0].time + _FAILURE_JUMP_EPSILON

    # ------------------------------------------------------------------
    # The dialogue
    # ------------------------------------------------------------------
    def negotiate(
        self,
        job_id: int,
        size: int,
        duration: float,
        now: float,
        user: UserModel,
    ) -> NegotiationOutcome:
        """Run the submission dialogue and book the accepted offer.

        Args:
            job_id: Job being submitted.
            size: Nodes required (``n_j``).
            duration: Padded runtime ``E_j`` to reserve.
            now: Submission time (offers start at or after it).
            user: The user's risk strategy.

        Returns:
            The accepted (or imposed) :class:`NegotiationOutcome`; the
            reservation is already booked in the ledger.

        Raises:
            ValueError: If the job can never fit (size > cluster width).
        """
        if size > self._ledger.node_count:
            raise ValueError(
                f"job {job_id}: size {size} exceeds cluster width "
                f"{self._ledger.node_count}"
            )

        best: Optional[DeadlineOffer] = None
        accepted: Optional[DeadlineOffer] = None
        offers_made = 0
        for offer in self.iter_offers(size, duration, now):
            offers_made += 1
            if best is None or offer.probability > best.probability:
                best = offer
            if user.accepts(offer):
                accepted = offer
                break

        forced = accepted is None
        if accepted is None:
            if best is None:
                raise RuntimeError(
                    f"job {job_id}: no feasible offer (topology cannot place "
                    f"{size} nodes)"
                )
            accepted = best  # cap hit: impose the safest offer seen

        if self._obs:
            self._c_dialogues.inc()
            self._h_offers.observe(offers_made)
            if forced:
                self._c_forced.inc()
            else:
                # Rank 1 = first offer accepted (deadline pushed "no
                # further than necessary" with no pushback at all).
                self._h_accepted_rank.observe(offers_made)

        self._ledger.reserve(job_id, accepted.nodes, accepted.start, accepted.deadline)
        guarantee = QoSGuarantee(
            job_id=job_id,
            deadline=accepted.deadline,
            probability=accepted.probability,
            predicted_failure_probability=accepted.failure_probability,
            negotiated_at=now,
            planned_start=accepted.start,
            planned_nodes=accepted.nodes,
            offers_declined=offers_made - (0 if forced else 1),
        )
        return NegotiationOutcome(
            guarantee=guarantee,
            start=accepted.start,
            nodes=accepted.nodes,
            reserved_end=accepted.deadline,
            offers_made=offers_made,
            forced=forced,
        )

    def suggest_deadline(
        self, size: int, duration: float, now: float, target_probability: float
    ) -> Optional[DeadlineOffer]:
        """The paper's "the scheduler could even suggest a deadline": the
        earliest offer whose promise reaches ``target_probability``.

        Purely advisory — nothing is booked.  Returns None if the dialogue
        cap is reached first.
        """
        for offer in self.iter_offers(size, duration, now):
            if offer.probability >= target_probability - 1e-12:
                return offer
        return None
