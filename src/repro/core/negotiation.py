"""The deadline-negotiation dialogue between system and user.

This is the paper's central mechanism (Sections 3.3 and 3.5): at submission
the scheduler looks for the earliest time the job could run, selects the
partition with the lowest predicted failure probability, and offers the user
a deadline together with a promised success probability ``p = 1 − p_f``.
If the user declines (their risk threshold ``U`` exceeds ``p``), the system
produces the next-earliest offer — a later slot and/or a safer partition —
and the dialogue repeats.  The user accepts the earliest offer satisfying
Equation 3, so deadlines are pushed "no further than necessary".

Offer enumeration is exact for the booked region: free capacity changes
only at reservation end points, so those are the only candidate start times
(plus "now").  Past the booking horizon the cluster is entirely free and
offers can only improve by *jumping past predicted failures*; the loop
advances the candidate start just beyond the earliest predicted failure of
the best partition until the promise clears the threshold (the failure
trace is finite, so this terminates), with a hard cap as a safety valve —
if the cap is hit, the best offer seen is imposed and flagged.

Negotiation modes
-----------------

The dialogue can price offers three ways (``Negotiator(mode=...)``):

``analytical`` (default)
    Offers are priced by an :class:`~repro.core.fastpath
    .AnalyticalEvaluator` — cached per-node survival terms combined
    analytically instead of re-querying the predictor per candidate.  For
    :class:`~repro.core.users.RiskThresholdUser` dialogues the enumeration
    additionally *prunes*: before probing a candidate window, a sound upper
    bound on the promise any partition could earn there is compared against
    the user's threshold, and provably-declined candidates are skipped
    without partition selection or pricing.  Pruned candidates still count
    toward the dialogue cap (keeping the enumeration aligned with probe
    mode), and if a pruned dialogue ends without acceptance the negotiator
    reruns it unpruned, so the accepted/imposed outcome is always identical
    to probe mode — only ``offers_made`` / ``offers_declined`` shrink,
    because pruned offers were never laid on the table.

``probe``
    The original simulated dialogue: every candidate is priced by a live
    predictor query.  Kept as the oracle of record.

``oracle``
    Probe mode with a built-in cross-check: every offer is priced both
    ways and the two must agree within ``oracle_tolerance``; the *probe*
    value is emitted, so accepted offers are bit-identical to probe mode
    by construction.  Use it to validate the fast path against a new
    predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.cluster.nodeset import freeze_nodes
from repro.cluster.reservations import NodeScorer, ReservationLedger
from repro.cluster.topology import Topology
from repro.core.fastpath import AnalyticalEvaluator
from repro.core.guarantee import DeadlineOffer, QoSGuarantee
from repro.core.users import RiskThresholdUser, UserModel
from repro.obs.prof import NULL_PROFILER, Profiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.prediction.base import Predictor

#: Valid values for ``Negotiator(mode=...)``.
NEGOTIATION_MODES: Tuple[str, ...] = ("probe", "analytical", "oracle")

#: Default absolute tolerance for the oracle-mode cross-check.  The trace
#: and online fast paths are bit-identical by construction, so any
#: disagreement here means a predictor's ``node_failure_term`` does not
#: match its ``failure_probability`` decomposition (see DESIGN.md).
DEFAULT_ORACLE_TOLERANCE = 1e-9

#: Acceptance slack shared with ``RiskThresholdUser.accepts`` — the pruning
#: bound must use the exact same epsilon or it could skip an offer the user
#: would have taken.
_ACCEPT_EPSILON = 1e-12


class OracleDisagreement(RuntimeError):
    """Raised in oracle mode when the analytical promise strays from the
    probe promise by more than the configured tolerance."""


@dataclass(frozen=True)
class NegotiationOutcome:
    """Result of one submission dialogue.

    Attributes:
        guarantee: The promise as recorded by the system.
        start: Reserved start time.
        nodes: Reserved partition (ascending; a tuple or a run-length
            :class:`~repro.cluster.nodeset.NodeSet` — equal either way).
        reserved_end: Reservation end (start + padded duration).
        offers_made: Offers laid on the table including the accepted one
            (pruned candidates were never on the table and do not count).
        forced: True if the safety cap ended the dialogue and the best
            offer was imposed rather than accepted.
    """

    guarantee: QoSGuarantee
    start: float
    nodes: Sequence[int]
    reserved_end: float
    offers_made: int
    forced: bool


@dataclass(frozen=True)
class DeadlineSuggestion:
    """Typed result of the advisory :meth:`Negotiator.suggest_deadline`.

    Attributes:
        offer: The earliest offer reaching the target, or None.
        status: ``"found"`` when an offer reached the target;
            ``"cap_reached"`` when the dialogue cap ended the search first
            (a feasible deadline may exist beyond the cap); ``"infeasible"``
            when the enumeration exhausted naturally — no partition of the
            requested size can ever be placed.
        offers_examined: Candidates examined, including pruned ones.
    """

    offer: Optional[DeadlineOffer]
    status: str
    offers_examined: int

    @property
    def found(self) -> bool:
        """True when an offer reaching the target was found."""
        return self.offer is not None


class Negotiator:
    """Produces offers and records accepted guarantees.

    Args:
        ledger: The scheduler's reservation book.
        topology: Allocation-shape constraint (flat in the paper).
        predictor: The event predictor behind every promise.
        scorer: Node ranking used to pick partitions; the paper's system
            passes the fault-aware scorer.
        max_offers: Dialogue safety cap.
        registry: Optional obs registry; when live, every dialogue records
            its probe depth, offer count, and the rank of the accepted
            offer under ``negotiation.dialogue.*``.
        mode: Offer-pricing mode, one of :data:`NEGOTIATION_MODES` (see
            the module docstring).
        failure_jump_epsilon: Seconds added when advancing a candidate
            start past a predicted failure; must be positive or the jump
            loop could stall on the failure instant itself.
        evaluator: The analytical evaluator to price offers with (built
            from ``predictor`` when omitted).  The system passes a shared
            instance so placement scoring reuses the same term cache.
        oracle_tolerance: Absolute tolerance for the oracle cross-check.
        profiler: Optional hierarchical profiler (:mod:`repro.obs.prof`);
            when live, each dialogue runs inside the
            ``negotiation.dialogue.negotiate`` zone, and a self-built
            evaluator inherits it.
    """

    def __init__(
        self,
        ledger: ReservationLedger,
        topology: Topology,
        predictor: Predictor,
        scorer: Optional[NodeScorer] = None,
        max_offers: int = 400,
        registry: Optional[MetricsRegistry] = None,
        mode: str = "analytical",
        failure_jump_epsilon: float = 1.0,
        evaluator: Optional[AnalyticalEvaluator] = None,
        oracle_tolerance: float = DEFAULT_ORACLE_TOLERANCE,
        profiler: Optional[Profiler] = None,
    ) -> None:
        if max_offers < 1:
            raise ValueError(f"max_offers must be >= 1, got {max_offers}")
        if mode not in NEGOTIATION_MODES:
            raise ValueError(
                f"mode must be one of {NEGOTIATION_MODES}, got {mode!r}"
            )
        if failure_jump_epsilon <= 0.0:
            raise ValueError(
                "failure_jump_epsilon must be positive, got "
                f"{failure_jump_epsilon}"
            )
        self._ledger = ledger
        self._topology = topology
        # Prefer the run-length free-set query when the ledger offers one
        # (the frozen seed ledger only speaks lists); both iterate the same
        # nodes ascending, so offers are identical either way.
        self._free_query = getattr(ledger, "free_nodes_set", ledger.free_nodes)
        self._predictor = predictor
        self._scorer = scorer
        self._max_offers = max_offers
        self._mode = mode
        self._jump_epsilon = float(failure_jump_epsilon)
        self._oracle_tolerance = float(oracle_tolerance)
        registry = registry if registry is not None else NULL_REGISTRY
        profiler = profiler if profiler is not None else NULL_PROFILER
        if mode == "probe":
            self._eval: Optional[AnalyticalEvaluator] = None
        elif evaluator is not None:
            self._eval = evaluator
        else:
            self._eval = AnalyticalEvaluator(
                predictor, ledger.node_count, registry=registry,
                profiler=profiler,
            )
        # Jump targets come from the evaluator only in analytical mode;
        # probe and oracle stay faithful to the live predictor.
        self._jump_source: Predictor = (
            self._eval if self._mode == "analytical" and self._eval is not None
            else predictor
        )
        self._obs = registry.enabled
        self._c_dialogues = registry.counter("negotiation.dialogue.dialogues")
        self._c_probes = registry.counter("negotiation.dialogue.probes")
        self._c_prefilter = registry.counter(
            "negotiation.dialogue.prefilter_rejects"
        )
        self._c_pruned = registry.counter("negotiation.dialogue.pruned")
        self._c_forced = registry.counter("negotiation.dialogue.forced")
        self._c_advisories = registry.counter("negotiation.dialogue.advisories")
        self._c_oracle_checks = registry.counter(
            "negotiation.fastpath.oracle_checks"
        )
        self._h_offers = registry.histogram("negotiation.dialogue.offers_per_job")
        self._h_accepted_rank = registry.histogram(
            "negotiation.dialogue.accepted_rank"
        )
        self._prof = profiler.enabled
        self._z_negotiate = profiler.zone("negotiation.dialogue.negotiate")

    @property
    def mode(self) -> str:
        """The configured pricing mode."""
        return self._mode

    @property
    def failure_jump_epsilon(self) -> float:
        """Seconds added when jumping past a predicted failure."""
        return self._jump_epsilon

    @property
    def evaluator(self) -> Optional[AnalyticalEvaluator]:
        """The analytical evaluator (None in probe mode)."""
        return self._eval

    # ------------------------------------------------------------------
    # Offer generation
    # ------------------------------------------------------------------
    def _price(self, nodes: Sequence[int], start: float, end: float) -> float:
        """The promised failure probability for a concrete partition."""
        if self._mode == "analytical":
            assert self._eval is not None
            return self._eval.failure_probability(nodes, start, end)
        p_f = self._predictor.failure_probability(nodes, start, end)
        if self._mode == "oracle":
            assert self._eval is not None
            analytical = self._eval.failure_probability(nodes, start, end)
            if abs(analytical - p_f) > self._oracle_tolerance:
                raise OracleDisagreement(
                    f"analytical promise {analytical!r} disagrees with probe "
                    f"promise {p_f!r} for nodes={nodes} window=[{start}, {end})"
                    f" beyond tolerance {self._oracle_tolerance}"
                )
            if self._obs:
                self._c_oracle_checks.inc()
        return p_f

    def make_offer(
        self, size: int, duration: float, start: float
    ) -> Optional[DeadlineOffer]:
        """Best offer starting exactly at ``start``, or None if infeasible.

        Picks the lowest-failure-probability partition among the free nodes
        (the paper's tie-breaking), then quotes ``p = 1 − p_f`` for it.
        """
        free = self._free_query(start, start + duration)
        if len(free) < size:
            return None
        nodes = self._topology.select_partition(
            free, size, start, start + duration, self._scorer
        )
        if nodes is None:
            return None
        partition = freeze_nodes(nodes)
        p_f = self._price(partition, start, start + duration)
        return DeadlineOffer(
            start=start,
            nodes=partition,
            deadline=start + duration,
            probability=1.0 - p_f,
            failure_probability=p_f,
        )

    def iter_offers(
        self,
        size: int,
        duration: float,
        earliest: float,
        threshold: Optional[float] = None,
        stats: Optional[Dict[str, int]] = None,
    ) -> Iterator[DeadlineOffer]:
        """Yield offers in nondecreasing deadline order.

        First the exact candidates of the booked region, then the
        jump-past-predicted-failure sequence; stops after
        ``self._max_offers`` candidates.

        Args:
            size: Nodes required.
            duration: Padded runtime to reserve.
            earliest: No offer starts before this.
            threshold: When set (analytical mode only), candidates whose
                best-achievable promise provably falls short of this user
                threshold are skipped without pricing.  Pruned candidates
                count toward the cap so the enumeration stays aligned with
                an unpruned dialogue.
            stats: Optional dict; ``stats["produced"]`` is kept updated
                with the number of candidates counted toward the cap
                (yielded + pruned), letting callers detect cap exhaustion
                even when pruning swallows the final candidates.
        """
        produced = 0
        last_start = earliest
        obs = self._obs
        probes = self._c_probes
        evaluator = self._eval
        if evaluator is not None:
            evaluator.begin_dialogue()
        prune = threshold is not None and self._mode == "analytical"
        if prune:
            assert evaluator is not None
        # Capacity prefilter: reject candidates that cannot possibly have
        # enough simultaneously free nodes without per-node scans.  The
        # ledger is not mutated during one dialogue, so its cached profile
        # serves the whole enumeration.
        profile = self._ledger.profile()
        total = self._ledger.node_count
        iter_candidates = getattr(self._ledger, "iter_candidate_times", None)
        candidates = (
            iter_candidates(earliest)
            if iter_candidates is not None
            else iter(self._ledger.candidate_times(earliest))
        )
        for start in candidates:
            last_start = start
            if not profile.window_fits(start, start + duration, size, total):
                if obs:
                    self._c_prefilter.inc()
                continue
            if prune:
                bound = evaluator.best_case_probability(
                    size, start, start + duration
                )
                if bound < threshold - _ACCEPT_EPSILON:
                    produced += 1
                    if stats is not None:
                        stats["produced"] = produced
                    if obs:
                        self._c_pruned.inc()
                    if produced >= self._max_offers:
                        return
                    continue
            if obs:
                probes.inc()
            offer = self.make_offer(size, duration, start)
            if offer is None:
                continue
            produced += 1
            if stats is not None:
                stats["produced"] = produced
            yield offer
            if produced >= self._max_offers:
                return
        # Past the booking horizon: jump beyond predicted failures.
        start = last_start
        while produced < self._max_offers:
            if prune:
                bound = evaluator.best_case_probability(
                    size, start, start + duration
                )
                if bound < threshold - _ACCEPT_EPSILON:
                    # Advance exactly as the unpruned loop would: find the
                    # partition this candidate would have offered and jump
                    # past its earliest predicted failure.
                    free = self._free_query(start, start + duration)
                    if len(free) < size:
                        return
                    nodes = self._topology.select_partition(
                        free, size, start, start + duration, self._scorer
                    )
                    if nodes is None:
                        return
                    predicted = evaluator.first_predicted_failure(
                        nodes, start, start + duration
                    )
                    if predicted is not None:
                        produced += 1
                        if stats is not None:
                            stats["produced"] = produced
                        if obs:
                            self._c_pruned.inc()
                        start = predicted.time + self._jump_epsilon
                        continue
                    # A bound below the threshold implies a detectable
                    # failure on every feasible partition, so this branch
                    # is unreachable for trace-backed evaluators; fall
                    # through to a real probe rather than trusting it.
            if obs:
                probes.inc()
            offer = self.make_offer(size, duration, start)
            if offer is None:
                return  # cluster narrower than the job; caller validates
            produced += 1
            if stats is not None:
                stats["produced"] = produced
            yield offer
            if produced >= self._max_offers:
                return
            predicted = self._jump_source.first_predicted_failure(
                offer.nodes, start, start + duration
            )
            if predicted is None:
                return  # perfect offer; nothing later can beat p = 1
            start = predicted.time + self._jump_epsilon

    # ------------------------------------------------------------------
    # The dialogue
    # ------------------------------------------------------------------
    def _run_dialogue(
        self,
        size: int,
        duration: float,
        now: float,
        user: UserModel,
        threshold: Optional[float],
    ) -> Tuple[Optional[DeadlineOffer], Optional[DeadlineOffer], int]:
        """One pass of the offer loop: ``(best, accepted, offers_made)``."""
        best: Optional[DeadlineOffer] = None
        accepted: Optional[DeadlineOffer] = None
        offers_made = 0
        for offer in self.iter_offers(size, duration, now, threshold=threshold):
            offers_made += 1
            if best is None or offer.probability > best.probability:
                best = offer
            if user.accepts(offer):
                accepted = offer
                break
        return best, accepted, offers_made

    def negotiate(
        self,
        job_id: int,
        size: int,
        duration: float,
        now: float,
        user: UserModel,
    ) -> NegotiationOutcome:
        """Run the submission dialogue and book the accepted offer.

        Args:
            job_id: Job being submitted.
            size: Nodes required (``n_j``).
            duration: Padded runtime ``E_j`` to reserve.
            now: Submission time (offers start at or after it).
            user: The user's risk strategy.

        Returns:
            The accepted (or imposed) :class:`NegotiationOutcome`; the
            reservation is already booked in the ledger.

        Raises:
            ValueError: If the job can never fit (size > cluster width).
        """
        if not self._prof:
            return self._negotiate(job_id, size, duration, now, user)
        with self._z_negotiate:
            return self._negotiate(job_id, size, duration, now, user)

    def _negotiate(
        self,
        job_id: int,
        size: int,
        duration: float,
        now: float,
        user: UserModel,
    ) -> NegotiationOutcome:
        if size > self._ledger.node_count:
            raise ValueError(
                f"job {job_id}: size {size} exceeds cluster width "
                f"{self._ledger.node_count}"
            )

        # Pruning is only sound when acceptance is *exactly* the Equation 3
        # threshold test, so it is keyed to RiskThresholdUser itself — not
        # subclasses or look-alikes (SlackBoundedUser also accepts on
        # patience, which the bound knows nothing about).
        threshold: Optional[float] = None
        if self._mode == "analytical" and type(user) is RiskThresholdUser:
            threshold = user.risk_threshold

        best, accepted, offers_made = self._run_dialogue(
            size, duration, now, user, threshold
        )
        if accepted is None and threshold is not None:
            # The pruned pass ended without acceptance (cap or exhaustion).
            # Rerun unpruned so the imposed offer — and the RuntimeError
            # below, if it comes to that — are bit-identical to probe mode.
            best, accepted, offers_made = self._run_dialogue(
                size, duration, now, user, None
            )

        forced = accepted is None
        if accepted is None:
            if best is None:
                raise RuntimeError(
                    f"job {job_id}: no feasible offer (topology cannot place "
                    f"{size} nodes)"
                )
            accepted = best  # cap hit: impose the safest offer seen

        if self._obs:
            self._c_dialogues.inc()
            self._h_offers.observe(offers_made)
            if forced:
                self._c_forced.inc()
            else:
                # Rank 1 = first offer accepted (deadline pushed "no
                # further than necessary" with no pushback at all).
                self._h_accepted_rank.observe(offers_made)

        self._ledger.reserve(job_id, accepted.nodes, accepted.start, accepted.deadline)
        guarantee = QoSGuarantee(
            job_id=job_id,
            deadline=accepted.deadline,
            probability=accepted.probability,
            predicted_failure_probability=accepted.failure_probability,
            negotiated_at=now,
            planned_start=accepted.start,
            planned_nodes=accepted.nodes,
            offers_declined=offers_made - (0 if forced else 1),
        )
        return NegotiationOutcome(
            guarantee=guarantee,
            start=accepted.start,
            nodes=accepted.nodes,
            reserved_end=accepted.deadline,
            offers_made=offers_made,
            forced=forced,
        )

    # ------------------------------------------------------------------
    # Advisory
    # ------------------------------------------------------------------
    def _advise(
        self,
        size: int,
        duration: float,
        now: float,
        target_probability: float,
        threshold: Optional[float],
    ) -> DeadlineSuggestion:
        stats: Dict[str, int] = {"produced": 0}
        for offer in self.iter_offers(
            size, duration, now, threshold=threshold, stats=stats
        ):
            if offer.probability >= target_probability - _ACCEPT_EPSILON:
                return DeadlineSuggestion(
                    offer=offer, status="found", offers_examined=stats["produced"]
                )
        status = (
            "cap_reached"
            if stats["produced"] >= self._max_offers
            else "infeasible"
        )
        return DeadlineSuggestion(
            offer=None, status=status, offers_examined=stats["produced"]
        )

    def suggest_deadline(
        self, size: int, duration: float, now: float, target_probability: float
    ) -> DeadlineSuggestion:
        """The paper's "the scheduler could even suggest a deadline": the
        earliest offer whose promise reaches ``target_probability``.

        Purely advisory — nothing is booked.  The result distinguishes a
        search truncated by the dialogue cap (``status="cap_reached"``: a
        feasible deadline may exist further out) from true infeasibility
        (``status="infeasible"``: the enumeration exhausted naturally,
        which only happens when no partition of this size can be placed —
        a failure-free offer always satisfies any target ``<= 1``).
        """
        if self._obs:
            self._c_advisories.inc()
        threshold = (
            target_probability if self._mode == "analytical" else None
        )
        suggestion = self._advise(size, duration, now, target_probability, threshold)
        if suggestion.status == "cap_reached" and threshold is not None:
            # Pruned candidates count toward the cap (including ones an
            # unpruned pass would have skipped as infeasible), so the
            # pruned pass can exhaust the cap slightly early; rerun
            # unpruned for a probe-identical verdict.
            suggestion = self._advise(
                size, duration, now, target_probability, None
            )
        return suggestion
