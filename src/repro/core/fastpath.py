"""Analytical offer evaluation — the negotiation fast path.

The probe path prices every candidate slot by re-querying the predictor
per (partition, window): one set-level ``failure_probability`` for the
promise plus one ``node_failure_probability`` per free node for the
fault-aware placement ranking.  On a figure-sized run that is >100k
predictor queries, almost all recomputing the same per-node facts
(BENCH_ledger.json showed a 448/126,300 hit rate before this module).

:class:`AnalyticalEvaluator` wraps a predictor and answers the same
queries from cached per-node per-window terms:

* **Trace predictors** (the paper's simulation device) get an exact fast
  path: a :class:`~repro.prediction.index.FailureIntervalIndex` over the
  detectable failures answers set- and node-level queries in O(log f)
  per node with *bit-identical* floats — the first-detectable-failure
  semantics, including the ``(time, event_id)`` tie-break, are
  reproduced, not approximated.
* **Survival-decomposable predictors** (e.g. the online predictor, whose
  set probability is the independent combination of per-node hazards)
  get a memoised path: per-(node, window) terms from
  :meth:`~repro.prediction.base.Predictor.node_failure_term`, combined
  with :func:`~repro.prediction.base.combine_independent` in caller
  order — the exact computation the probe path performs, with each term
  computed once per dialogue instead of once per offer.
* **Anything else** falls back to the same memoised path under the
  independence assumption the paper itself makes for multi-node
  partitions; the oracle negotiation mode checks the agreement at
  runtime (see DESIGN.md for the tolerance contract).

The term cache is *dialogue-scoped*: the ledger is never mutated while
one dialogue enumerates offers, so every term computed for one offer is
reusable for every later offer of the same dialogue.
:meth:`begin_dialogue` resets it.  The interval index is immutable and
lives for the evaluator's lifetime.

The evaluator is itself a :class:`~repro.prediction.base.Predictor`, so
it can stand in wherever one is consumed — the placement scorer, the
checkpoint-decision context, and the evacuation check all route through
it in analytical mode, which is what empties the
``prediction.trace.queries`` counter on the figures grid.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.prof import NULL_PROFILER, Profiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.prediction.base import (
    PredictedFailure,
    Predictor,
    combine_independent,
)
from repro.prediction.index import FailureIntervalIndex
from repro.prediction.trace import TracePredictor


class AnalyticalEvaluator(Predictor):
    """Cached analytical stand-in for a predictor during negotiation.

    Args:
        predictor: The predictor whose answers are being reproduced.
            Nested evaluators are unwrapped, so wrapping is idempotent.
        node_count: Cluster width ``N`` (needed by the pruning bound to
            count clean nodes without enumerating them).
        registry: Optional obs registry; when live, evaluations and term
            cache traffic are counted under ``negotiation.fastpath.*``.
        profiler: Optional hierarchical profiler; when live, offer
            evaluations run inside the ``negotiation.fastpath.evaluate``
            zone and the backing interval index gets its
            ``prediction.index.query`` zone bound too.
    """

    _obs_component = "fastpath"

    def __init__(
        self,
        predictor: Predictor,
        node_count: int,
        registry: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        while isinstance(predictor, AnalyticalEvaluator):
            predictor = predictor.backing
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        self._predictor = predictor
        self._n = node_count
        self._index: Optional[FailureIntervalIndex] = (
            predictor.interval_index()
            if isinstance(predictor, TracePredictor)
            else None
        )
        self._terms: Dict[Tuple[int, float, float], float] = {}
        registry = registry if registry is not None else NULL_REGISTRY
        self._obs = registry.enabled
        self._c_evaluations = registry.counter("negotiation.fastpath.evaluations")
        self._c_term_hits = registry.counter(
            "negotiation.fastpath.term_cache_hits"
        )
        self._c_term_misses = registry.counter(
            "negotiation.fastpath.term_cache_misses"
        )
        profiler = profiler if profiler is not None else NULL_PROFILER
        self._prof = profiler.enabled
        self._z_evaluate = profiler.zone("negotiation.fastpath.evaluate")
        if self._prof and self._index is not None:
            self._index.bind_profiler(profiler)

    @property
    def backing(self) -> Predictor:
        """The wrapped predictor (the probe path's source of truth)."""
        return self._predictor

    @property
    def exact(self) -> bool:
        """True when the fast path is bit-identical to the probe path by
        construction (trace-backed index); False for the memoised
        independence reconstruction."""
        return self._index is not None

    def begin_dialogue(self) -> None:
        """Reset the dialogue-scoped term cache.

        Called by the negotiator before each offer enumeration; the cache
        is only guaranteed coherent while the ledger (and therefore the
        candidate windows) is not mutated, which holds within one
        dialogue.
        """
        self._terms.clear()

    # ------------------------------------------------------------------
    # Cached terms
    # ------------------------------------------------------------------
    def _term(self, node: int, start: float, end: float) -> float:
        key = (node, start, end)
        cached = self._terms.get(key)
        if cached is not None:
            if self._obs:
                self._c_term_hits.inc()
            return cached
        if self._index is not None:
            value = self._index.node_term(node, start, end)
        else:
            value = self._predictor.node_failure_term(node, start, end)
        self._terms[key] = value
        if self._obs:
            self._c_term_misses.inc()
        return value

    # ------------------------------------------------------------------
    # Predictor interface (analytical answers)
    # ------------------------------------------------------------------
    def failure_probability(
        self, nodes: Iterable[int], start: float, end: float
    ) -> float:
        if not self._prof:
            return self._failure_probability(nodes, start, end)
        with self._z_evaluate:
            return self._failure_probability(nodes, start, end)

    def _failure_probability(
        self, nodes: Iterable[int], start: float, end: float
    ) -> float:
        if end <= start:
            return 0.0
        if self._obs:
            self._c_evaluations.inc()
        if self._index is not None:
            return self._index.failure_probability(nodes, start, end)
        # Caller (partition) order is preserved so the float product
        # matches the probe path's combine_independent exactly.
        return combine_independent([self._term(n, start, end) for n in nodes])

    def node_failure_probability(self, node: int, start: float, end: float) -> float:
        if end <= start:
            return 0.0
        return self._term(node, start, end)

    def predicted_failures(
        self, nodes: Iterable[int], start: float, end: float
    ) -> List[PredictedFailure]:
        if self._index is not None:
            return self._index.predicted_failures(nodes, start, end)
        return self._predictor.predicted_failures(nodes, start, end)

    def first_predicted_failure(
        self, nodes: Iterable[int], start: float, end: float
    ) -> Optional[PredictedFailure]:
        if end <= start:
            return None
        if self._index is not None:
            return self._index.first_predicted(nodes, start, end)
        return self._predictor.first_predicted_failure(nodes, start, end)

    # ------------------------------------------------------------------
    # Pruning bound
    # ------------------------------------------------------------------
    def best_case_probability(self, size: int, start: float, end: float) -> float:
        """Sound upper bound on any ``size``-node partition's promise in
        ``[start, end)`` (see :meth:`FailureIntervalIndex
        .best_case_probability` for the derivation).

        Only the exact trace-backed path can bound partitions it has not
        seen; other predictors return 1.0, which disables pruning without
        affecting correctness.
        """
        if self._index is None:
            return 1.0
        return self._index.best_case_probability(size, start, end, self._n)
