"""Metrics: QoS (Equation 2), capacity utilization, and lost work.

The paper's three headline metrics (Section 3.5), all in node-second units
of work, computed over the checkpoint-free runtimes ``e_j`` ("we treat
checkpointing overhead as being unnecessary work"):

* **utilization**  ``ω_util = Σ_j e_j n_j / (T · N)`` with
  ``T = max_j f_j − min_j v_j`` the simulation span and ``N`` cluster width;
* **lost work**    ``ω_lost = Σ_x (t_x − c_{j_x}) · n_{j_x}`` summed over
  failures ``x`` that kill a job, with ``c`` the start of the victim's last
  completed checkpoint (or its last start);
* **QoS**          ``Σ_j e_j n_j q_j p_j / Σ_j e_j n_j`` (Equation 2) — the
  work-weighted fraction of *kept* promises, each discounted by the
  promised probability ``p_j``; ``q_j`` is 1 iff the job met its deadline.

The collector also gathers conventional scheduling metrics (waits, bounded
slowdown, checkpoint counts) used by the extended analyses and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.guarantee import QoSGuarantee
from repro.workload.job import Job

#: Threshold below which runtimes are clamped in bounded slowdown.
BOUNDED_SLOWDOWN_FLOOR = 600.0


@dataclass
class JobOutcome:
    """Everything recorded about one job across its whole lifetime.

    Attributes:
        job: The static trace record.
        guarantee: The promise made at submission.
        first_start: First time the job began executing.
        last_start: Latest (re)start — the paper computes waits from it.
        finish: Completion time, or None if the simulation ended first.
        failures: Node failures that killed this job.
        lost_node_seconds: Work destroyed across those failures.
        checkpoints_performed: Performed checkpoint count over all runs.
        checkpoints_skipped: Skipped checkpoint requests over all runs.
        checkpoint_overhead: Wall seconds spent writing checkpoints.
        evacuations: Proactive evacuations of this job (extension).
    """

    job: Job
    guarantee: Optional[QoSGuarantee] = None
    first_start: Optional[float] = None
    last_start: Optional[float] = None
    finish: Optional[float] = None
    failures: int = 0
    lost_node_seconds: float = 0.0
    checkpoints_performed: int = 0
    checkpoints_skipped: int = 0
    checkpoint_overhead: float = 0.0
    evacuations: int = 0

    @property
    def met_deadline(self) -> bool:
        """``q_j``: finished at or before the promised deadline."""
        if self.guarantee is None or self.finish is None:
            return False
        return self.guarantee.kept(self.finish)

    @property
    def wait(self) -> Optional[float]:
        """Wait from arrival to *last* start (paper's convention)."""
        if self.last_start is None:
            return None
        return self.last_start - self.job.arrival_time

    @property
    def bounded_slowdown(self) -> Optional[float]:
        """Classical bounded slowdown with a 600 s runtime floor."""
        if self.finish is None:
            return None
        response = self.finish - self.job.arrival_time
        denom = max(self.job.runtime, BOUNDED_SLOWDOWN_FLOOR)
        return max(1.0, response / denom)


@dataclass(frozen=True)
class SimulationMetrics:
    """Aggregate results of one simulation run.

    Attributes mirror Section 3.5 plus operational extras; all "work" is
    node-seconds over checkpoint-free runtimes.
    """

    qos: float
    utilization: float
    lost_work: float
    span: float
    total_work: float
    job_count: int
    completed_jobs: int
    deadlines_met: int
    failures_hitting_jobs: int
    checkpoints_performed: int
    checkpoints_skipped: int
    checkpoint_overhead: float
    mean_wait: float
    mean_bounded_slowdown: float
    mean_promised_probability: float
    forced_negotiations: int
    evacuations: int

    @property
    def deadline_met_fraction(self) -> float:
        """Unweighted fraction of jobs finishing by their deadline."""
        if self.job_count == 0:
            return 1.0
        return self.deadlines_met / self.job_count


class MetricsCollector:
    """Accumulates per-job outcomes and failure losses during a run."""

    def __init__(self) -> None:
        self._outcomes: Dict[int, JobOutcome] = {}
        self._lost_work_total = 0.0
        self._failure_hits = 0
        self._forced_negotiations = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def register_job(self, job: Job) -> JobOutcome:
        """Create the outcome record at arrival time."""
        if job.job_id in self._outcomes:
            raise ValueError(f"job {job.job_id} already registered")
        outcome = JobOutcome(job=job)
        self._outcomes[job.job_id] = outcome
        return outcome

    def outcome(self, job_id: int) -> JobOutcome:
        return self._outcomes[job_id]

    def record_guarantee(
        self, job_id: int, guarantee: QoSGuarantee, forced: bool = False
    ) -> None:
        self._outcomes[job_id].guarantee = guarantee
        if forced:
            self._forced_negotiations += 1

    def record_start(self, job_id: int, time: float) -> None:
        outcome = self._outcomes[job_id]
        if outcome.first_start is None:
            outcome.first_start = time
        outcome.last_start = time

    def record_finish(self, job_id: int, time: float) -> None:
        self._outcomes[job_id].finish = time

    def record_failure_hit(self, job_id: int, lost_node_seconds: float) -> None:
        outcome = self._outcomes[job_id]
        outcome.failures += 1
        outcome.lost_node_seconds += lost_node_seconds
        self._lost_work_total += lost_node_seconds
        self._failure_hits += 1

    def record_evacuation(self, job_id: int) -> None:
        """Count a proactive evacuation (no work is lost by definition)."""
        self._outcomes[job_id].evacuations += 1

    def record_checkpoint(
        self, job_id: int, performed: bool, overhead: float = 0.0
    ) -> None:
        outcome = self._outcomes[job_id]
        if performed:
            outcome.checkpoints_performed += 1
            outcome.checkpoint_overhead += overhead
        else:
            outcome.checkpoints_skipped += 1

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def outcomes(self) -> List[JobOutcome]:
        """All outcomes, by job id."""
        return [self._outcomes[k] for k in sorted(self._outcomes)]

    def finalize(self, node_count: int) -> SimulationMetrics:
        """Compute the aggregate metrics over everything recorded."""
        outcomes = self.outcomes()
        if not outcomes:
            return SimulationMetrics(
                qos=1.0,
                utilization=0.0,
                lost_work=0.0,
                span=0.0,
                total_work=0.0,
                job_count=0,
                completed_jobs=0,
                deadlines_met=0,
                failures_hitting_jobs=0,
                checkpoints_performed=0,
                checkpoints_skipped=0,
                checkpoint_overhead=0.0,
                mean_wait=0.0,
                mean_bounded_slowdown=0.0,
                mean_promised_probability=0.0,
                forced_negotiations=0,
                evacuations=0,
            )

        total_work = sum(o.job.work for o in outcomes)
        qos_numerator = sum(
            o.job.work * o.guarantee.probability
            for o in outcomes
            if o.guarantee is not None and o.met_deadline
        )
        qos = qos_numerator / total_work if total_work > 0 else 1.0

        finishes = [o.finish for o in outcomes if o.finish is not None]
        arrivals = [o.job.arrival_time for o in outcomes]
        span = (max(finishes) - min(arrivals)) if finishes else 0.0
        utilization = (
            total_work / (span * node_count) if span > 0 and node_count > 0 else 0.0
        )

        waits = [o.wait for o in outcomes if o.wait is not None]
        slowdowns = [
            o.bounded_slowdown for o in outcomes if o.bounded_slowdown is not None
        ]
        promised = [
            o.guarantee.probability for o in outcomes if o.guarantee is not None
        ]

        return SimulationMetrics(
            qos=qos,
            utilization=utilization,
            lost_work=self._lost_work_total,
            span=span,
            total_work=total_work,
            job_count=len(outcomes),
            completed_jobs=len(finishes),
            deadlines_met=sum(1 for o in outcomes if o.met_deadline),
            failures_hitting_jobs=self._failure_hits,
            checkpoints_performed=sum(o.checkpoints_performed for o in outcomes),
            checkpoints_skipped=sum(o.checkpoints_skipped for o in outcomes),
            checkpoint_overhead=sum(o.checkpoint_overhead for o in outcomes),
            mean_wait=sum(waits) / len(waits) if waits else 0.0,
            mean_bounded_slowdown=(
                sum(slowdowns) / len(slowdowns) if slowdowns else 0.0
            ),
            mean_promised_probability=(
                sum(promised) / len(promised) if promised else 0.0
            ),
            forced_negotiations=self._forced_negotiations,
            evacuations=sum(o.evacuations for o in outcomes),
        )
