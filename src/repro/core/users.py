"""User risk-strategy models (the paper's parameter ``U``).

The job logs carry no deadlines, so the paper models user behaviour: "for a
given job j, with promised probability of success p_j, a simulated user
will accept the earliest deadline such that p_j >= U" (Equation 3).  ``U``
is the risk threshold — ``U = 0.1`` barely cares about success and takes
the earliest slot; ``U = 0.9`` extends the deadline until the system can
promise 90%.

Because the trace predictor never reports ``p_f > a``, every offer carries
``p_j >= 1 - a``; for ``U <= 1 - a`` the threshold can never bind and the
simulation is insensitive to ``U``.  (The paper words this insensitivity
region as ``a < U``, which is inconsistent with its own Equation 3; we
implement Equation 3 and document the discrepancy — see DESIGN.md note 1.)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.guarantee import DeadlineOffer


class UserModel(abc.ABC):
    """Decides, offer by offer, when a simulated user says yes."""

    @abc.abstractmethod
    def accepts(self, offer: DeadlineOffer) -> bool:
        """True if the user takes this (earliest remaining) offer."""


@dataclass(frozen=True)
class RiskThresholdUser(UserModel):
    """Equation 3: accept the earliest offer with ``p_j >= U``.

    Attributes:
        risk_threshold: ``U`` in [0, 1].
    """

    risk_threshold: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.risk_threshold <= 1.0:
            raise ValueError(
                f"risk threshold must be in [0,1], got {self.risk_threshold}"
            )

    def accepts(self, offer: DeadlineOffer) -> bool:
        return offer.probability >= self.risk_threshold - 1e-12

    @property
    def binding_failure_probability(self) -> float:
        """Largest ``p_f`` this user tolerates: ``1 - U``."""
        return 1.0 - self.risk_threshold


@dataclass(frozen=True)
class EarliestDeadlineUser(UserModel):
    """Always take the first offer (equivalent to ``U = 0``).

    The pure latency-chaser: the user the paper describes as operating
    "purely based on the deadline", for whom prediction value is largely
    negated.
    """

    def accepts(self, offer: DeadlineOffer) -> bool:
        return True


@dataclass(frozen=True)
class SlackBoundedUser(UserModel):
    """A thresholder who additionally refuses unbounded postponement.

    Extension beyond the paper: accepts when ``p_j >= U`` *or* when the
    offer's start has slipped more than ``max_slack`` past the first offer
    it saw — modelling users whose patience, not risk appetite, binds.

    Attributes:
        risk_threshold: ``U`` as in :class:`RiskThresholdUser`.
        max_slack: Latest acceptable start slip, seconds.
        first_offer_start: Start of the first offer (set via
            :meth:`anchored_at`; negotiation anchors it automatically).
    """

    risk_threshold: float
    max_slack: float
    first_offer_start: float = float("nan")

    def anchored_at(self, start: float) -> "SlackBoundedUser":
        """A copy anchored to the first offered start time."""
        return SlackBoundedUser(self.risk_threshold, self.max_slack, start)

    def accepts(self, offer: DeadlineOffer) -> bool:
        if offer.probability >= self.risk_threshold - 1e-12:
            return True
        if self.first_offer_start != self.first_offer_start:  # NaN: no anchor
            return False
        return offer.start - self.first_offer_start >= self.max_slack
