"""The end-to-end simulated supercomputing system.

:class:`ProbabilisticQoSSystem` wires every component of the paper's design
into the event loop and replays a job log against a failure trace:

* arrivals trigger the **negotiation** dialogue (Section 3.5) and book a
  conservative-backfill reservation (Section 3.3);
* starts occupy real nodes, tolerating 120 s repair delays;
* running jobs issue **cooperative checkpointing** requests every ``I``
  seconds of execution, decided by the configured policy (Section 3.4);
* node **failures** kill the occupying job, charge the lost-work metric,
  and requeue the victim from its last completed checkpoint; **recoveries**
  bring nodes back after the fixed downtime;
* every promise is scored by the **QoS metric** at the end (Section 3.5).

The simulation is fully deterministic given (workload, failure trace,
seed, configuration).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tracelog import NullRecorder, TraceRecorder
from repro.checkpointing.policies import (
    CheckpointDecision,
    CheckpointDecisionContext,
    CheckpointPolicy,
    policy_by_name,
)
from repro.checkpointing.runtime import JobRun, padded_remaining
from repro.cluster.machine import Cluster
from repro.cluster.topology import Topology, topology_by_name
from repro.core.fastpath import AnalyticalEvaluator
from repro.core.guarantee import QoSGuarantee
from repro.core.metrics import MetricsCollector, SimulationMetrics
from repro.core.negotiation import NEGOTIATION_MODES
from repro.core.users import RiskThresholdUser, UserModel
from repro.failures.events import FailureTrace
from repro.obs.audit import NULL_AUDIT, AuditReport, GuaranteeAudit
from repro.obs.prof import NULL_PROFILER, Profiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.sampler import Sampler
from repro.obs.trace import SpanBuilder, SpanTimeline
from repro.prediction.base import Predictor
from repro.prediction.trace import TracePredictor
from repro.scheduling.fcfs import ConservativeBackfillScheduler
from repro.scheduling.placement import scorer_by_name
from repro.scheduling.queue import PendingStarts
from repro.sim.calendar_queue import EVENT_QUEUE_KINDS
from repro.sim.engine import EventLoop
from repro.sim.events import Event, EventKind
from repro.workload.job import Job, JobLog


@dataclass(frozen=True)
class SystemConfig:
    """Configuration of the simulated system (paper Table 2 defaults).

    Attributes:
        node_count: Cluster width ``N`` (paper: 128).
        downtime: Node repair time, seconds (paper: 120).
        checkpoint_overhead: ``C`` in seconds (paper: 720).
        checkpoint_interval: ``I`` in seconds (paper: 3600).
        recovery_time: ``R`` in seconds, charged when a restart restores
            from a checkpoint (paper: 0, arguing supercomputer downtime is
            aggressively minimised).
        accuracy: Predictor accuracy ``a`` in [0, 1].
        user_threshold: Risk threshold ``U`` in [0, 1] (Equation 3).
        seed: Seed for detectability assignment and any randomised policy.
        checkpoint_policy: ``"cooperative"`` (paper), ``"periodic"``,
            ``"never"`` or ``"risk-free"``.
        placement: ``"fault-aware"`` (paper), ``"first-fit"`` or
            ``"random"``.
        topology: ``"flat"`` (paper) or ``"ring"``.
        opportunistic_start: Enable the pull-forward extension (off matches
            the paper's frozen schedule).
        proactive_evacuation: Extension beyond the paper: immediately after
            a checkpoint completes, if a failure is predicted on the job's
            partition before the *next* checkpoint could complete, stop the
            job voluntarily (zero work is at risk at that instant) and
            requeue it on a safer slot instead of riding out the failure.
        evacuation_threshold: Minimum predicted failure probability that
            triggers an evacuation.
        max_offers: Negotiation dialogue cap.
        negotiation_mode: Offer-pricing mode — ``"analytical"`` (default;
            cached fast path with candidate pruning), ``"probe"`` (the
            original per-candidate predictor queries), or ``"oracle"``
            (probe values, analytically cross-checked).  All three produce
            identical accepted offers; see DESIGN.md "Analytical
            negotiation fast path".
        failure_jump_epsilon: Seconds the negotiation dialogue advances a
            candidate start past a predicted failure.
        event_loop: Pending-event store backend, one of
            :data:`~repro.sim.calendar_queue.EVENT_QUEUE_KINDS` —
            ``"heap"`` (default, the seed binary heap) or ``"calendar"``
            (O(1) amortised bucketed queue for big-cluster replays).  The
            dispatched event sequence — and therefore the whole trajectory
            — is bit-identical across backends.
    """

    node_count: int = 128
    downtime: float = 120.0
    checkpoint_overhead: float = 720.0
    checkpoint_interval: float = 3600.0
    recovery_time: float = 0.0
    accuracy: float = 0.5
    user_threshold: float = 0.5
    seed: Optional[int] = None
    checkpoint_policy: str = "cooperative"
    placement: str = "fault-aware"
    topology: str = "flat"
    opportunistic_start: bool = False
    proactive_evacuation: bool = False
    evacuation_threshold: float = 0.0
    max_offers: int = 400
    negotiation_mode: str = "analytical"
    failure_jump_epsilon: float = 1.0
    event_loop: str = "heap"

    def __post_init__(self) -> None:
        if self.negotiation_mode not in NEGOTIATION_MODES:
            raise ValueError(
                f"negotiation_mode must be one of {NEGOTIATION_MODES}, "
                f"got {self.negotiation_mode!r}"
            )
        if self.event_loop not in EVENT_QUEUE_KINDS:
            raise ValueError(
                f"event_loop must be one of {EVENT_QUEUE_KINDS}, "
                f"got {self.event_loop!r}"
            )
        if self.failure_jump_epsilon <= 0:
            raise ValueError(
                "failure_jump_epsilon must be > 0, got "
                f"{self.failure_jump_epsilon}"
            )
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0,1], got {self.accuracy}")
        if not 0.0 <= self.user_threshold <= 1.0:
            raise ValueError(
                f"user_threshold must be in [0,1], got {self.user_threshold}"
            )
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be > 0")
        if self.checkpoint_overhead < 0:
            raise ValueError("checkpoint_overhead must be >= 0")
        if self.recovery_time < 0:
            raise ValueError("recovery_time must be >= 0")


@dataclass
class _JobState:
    """Mutable per-job simulation state."""

    job: Job
    guarantee: Optional[QoSGuarantee] = None
    reserved_start: float = 0.0
    reserved_end: float = 0.0
    reserved_nodes: Tuple[int, ...] = ()
    saved_progress: float = 0.0
    run: Optional[JobRun] = None
    done: bool = False
    #: The decision behind an in-flight checkpoint, so the performed record
    #: can carry the policy's rationale alongside the timing.
    pending_decision: Optional[CheckpointDecision] = None
    #: Cancellable handles for this job's in-flight events.
    start_event: Optional[Event] = None
    run_event: Optional[Event] = None

    @property
    def running(self) -> bool:
        return self.run is not None


@dataclass(frozen=True)
class SimulationResult:
    """Output of one run: aggregates plus per-job detail.

    Attributes:
        obs: Final observability snapshot (``registry.snapshot()``) when the
            system ran with a live registry; None otherwise.
        spans: Assembled :class:`~repro.obs.trace.SpanTimeline` when the
            system ran with a live :class:`~repro.obs.trace.SpanBuilder`;
            None otherwise.
        audit: Promise-vs-outcome :class:`~repro.obs.audit.AuditReport`
            when the system ran with a live
            :class:`~repro.obs.audit.GuaranteeAudit`; None otherwise.
        prof: Final profile snapshot (``profiler.snapshot()``) when the
            system ran with a live :class:`~repro.obs.prof.Profiler`; None
            otherwise.
    """

    metrics: SimulationMetrics
    config: SystemConfig
    outcomes: list
    events_processed: int
    obs: Optional[dict] = None
    spans: Optional[SpanTimeline] = None
    audit: Optional[AuditReport] = None
    prof: Optional[dict] = None


class ProbabilisticQoSSystem:
    """Simulates the paper's system on a workload + failure trace.

    Args:
        config: System parameters.
        workload: The job log to replay.
        failures: The failure trace to replay (must extend past the
            expected makespan; late-truncated traces simply mean a
            failure-free tail).
        predictor: Optional override; defaults to the paper's
            :class:`TracePredictor` at ``config.accuracy`` over
            ``failures``.
        user: Optional override of the user model; defaults to
            :class:`RiskThresholdUser` at ``config.user_threshold``.
        recorder: Optional trace recorder capturing every semantic
            transition (see :mod:`repro.analysis.tracelog`); defaults to a
            zero-cost null recorder.  Pass a
            :class:`~repro.obs.trace.SpanBuilder` to get the assembled
            span timeline on :attr:`SimulationResult.spans` as well.
        spans: Convenience alias: a :class:`~repro.obs.trace.SpanBuilder`
            to use as the recorder (mutually exclusive with ``recorder``).
        registry: Optional :class:`~repro.obs.registry.MetricsRegistry`;
            defaults to the shared null registry, which costs one boolean
            test per instrumented decision point.  A live registry threads
            through every layer (engine, ledger, scheduler, negotiator,
            runs, predictor) and the final snapshot rides on
            :attr:`SimulationResult.obs`.
        sample_interval: Sim-seconds between registry snapshots; when set
            (with a live registry) a :class:`~repro.obs.sampler.Sampler`
            records a time-series via recurring ``OBS_SAMPLE`` events,
            reachable afterwards as ``system.sampler``.
        audit: Optional :class:`~repro.obs.audit.GuaranteeAudit` fed every
            promise at negotiation time and every outcome at finish time;
            defaults to the shared zero-cost :data:`~repro.obs.audit.NULL_AUDIT`
            (one boolean test per promise/outcome).  A live audit's report
            rides on :attr:`SimulationResult.audit`.
        profiler: Optional :class:`~repro.obs.prof.Profiler`; defaults to
            the shared zero-cost :data:`~repro.obs.prof.NULL_PROFILER`.  A
            live profiler threads through the hot paths (event dispatch,
            ledger, negotiation, prediction, checkpoint decisions) and its
            snapshot rides on :attr:`SimulationResult.prof`.
    """

    def __init__(
        self,
        config: SystemConfig,
        workload: JobLog,
        failures: FailureTrace,
        predictor: Optional[Predictor] = None,
        user: Optional[UserModel] = None,
        recorder: Optional[TraceRecorder] = None,
        registry: Optional[MetricsRegistry] = None,
        sample_interval: Optional[float] = None,
        spans: Optional[SpanBuilder] = None,
        audit: Optional[GuaranteeAudit] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        if spans is not None:
            if recorder is not None:
                raise ValueError("pass either recorder= or spans=, not both")
            recorder = spans
        self.config = config
        self.workload = workload
        self.failures = failures
        self.registry: MetricsRegistry = (
            registry if registry is not None else NULL_REGISTRY
        )
        self._obs = self.registry.enabled
        self.audit: GuaranteeAudit = audit if audit is not None else NULL_AUDIT
        self._audit_on = self.audit.enabled
        self.profiler: Profiler = (
            profiler if profiler is not None else NULL_PROFILER
        )
        self._prof = self.profiler.enabled
        self.predictor: Predictor = (
            predictor
            if predictor is not None
            else TracePredictor(failures, config.accuracy, seed=config.seed)
        )
        if self._obs:
            self.predictor.bind_registry(self.registry)
        if self._prof:
            self.predictor.bind_profiler(self.profiler)
        self.user: UserModel = (
            user if user is not None else RiskThresholdUser(config.user_threshold)
        )

        self.cluster = Cluster(
            config.node_count, downtime=config.downtime, registry=self.registry,
            profiler=self.profiler,
        )
        self.topology: Topology = topology_by_name(config.topology, config.node_count)
        # In analytical/oracle mode one shared evaluator answers every
        # prediction-shaped query the simulation makes — offer pricing,
        # placement scoring, checkpoint decisions, evacuation checks — so
        # the live predictor is only consulted where the evaluator cannot
        # stand in (its values are identical; see repro.core.fastpath).
        self.evaluator: Optional[AnalyticalEvaluator] = None
        if config.negotiation_mode != "probe":
            self.evaluator = AnalyticalEvaluator(
                self.predictor, config.node_count, registry=self.registry,
                profiler=self.profiler,
            )
        query_predictor: Predictor = (
            self.evaluator
            if self.evaluator is not None and config.negotiation_mode == "analytical"
            else self.predictor
        )
        self._query_predictor = query_predictor
        scorer = scorer_by_name(config.placement, query_predictor, config.seed)
        self.scheduler = ConservativeBackfillScheduler(
            self.cluster.ledger,
            self.topology,
            self.predictor,
            scorer,
            max_offers=config.max_offers,
            registry=self.registry,
            negotiation_mode=config.negotiation_mode,
            failure_jump_epsilon=config.failure_jump_epsilon,
            evaluator=self.evaluator,
            profiler=self.profiler,
        )
        self.policy: CheckpointPolicy = policy_by_name(config.checkpoint_policy)
        self.metrics = MetricsCollector()
        self.recorder: TraceRecorder = recorder if recorder is not None else NullRecorder()
        self._span_builder: Optional[SpanBuilder] = (
            recorder if isinstance(recorder, SpanBuilder) else None
        )

        self.loop = EventLoop(
            registry=self.registry, queue=config.event_loop,
            profiler=self.profiler,
        )
        if self._span_builder is not None:
            # Exported timelines carry the event-mix breakdown in their
            # metadata; counting costs one bool test per event otherwise.
            self.loop.enable_dispatch_counts()
        self.sampler: Optional[Sampler] = None
        if sample_interval is not None and self._obs:
            self.sampler = Sampler(self.registry, sample_interval)
        self._g_unfinished = self.registry.gauge("core.system.unfinished_jobs")
        self._g_pending = self.registry.gauge("core.system.pending_starts")
        self._g_running = self.registry.gauge("core.system.running_jobs")
        self._c_completed = self.registry.counter("core.system.jobs_completed")
        self._c_evacuations = self.registry.counter("core.system.evacuations")
        self._z_decide = self.profiler.zone("checkpointing.policy.decide")
        self._states: Dict[int, _JobState] = {}
        self._pending = PendingStarts()
        self._unfinished = 0
        self._failure_cursor = 0
        self._wakeup_scheduled = False
        self._register_handlers()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        register = self.loop.register
        register(EventKind.ARRIVAL, self._on_arrival)
        register(EventKind.START, self._on_start)
        register(EventKind.FINISH, self._on_finish)
        register(EventKind.FAILURE, self._on_failure)
        register(EventKind.RECOVERY, self._on_recovery)
        register(EventKind.CHECKPOINT_REQUEST, self._on_checkpoint_request)
        register(EventKind.CHECKPOINT_START, self._on_checkpoint_start)
        register(EventKind.CHECKPOINT_FINISH, self._on_checkpoint_finish)
        register(EventKind.WAKEUP, self._on_wakeup)
        register(EventKind.OBS_SAMPLE, self._on_obs_sample)

    def _prime(self) -> None:
        for job in self.workload:
            if job.size > self.config.node_count:
                raise ValueError(
                    f"job {job.job_id} needs {job.size} nodes on a "
                    f"{self.config.node_count}-node cluster; clip the log first"
                )
            self.loop.schedule(job.arrival_time, EventKind.ARRIVAL, job_id=job.job_id)
            self._states[job.job_id] = _JobState(job=job)
            self.metrics.register_job(job)
        self._unfinished = len(self.workload)
        self._schedule_next_failure()

    def _schedule_next_failure(self) -> None:
        """Lazily replay the failure trace while work remains."""
        while self._failure_cursor < len(self.failures):
            event = self.failures[self._failure_cursor]
            self._failure_cursor += 1
            if event.node >= self.config.node_count:
                continue
            if event.time < self.loop.now:
                continue  # trace began before the simulation origin
            self.loop.schedule(
                event.time, EventKind.FAILURE, node=event.node, event_id=event.event_id
            )
            return

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Replay the workload to completion and return the metrics."""
        self._prime()
        if self.sampler is not None:
            # First row at the origin, then one per interval; the chain
            # stops rescheduling itself once all jobs finished, so the
            # loop still drains.
            self._refresh_gauges()
            self.sampler.sample(self.loop.now)
            self.loop.schedule_in(self.sampler.interval, EventKind.OBS_SAMPLE)
        self.loop.run(max_events=max_events)
        if self._obs:
            self._refresh_gauges()
            if self.sampler is not None:
                self.sampler.sample(self.loop.now)
        spans: Optional[SpanTimeline] = None
        if self._span_builder is not None:
            spans = self._span_builder.build(
                end_time=self.loop.now,
                meta={
                    "workload_jobs": len(self.workload),
                    "events_processed": self.loop.processed_events,
                    "dispatch_counts": self.loop.dispatch_counts(),
                    "config": asdict(self.config),
                },
            )
        audit: Optional[AuditReport] = None
        if self._audit_on:
            audit = self.audit.report(
                meta={
                    "source": "live",
                    "workload_jobs": len(self.workload),
                    "events_processed": self.loop.processed_events,
                }
            )
        return SimulationResult(
            metrics=self.metrics.finalize(self.config.node_count),
            config=self.config,
            outcomes=self.metrics.outcomes(),
            events_processed=self.loop.processed_events,
            obs=self.registry.snapshot() if self._obs else None,
            spans=spans,
            audit=audit,
            prof=(
                self.profiler.snapshot(
                    meta={
                        "workload_jobs": len(self.workload),
                        "events_processed": self.loop.processed_events,
                    }
                )
                if self._prof
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Arrival and negotiation
    # ------------------------------------------------------------------
    def _on_arrival(self, event: Event) -> None:
        state = self._states[event.payload["job_id"]]
        job = state.job
        padded = job.padded_runtime(
            self.config.checkpoint_interval, self.config.checkpoint_overhead
        )
        outcome = self.scheduler.schedule_arrival(
            job.job_id, job.size, padded, self.loop.now, self.user
        )
        state.guarantee = outcome.guarantee
        state.reserved_start = outcome.start
        state.reserved_end = outcome.reserved_end
        state.reserved_nodes = outcome.nodes
        self.metrics.record_guarantee(job.job_id, outcome.guarantee, outcome.forced)
        self.recorder.record(
            self.loop.now,
            "negotiated",
            job_id=job.job_id,
            deadline=outcome.guarantee.deadline,
            probability=outcome.guarantee.probability,
            predicted_pf=outcome.guarantee.predicted_failure_probability,
            user_threshold=self.config.user_threshold,
            planned_start=outcome.start,
            planned_nodes=list(outcome.nodes),
            size=job.size,
            user_id=job.user_id,
            offers_made=outcome.offers_made,
            offers_declined=outcome.guarantee.offers_declined,
            forced=outcome.forced,
        )
        if self._audit_on:
            self.audit.observe_promise(
                job_id=job.job_id,
                probability=outcome.guarantee.probability,
                deadline=outcome.guarantee.deadline,
                size=job.size,
                user_id=job.user_id,
                nodes=outcome.nodes,
            )
        state.start_event = self.loop.schedule(
            outcome.start, EventKind.START, job_id=job.job_id
        )

    # ------------------------------------------------------------------
    # Starting
    # ------------------------------------------------------------------
    def _on_start(self, event: Event) -> None:
        job_id = event.payload["job_id"]
        state = self._states[job_id]
        state.start_event = None
        self._try_start(job_id, state)

    def _try_start(self, job_id: int, state: _JobState) -> None:
        """Start now if the reserved nodes are up and idle, else block."""
        if state.done or state.running:
            return
        now = self.loop.now
        if not self.cluster.nodes_available(state.reserved_nodes):
            self._pending.add(job_id)
            # If a node is mid-repair, make sure a retry fires at recovery.
            recovery = self.cluster.latest_recovery(state.reserved_nodes)
            if recovery > now:
                self._schedule_wakeup(recovery)
            return

        self._pending.remove(job_id)
        self.cluster.start_job(job_id, list(state.reserved_nodes))
        self.metrics.record_start(job_id, now)
        self.recorder.record(
            now, "start", job_id=job_id, nodes=list(state.reserved_nodes)
        )
        remaining = state.job.runtime - state.saved_progress
        state.run = JobRun(
            job_id=job_id,
            total_work=state.job.runtime,
            interval=self.config.checkpoint_interval,
            overhead=self.config.checkpoint_overhead,
            saved_progress=state.saved_progress,
            start_time=now,
            recovery_overhead=self.config.recovery_time,
            registry=self.registry,
        )
        # A delayed start occupies nodes past the booked end; extend the
        # booking so later placement decisions see the truth.
        planned_end = now + padded_remaining(
            remaining, self.config.checkpoint_interval, self.config.checkpoint_overhead
        )
        if planned_end > state.reserved_end:
            self.cluster.ledger.extend(job_id, planned_end)
            state.reserved_end = planned_end
        self._schedule_run_event(state)

    def _schedule_run_event(self, state: _JobState) -> None:
        run = state.run
        assert run is not None
        kind, delay = run.next_event_delay()
        event_kind = (
            EventKind.FINISH if kind == "finish" else EventKind.CHECKPOINT_REQUEST
        )
        # Delays are execution time from the current segment start, which
        # sits past ``now`` while a restart is still restoring (R > 0).
        fire_at = max(self.loop.now, run.segment_start) + delay
        state.run_event = self.loop.schedule(
            fire_at, event_kind, job_id=state.job.job_id
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _on_checkpoint_request(self, event: Event) -> None:
        job_id = event.payload["job_id"]
        state = self._states[job_id]
        run = state.run
        if run is None:
            return  # stale event for a killed run (should have been cancelled)
        state.run_event = None
        now = self.loop.now
        run.reach_request(now)
        ctx = CheckpointDecisionContext(
            now=now,
            job_id=job_id,
            nodes=self.cluster.nodes_of(job_id),
            interval=self.config.checkpoint_interval,
            overhead=self.config.checkpoint_overhead,
            skipped_since_checkpoint=run.skipped_since_checkpoint,
            remaining_work=run.remaining_work,
            deadline=state.guarantee.deadline if state.guarantee else None,
            predictor=self._query_predictor,
        )
        if not self._prof:
            decision = self.policy.decide(ctx)
        else:
            with self._z_decide:
                decision = self.policy.decide(ctx)
        if decision.perform:
            state.pending_decision = decision
            state.run_event = self.loop.schedule(
                now, EventKind.CHECKPOINT_START, job_id=job_id
            )
        else:
            run.skip_checkpoint(now)
            self.metrics.record_checkpoint(job_id, performed=False)
            self.recorder.record(
                now,
                "checkpoint_skipped",
                job_id=job_id,
                reason=decision.reason,
                p_f=decision.failure_probability,
                at_risk=decision.at_risk,
            )
            self._schedule_run_event(state)

    def _on_checkpoint_start(self, event: Event) -> None:
        job_id = event.payload["job_id"]
        state = self._states[job_id]
        run = state.run
        if run is None:
            return
        now = self.loop.now
        run.begin_checkpoint(now)
        state.run_event = self.loop.schedule_in(
            self.config.checkpoint_overhead, EventKind.CHECKPOINT_FINISH, job_id=job_id
        )

    def _on_checkpoint_finish(self, event: Event) -> None:
        job_id = event.payload["job_id"]
        state = self._states[job_id]
        run = state.run
        if run is None:
            return
        state.run_event = None
        run.complete_checkpoint(self.loop.now)
        state.saved_progress = run.saved_progress
        self.metrics.record_checkpoint(
            job_id, performed=True, overhead=self.config.checkpoint_overhead
        )
        decision = state.pending_decision
        state.pending_decision = None
        self.recorder.record(
            self.loop.now, "checkpoint_performed", job_id=job_id,
            saved_progress=run.saved_progress,
            began_at=run.last_checkpoint_start,
            reason=decision.reason if decision is not None else None,
            p_f=decision.failure_probability if decision is not None else None,
        )
        if self.config.proactive_evacuation and self._maybe_evacuate(state):
            return
        self._schedule_run_event(state)

    # ------------------------------------------------------------------
    # Finishing
    # ------------------------------------------------------------------
    def _on_finish(self, event: Event) -> None:
        job_id = event.payload["job_id"]
        state = self._states[job_id]
        run = state.run
        if run is None:
            return
        now = self.loop.now
        run.finish(now)
        state.run = None
        state.run_event = None
        state.done = True
        self._unfinished -= 1
        self.cluster.remove_job(job_id)
        self.cluster.ledger.release(job_id)
        self.metrics.record_finish(job_id, now)
        if self._obs:
            self._c_completed.inc()
        guarantee = state.guarantee
        self.recorder.record(
            now,
            "finish",
            job_id=job_id,
            deadline=guarantee.deadline if guarantee is not None else None,
            promised=guarantee.probability if guarantee is not None else None,
            met=guarantee.kept(now) if guarantee is not None else None,
            margin=guarantee.margin(now) if guarantee is not None else None,
        )
        if self._audit_on:
            self.audit.observe_outcome(job_id=job_id, finish_time=now)
        self._after_capacity_freed(now)

    # ------------------------------------------------------------------
    # Failures and recovery
    # ------------------------------------------------------------------
    def _on_failure(self, event: Event) -> None:
        node = event.payload["node"]
        now = self.loop.now
        victim_id, recovery = self.cluster.fail_node(node, now)
        self.loop.schedule(recovery, EventKind.RECOVERY, node=node)
        self.recorder.record(now, "failure", node=node, victim=victim_id)
        self.recorder.record(now, "node_down", node=node, until=recovery)

        if victim_id is not None:
            self._kill_job(victim_id, now)

        if self._unfinished > 0:
            self._schedule_next_failure()
        self._after_capacity_freed(now)

    def _kill_job(self, job_id: int, now: float) -> None:
        """Failure handling for the occupying job: charge, requeue, rebook."""
        state = self._states[job_id]
        run = state.run
        assert run is not None, f"victim {job_id} has no active run"
        lost_wall, durable = run.kill(now)
        self.metrics.record_failure_hit(job_id, lost_wall * state.job.size)
        self.recorder.record(
            now, "killed", job_id=job_id,
            lost_node_seconds=lost_wall * state.job.size,
            lost_wall_seconds=lost_wall,
            durable_progress=durable,
        )
        state.saved_progress = durable
        state.pending_decision = None
        state.run = None
        if state.run_event is not None:
            state.run_event.cancel()
            state.run_event = None
        self.cluster.remove_job(job_id)
        self.cluster.ledger.release(job_id)

        # Back to the queue: earliest slot for the remaining work, fresh
        # fault-aware placement, original deadline and promise retained.
        remaining = state.job.runtime - state.saved_progress
        padded = padded_remaining(
            remaining, self.config.checkpoint_interval, self.config.checkpoint_overhead
        )
        booking = self.scheduler.schedule_restart(
            job_id, state.job.size, padded, now
        )
        state.reserved_start = booking.start
        state.reserved_end = booking.end
        state.reserved_nodes = booking.nodes
        self.recorder.record(
            now, "requeued", job_id=job_id, restart_at=booking.start,
            nodes=list(booking.nodes),
        )
        state.start_event = self.loop.schedule(
            booking.start, EventKind.START, job_id=job_id
        )

    def _maybe_evacuate(self, state: _JobState) -> bool:
        """Voluntarily stop a just-checkpointed job if its partition is
        predicted to fail before the next checkpoint could complete *and* a
        strictly safer slot exists for the remaining work.

        Nothing is at risk at this instant (the checkpoint just made all
        progress durable), so moving costs only queueing delay.  The safer
        slot is found with the negotiation offer machinery: the earliest
        offer whose predicted failure probability improves on the current
        partition's is taken; if no offer improves (e.g. a full-width job
        with failures everywhere), the job keeps running and the original
        booking is restored untouched.

        Returns True if the job was evacuated (caller must not schedule
        further run events for the old run).
        """
        run = state.run
        assert run is not None
        now = self.loop.now
        job_id = state.job.job_id
        nodes = self.cluster.nodes_of(job_id)
        horizon = min(
            run.remaining_work + self.config.checkpoint_overhead,
            self.config.checkpoint_interval + 2 * self.config.checkpoint_overhead,
        )
        p_f = self._query_predictor.failure_probability(nodes, now, now + horizon)
        if p_f <= self.config.evacuation_threshold:
            return False

        remaining = state.job.runtime - state.saved_progress
        padded = padded_remaining(
            remaining, self.config.checkpoint_interval, self.config.checkpoint_overhead
        )
        # Release our own booking so the offer scan can consider our nodes,
        # then look for a strictly safer slot.
        original = self.cluster.ledger.get(job_id)
        self.cluster.ledger.release(job_id)
        chosen = None
        for offer in self.scheduler.negotiator.iter_offers(
            state.job.size, padded, now
        ):
            if offer.failure_probability < p_f - 1e-12:
                chosen = offer
                break
        if chosen is None:
            # No safer slot anywhere: ride it out on the current partition.
            self.cluster.ledger.reserve(
                job_id, original.nodes, original.start, original.end,
                allow_overlap=True,
            )
            return False

        state.run = None
        if state.run_event is not None:
            state.run_event.cancel()
            state.run_event = None
        self.cluster.remove_job(job_id)
        self.metrics.record_evacuation(job_id)
        if self._obs:
            self._c_evacuations.inc()
        self.recorder.record(
            now, "evacuated", job_id=job_id, predicted_pf=p_f, nodes=list(nodes)
        )
        self.cluster.ledger.reserve(
            job_id, chosen.nodes, chosen.start, chosen.deadline
        )
        state.reserved_start = chosen.start
        state.reserved_end = chosen.deadline
        state.reserved_nodes = chosen.nodes
        self.recorder.record(
            now, "requeued", job_id=job_id, restart_at=chosen.start,
            nodes=list(chosen.nodes),
        )
        state.start_event = self.loop.schedule(
            chosen.start, EventKind.START, job_id=job_id
        )
        self._after_capacity_freed(now)
        return True

    def _on_recovery(self, event: Event) -> None:
        node = event.payload["node"]
        self.cluster.recover_node(node, self.loop.now)
        if self.cluster.node(node).is_up:
            self.recorder.record(self.loop.now, "node_up", node=node)
        self._after_capacity_freed(self.loop.now)

    # ------------------------------------------------------------------
    # Blocked-start retries and opportunistic backfill
    # ------------------------------------------------------------------
    def _after_capacity_freed(self, now: float) -> None:
        """Resources changed: retry blocked starts, optionally pull forward."""
        for job_id in self._pending.snapshot():
            self._try_start(job_id, self._states[job_id])
        if self.config.opportunistic_start:
            self._opportunistic_pass(now)

    def _opportunistic_pass(self, now: float) -> None:
        """Pull the earliest future bookings toward freed capacity."""
        candidates = sorted(
            (
                s
                for s in self._states.values()
                if not s.done and not s.running and s.reserved_start > now
                and s.start_event is not None
            ),
            key=lambda s: s.reserved_start,
        )
        for state in candidates[:8]:  # bounded sweep per capacity change
            improved = self.scheduler.pull_forward(state.job.job_id, now)
            if improved is None:
                continue
            state.reserved_start = improved.start
            state.reserved_end = improved.end
            state.reserved_nodes = improved.nodes
            if state.start_event is not None:
                state.start_event.cancel()
            state.start_event = self.loop.schedule(
                improved.start, EventKind.START, job_id=state.job.job_id
            )

    def _schedule_wakeup(self, at_time: float) -> None:
        if self._wakeup_scheduled:
            return
        self._wakeup_scheduled = True
        self.loop.schedule(at_time, EventKind.WAKEUP)

    def _on_wakeup(self, event: Event) -> None:
        self._wakeup_scheduled = False
        self._after_capacity_freed(self.loop.now)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _refresh_gauges(self) -> None:
        """Bring point-in-time gauges up to date before a snapshot."""
        self._g_unfinished.set(self._unfinished)
        self._g_pending.set(len(self._pending.snapshot()))
        self._g_running.set(len(self.cluster.running_jobs()))
        self.loop.observe_gauges()

    def _on_obs_sample(self, event: Event) -> None:
        assert self.sampler is not None
        self._refresh_gauges()
        self.sampler.sample(self.loop.now)
        if self._unfinished > 0:
            self.loop.schedule_in(self.sampler.interval, EventKind.OBS_SAMPLE)


def simulate(
    config: SystemConfig,
    workload: JobLog,
    failures: FailureTrace,
    predictor: Optional[Predictor] = None,
    user: Optional[UserModel] = None,
    registry: Optional[MetricsRegistry] = None,
    sample_interval: Optional[float] = None,
    recorder: Optional[TraceRecorder] = None,
    audit: Optional[GuaranteeAudit] = None,
    profiler: Optional[Profiler] = None,
) -> SimulationResult:
    """One-call convenience: build the system and run it to completion."""
    system = ProbabilisticQoSSystem(
        config, workload, failures, predictor=predictor, user=user,
        registry=registry, sample_interval=sample_interval, recorder=recorder,
        audit=audit, profiler=profiler,
    )
    return system.run()
