"""Probabilistic QoS guarantees — the object the system promises.

The system's promises take the paper's canonical form: *"Job j can be
completed by deadline d with probability p."*  A :class:`QoSGuarantee` is
created exactly once per job, at negotiation time, and never revised — the
QoS metric (Equation 2) scores the system against the promise as made, so a
failure that delays a job past ``deadline`` costs the full promised weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.audit import margin_honours, promise_margin


@dataclass(frozen=True)
class QoSGuarantee:
    """One promise: job ``job_id`` completes by ``deadline`` w.p. ``probability``.

    Attributes:
        job_id: The promised job.
        deadline: Promised completion time (absolute seconds).
        probability: Promised success probability ``p_j = 1 - p_f`` where
            ``p_f`` is the predicted partition-failure probability over the
            reserved window.
        predicted_failure_probability: The ``p_f`` behind the promise.
        negotiated_at: Submission time the dialogue concluded.
        planned_start: Reserved start time backing the promise.
        planned_nodes: Reserved partition backing the promise.
        offers_declined: Earlier (tighter) offers the user turned down
            before accepting this one — 0 means the first offer was taken.
    """

    job_id: int
    deadline: float
    probability: float
    predicted_failure_probability: float
    negotiated_at: float
    planned_start: float
    planned_nodes: Tuple[int, ...]
    offers_declined: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"job {self.job_id}: probability {self.probability} not in [0,1]"
            )
        if self.deadline < self.negotiated_at:
            raise ValueError(
                f"job {self.job_id}: deadline {self.deadline} precedes "
                f"negotiation time {self.negotiated_at}"
            )

    @property
    def slack(self) -> float:
        """Seconds between negotiation and the promised deadline."""
        return self.deadline - self.negotiated_at

    def margin(self, finish_time: Optional[float]) -> Optional[float]:
        """Signed slack against the deadline (positive = early).

        ``None`` when the job never finished within the simulation.
        """
        return promise_margin(self.deadline, finish_time)

    def kept(self, finish_time: Optional[float]) -> bool:
        """Whether a finish at ``finish_time`` honours the promise.

        ``None`` (never finished within the simulation) is a broken
        promise.  Delegates to the canonical epsilon comparison in
        ``repro.obs.audit`` (``VERDICT_EPSILON``) — the same verdict the
        trace layer and the audit layer compute.
        """
        return margin_honours(self.margin(finish_time))


@dataclass(frozen=True)
class DeadlineOffer:
    """One option laid on the table during negotiation.

    Attributes:
        start: Proposed start time.
        nodes: Proposed partition.
        deadline: Completion time if the job runs to plan (start + E_j).
        probability: Promised success probability ``1 - p_f``.
        failure_probability: Predicted ``p_f`` for this window/partition.
    """

    start: float
    nodes: Tuple[int, ...]
    deadline: float
    probability: float
    failure_probability: float

    def __post_init__(self) -> None:
        # Same boundary discipline as QoSGuarantee: a predictor bug that
        # quotes p outside [0, 1] must fail here, loudly, not propagate
        # into negotiation and the audit as a silently-wrong promise.
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"offer probability {self.probability} not in [0, 1]"
            )
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ValueError(
                f"offer failure probability {self.failure_probability} "
                "not in [0, 1]"
            )
