"""Promise calibration: does the system promise honestly?

The paper's thesis is that *"a system that makes unqualified performance
guarantees is lying"* — so a system that makes **qualified** guarantees
should be audited for honesty: among all jobs promised success probability
≈ p, did a fraction ≈ p actually meet their deadlines?

This module scores a finished simulation's promises the way forecast
verification scores a weather service:

* :func:`calibration_buckets` — group promises by promised probability and
  compare the empirical keep rate per bucket (the data behind a
  reliability diagram);
* :func:`brier_score` — mean squared error of the promise as a probability
  forecast of ``q_j`` (0 is perfect, 0.25 is the skill-less coin);
* :func:`reliability_diagram` — an ASCII rendering of the buckets;
* :func:`calibration_gap` — the work-weighted mean |promised − observed|.

Note: with the paper's trace predictor the promised ``p = 1 − p_x`` is not
constructed as a true probability (the failure in the window *will* occur;
``p_x`` is its detectability), so honesty is an emergent property worth
measuring, not a tautology — the negotiation, placement and checkpointing
machinery together determine whether promises come true at their stated
rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.metrics import JobOutcome
from repro.obs.audit import CalibrationCurve


@dataclass(frozen=True)
class CalibrationBucket:
    """Promises whose probability fell in ``[low, high)``.

    Attributes:
        low: Bucket lower edge (inclusive).
        high: Bucket upper edge (exclusive; the last bucket includes 1.0).
        count: Promises in the bucket.
        mean_promised: Mean promised probability.
        keep_rate: Fraction of bucketed promises that were kept.
    """

    low: float
    high: float
    count: int
    mean_promised: float
    keep_rate: float

    @property
    def gap(self) -> float:
        """Signed honesty gap: positive = over-promising."""
        return self.mean_promised - self.keep_rate


def _promised_and_kept(outcomes: Iterable[JobOutcome]) -> List[Tuple[float, bool]]:
    pairs: List[Tuple[float, bool]] = []
    for outcome in outcomes:
        if outcome.guarantee is None:
            continue
        pairs.append((outcome.guarantee.probability, outcome.met_deadline))
    return pairs


def _curve(outcomes: Iterable[JobOutcome], bucket_count: int) -> CalibrationCurve:
    curve = CalibrationCurve(bucket_count)
    for promised, kept in _promised_and_kept(outcomes):
        curve.observe(promised, kept)
    return curve


def calibration_buckets(
    outcomes: Iterable[JobOutcome], bucket_count: int = 10
) -> List[CalibrationBucket]:
    """Bucket promises by probability and compute per-bucket keep rates.

    The binning (and Brier scoring below) delegates to the shared
    :class:`repro.obs.audit.CalibrationCurve` — the same implementation
    behind ``probqos audit`` and predictor evaluation.  Empty buckets are
    omitted (a reliability diagram has nothing to plot there).
    """
    return [
        CalibrationBucket(
            low=b.low,
            high=b.high,
            count=b.count,
            mean_promised=b.mean_forecast,
            keep_rate=b.success_rate,
        )
        for b in _curve(outcomes, bucket_count).bins()
        if b.count > 0
    ]


def brier_score(outcomes: Iterable[JobOutcome]) -> Optional[float]:
    """Mean squared error of the promise as a forecast of ``q_j``.

    Returns None when no promises were recorded.
    """
    curve = _curve(outcomes, bucket_count=1)
    if curve.count == 0:
        return None
    return curve.brier_sum / curve.count


def calibration_gap(outcomes: Iterable[JobOutcome]) -> Optional[float]:
    """Work-weighted mean absolute honesty gap, |promised − kept|.

    Weighted by ``e_j n_j`` (the QoS metric's weighting), so over-promising
    on big jobs counts for more — exactly where broken promises hurt.
    """
    total_work = 0.0
    weighted_gap = 0.0
    for outcome in outcomes:
        if outcome.guarantee is None:
            continue
        work = outcome.job.work
        kept = 1.0 if outcome.met_deadline else 0.0
        weighted_gap += work * abs(outcome.guarantee.probability - kept)
        total_work += work
    if total_work == 0.0:  # qoslint: disable=QOS104 -- exact-zero guard: only the empty sum produces literal 0.0 here
        return None
    return weighted_gap / total_work


def reliability_diagram(
    buckets: Sequence[CalibrationBucket], width: int = 40
) -> str:
    """ASCII reliability diagram: promised vs observed per bucket.

    Each row shows a bucket's promised range, its empirical keep rate as a
    bar, and a ``|`` marking where the bar should end for perfect honesty.
    """
    if not buckets:
        return "(no promises recorded)"
    lines = [f"{'promised':>12}  {'n':>6}  observed keep rate"]
    for bucket in buckets:
        bar_len = int(round(bucket.keep_rate * width))
        ideal = int(round(bucket.mean_promised * width))
        row = ["="] * bar_len + [" "] * (width - bar_len + 1)
        marker_pos = min(ideal, width)
        row[marker_pos] = "|"
        lines.append(
            f"[{bucket.low:4.2f},{bucket.high:4.2f})  {bucket.count:6d}  "
            f"{''.join(row)} {bucket.keep_rate:5.1%}"
        )
    lines.append(f"{'':>22}('|' marks the promised rate; '=' the observed)")
    return "\n".join(lines)
