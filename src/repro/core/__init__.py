"""Core: negotiation, guarantees, user models, metrics, the full system."""

from repro.core.calibration import (
    CalibrationBucket,
    brier_score,
    calibration_buckets,
    calibration_gap,
    reliability_diagram,
)
from repro.core.fastpath import AnalyticalEvaluator
from repro.core.guarantee import DeadlineOffer, QoSGuarantee
from repro.core.metrics import (
    JobOutcome,
    MetricsCollector,
    SimulationMetrics,
)
from repro.core.negotiation import (
    NEGOTIATION_MODES,
    DeadlineSuggestion,
    NegotiationOutcome,
    Negotiator,
    OracleDisagreement,
)
from repro.core.system import (
    ProbabilisticQoSSystem,
    SimulationResult,
    SystemConfig,
    simulate,
)
from repro.core.users import (
    EarliestDeadlineUser,
    RiskThresholdUser,
    SlackBoundedUser,
    UserModel,
)

__all__ = [
    "CalibrationBucket",
    "brier_score",
    "calibration_buckets",
    "calibration_gap",
    "reliability_diagram",
    "AnalyticalEvaluator",
    "DeadlineOffer",
    "QoSGuarantee",
    "JobOutcome",
    "MetricsCollector",
    "SimulationMetrics",
    "NEGOTIATION_MODES",
    "DeadlineSuggestion",
    "NegotiationOutcome",
    "Negotiator",
    "OracleDisagreement",
    "ProbabilisticQoSSystem",
    "SimulationResult",
    "SystemConfig",
    "simulate",
    "EarliestDeadlineUser",
    "RiskThresholdUser",
    "SlackBoundedUser",
    "UserModel",
]
