"""Wait-queue bookkeeping: pending starts and failure requeues.

Under conservative backfilling the classical wait queue is mostly empty —
every negotiated job immediately holds a reservation.  Two transient queues
remain:

* **pending starts** — jobs whose reserved start time has arrived but whose
  nodes are momentarily unavailable (a node is inside its 120 s repair
  window, or the previous occupant overran after its own delayed start);
  they retry whenever resources change;
* **requeues** — jobs killed by a failure, waiting (in FCFS order of their
  kill time) for a fresh reservation for their remaining work.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional


class PendingStarts:
    """Jobs at-or-past their reserved start, blocked on node availability.

    Preserves insertion (blocking) order so starvation is impossible: the
    longest-blocked job is retried first whenever a retry sweep runs.
    """

    def __init__(self) -> None:
        self._blocked: "OrderedDict[int, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._blocked)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._blocked

    def add(self, job_id: int) -> None:
        """Register a blocked start (idempotent, keeps original position)."""
        if job_id not in self._blocked:
            self._blocked[job_id] = None

    def remove(self, job_id: int) -> None:
        """Drop a job (it started, or was killed while blocked)."""
        self._blocked.pop(job_id, None)

    def snapshot(self) -> List[int]:
        """Blocked job ids in retry order (safe to mutate during retries)."""
        return list(self._blocked)


class RequeueQueue:
    """FCFS queue of failure victims awaiting re-reservation."""

    def __init__(self) -> None:
        self._items: List[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def push(self, job_id: int) -> None:
        if job_id in self._items:
            raise ValueError(f"job {job_id} is already queued for restart")
        self._items.append(job_id)

    def pop(self) -> Optional[int]:
        """Next victim to re-reserve, or None when empty."""
        if not self._items:
            return None
        return self._items.pop(0)

    def drain(self) -> List[int]:
        """Remove and return all queued victims in FCFS order."""
        items, self._items = self._items, []
        return items
