"""Fault-aware FCFS scheduling with conservative backfilling.

The paper's scheduler (Section 3.3) is "a FCFS scheduler with backfilling,
that uses event prediction to break ties among otherwise equivalent
partitions", and it must quote a deadline at submission — which is exactly
a *conservative* backfilling discipline: every job receives a node-level
reservation the moment it is negotiated, later jobs backfill only into
holes that do not disturb earlier bookings (guaranteed by construction,
because bookings are never moved), and the quoted deadline is the
reservation's end.

Paper-faithful constraints honoured here:

* no migration — a running job never moves;
* no dynamic re-optimisation — "jobs that have already been scheduled for
  later execution retain their scheduled partition" after a failure;
* failed jobs return to the queue and are re-reserved (FCFS among victims)
  for their *remaining* work, restarting from the last completed
  checkpoint.

An optional extension (off by default, ablated in the benchmarks) pulls a
reserved-but-not-started job forward when capacity frees early; the paper's
frozen-schedule behaviour is the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.nodeset import freeze_nodes
from repro.cluster.reservations import NodeScorer, ReservationLedger
from repro.cluster.topology import Topology
from repro.core.fastpath import AnalyticalEvaluator
from repro.core.negotiation import NegotiationOutcome, Negotiator
from repro.core.users import UserModel
from repro.obs.prof import NULL_PROFILER, Profiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.prediction.base import Predictor


@dataclass(frozen=True)
class RestartReservation:
    """A booking made for a failure victim's remaining work."""

    job_id: int
    start: float
    nodes: Sequence[int]
    end: float


class ConservativeBackfillScheduler:
    """Books arrivals through negotiation and victims at the earliest slot.

    Args:
        ledger: Shared reservation book (owned by the cluster).
        topology: Allocation-shape constraint.
        predictor: Event predictor used for fault-aware placement and for
            the promises quoted during negotiation.
        scorer: Node-ranking policy; pass the fault-aware scorer for the
            paper's system or an uninformed one for baselines.
        max_offers: Negotiation dialogue cap.
        registry: Optional obs registry; when live, restart bookings and
            pull-forward attempts are counted under ``scheduling.fcfs.*``
            and the registry is forwarded to the negotiator.
        negotiation_mode: Offer-pricing mode forwarded to the
            :class:`~repro.core.negotiation.Negotiator` (one of
            ``probe`` / ``analytical`` / ``oracle``).
        failure_jump_epsilon: Seconds the dialogue advances past a
            predicted failure; forwarded to the negotiator.
        evaluator: Shared analytical evaluator (the system passes the same
            instance it scores placement with, so one term cache serves
            both); forwarded to the negotiator.
        profiler: Optional hierarchical profiler, forwarded to the
            negotiator (dialogue and fastpath zones).
    """

    def __init__(
        self,
        ledger: ReservationLedger,
        topology: Topology,
        predictor: Predictor,
        scorer: Optional[NodeScorer],
        max_offers: int = 400,
        registry: Optional[MetricsRegistry] = None,
        negotiation_mode: str = "analytical",
        failure_jump_epsilon: float = 1.0,
        evaluator: Optional[AnalyticalEvaluator] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        self._ledger = ledger
        self._topology = topology
        # Same dispatch as the negotiator: run-length free sets when the
        # ledger speaks NodeSet, plain lists from the frozen seed ledger.
        self._free_query = getattr(ledger, "free_nodes_set", ledger.free_nodes)
        self._predictor = predictor
        self._scorer = scorer
        registry = registry if registry is not None else NULL_REGISTRY
        self.negotiator = Negotiator(
            ledger, topology, predictor, scorer, max_offers=max_offers,
            registry=registry, mode=negotiation_mode,
            failure_jump_epsilon=failure_jump_epsilon, evaluator=evaluator,
            profiler=profiler,
        )
        self._obs = registry.enabled
        self._c_restarts = registry.counter("scheduling.fcfs.restarts_booked")
        self._c_restart_probes = registry.counter("scheduling.fcfs.restart_probes")
        self._c_pull_attempts = registry.counter(
            "scheduling.fcfs.pull_forward_attempts"
        )
        self._c_pull_successes = registry.counter(
            "scheduling.fcfs.pull_forward_successes"
        )
        profiler = profiler if profiler is not None else NULL_PROFILER
        self._prof = profiler.enabled
        self._z_restart = profiler.zone("scheduling.fcfs.schedule_restart")
        self._h_restart_delay = registry.histogram(
            "scheduling.fcfs.restart_delay_candidates"
        )

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def schedule_arrival(
        self,
        job_id: int,
        size: int,
        padded_runtime: float,
        now: float,
        user: UserModel,
    ) -> NegotiationOutcome:
        """Negotiate and book a newly submitted job.

        The outcome's reservation is already in the ledger; the caller
        schedules the start event at ``outcome.start``.
        """
        return self.negotiator.negotiate(job_id, size, padded_runtime, now, user)

    # ------------------------------------------------------------------
    # Failure victims
    # ------------------------------------------------------------------
    def schedule_restart(
        self, job_id: int, size: int, padded_remaining: float, now: float
    ) -> RestartReservation:
        """Book the earliest feasible slot for a victim's remaining work.

        The original deadline and promise are untouched (promises are made
        once); this is purely a capacity booking.  Placement stays
        fault-aware: among free nodes at the chosen time the lowest
        predicted-failure partition is taken.
        """
        if not self._prof:
            return self._schedule_restart(job_id, size, padded_remaining, now)
        with self._z_restart:
            return self._schedule_restart(job_id, size, padded_remaining, now)

    def _schedule_restart(
        self, job_id: int, size: int, padded_remaining: float, now: float
    ) -> RestartReservation:
        profile = self._ledger.profile()
        total = self._ledger.node_count
        candidates = 0
        for start in self._ledger.candidate_times(now):
            candidates += 1
            if not profile.window_fits(
                start, start + padded_remaining, size, total
            ):
                continue
            free = self._free_query(start, start + padded_remaining)
            if len(free) < size:
                continue
            nodes = self._topology.select_partition(
                free, size, start, start + padded_remaining, self._scorer
            )
            if nodes is None:
                continue
            self._ledger.reserve(job_id, nodes, start, start + padded_remaining)
            if self._obs:
                self._c_restarts.inc()
                self._c_restart_probes.inc(candidates)
                self._h_restart_delay.observe(candidates)
            return RestartReservation(
                job_id=job_id,
                start=start,
                nodes=freeze_nodes(nodes),
                end=start + padded_remaining,
            )
        raise RuntimeError(
            f"job {job_id}: no restart slot found (should be impossible past "
            "the final booking)"
        )

    # ------------------------------------------------------------------
    # Optional extension: opportunistic pull-forward
    # ------------------------------------------------------------------
    def pull_forward(
        self, job_id: int, now: float
    ) -> Optional[RestartReservation]:
        """Try to move a not-yet-started booking earlier (extension).

        Releases the job's booking and re-books at the earliest feasible
        slot; if that is not strictly earlier, the original booking is
        restored.  Never touches other bookings, so the paper's
        no-disturbance property still holds for everyone else.

        Returns:
            The improved booking, or None if the original was kept.
        """
        reservation = self._ledger.get(job_id)
        if reservation is None or reservation.start <= now:
            return None
        if self._obs:
            self._c_pull_attempts.inc()
        duration = reservation.duration
        self._ledger.release(job_id)
        for start in self._ledger.candidate_times(now):
            if start >= reservation.start:
                break
            free = self._free_query(start, start + duration)
            if len(free) < len(reservation.nodes):
                continue
            nodes = self._topology.select_partition(
                free, len(reservation.nodes), start, start + duration, self._scorer
            )
            if nodes is None:
                continue
            self._ledger.reserve(job_id, nodes, start, start + duration)
            if self._obs:
                self._c_pull_successes.inc()
            return RestartReservation(
                job_id=job_id, start=start, nodes=freeze_nodes(nodes), end=start + duration
            )
        # No improvement: restore the original booking.  The original may
        # legally overlap another job's extended interval, so skip the
        # free-window validation on restore.
        self._ledger.reserve(
            job_id,
            reservation.nodes,
            reservation.start,
            reservation.end,
            allow_overlap=True,
        )
        return None
