"""Partition-selection scorers (fault-aware and baselines).

The paper's scheduler "uses event prediction to break ties among otherwise
equivalent partitions": at the chosen start time it selects, among the free
nodes, the partition with the lowest probability of failure.  In the flat
topology that reduces to ranking individual free nodes by their predicted
failure probability over the job's window and taking the best ``n_j``.

Scorers are plain callables ``(node, start, end) -> float`` (lower is
better) plugged into :meth:`ReservationLedger.find_slot` and
:meth:`Topology.select_partition`; this keeps the policy choice orthogonal
to the mechanics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.reservations import NodeScorer
from repro.prediction.base import Predictor
from repro.sim.rng import make_rng, stable_uniform


def fault_aware_scorer(predictor: Predictor) -> NodeScorer:
    """Rank nodes by predicted failure probability over the window.

    With the trace predictor this steers jobs away from nodes carrying a
    *detectable* upcoming failure; undetectable failures (``p_x > a``) are
    invisible, which is exactly how prediction accuracy couples into
    placement quality.
    """

    def score(node: int, start: float, end: float) -> float:
        return predictor.node_failure_probability(node, start, end)

    return score


def index_scorer() -> NodeScorer:
    """First-fit: prefer low node indexes (deterministic, uninformed)."""

    def score(node: int, start: float, end: float) -> float:
        return float(node)

    return score


def random_scorer(seed: Optional[int] = None) -> NodeScorer:
    """Uninformed random placement, deterministic per (node, window).

    Keyed on the query so repeated calls during one negotiation are
    consistent, but different windows shuffle differently — a fair
    "no information" baseline for the placement ablation.
    """

    def score(node: int, start: float, end: float) -> float:
        return stable_uniform(f"placement:{node}:{start:.3f}:{end:.3f}", seed)

    return score


def scorer_by_name(
    name: str, predictor: Predictor, seed: Optional[int] = None
) -> NodeScorer:
    """Factory: ``"fault-aware"`` (paper), ``"first-fit"``, ``"random"``."""
    key = name.lower()
    if key == "fault-aware":
        return fault_aware_scorer(predictor)
    if key == "first-fit":
        return index_scorer()
    if key == "random":
        return random_scorer(seed)
    raise KeyError(
        f"unknown placement scorer {name!r}; available: "
        "fault-aware, first-fit, random"
    )
