"""Scheduling: fault-aware conservative backfilling, placement, queues."""

from repro.scheduling.easy import (
    EasyBackfillSimulator,
    EasyConfig,
    simulate_easy,
)
from repro.scheduling.fcfs import ConservativeBackfillScheduler, RestartReservation
from repro.scheduling.placement import (
    fault_aware_scorer,
    index_scorer,
    random_scorer,
    scorer_by_name,
)
from repro.scheduling.queue import PendingStarts, RequeueQueue

__all__ = [
    "EasyBackfillSimulator",
    "EasyConfig",
    "simulate_easy",
    "ConservativeBackfillScheduler",
    "RestartReservation",
    "fault_aware_scorer",
    "index_scorer",
    "random_scorer",
    "scorer_by_name",
    "PendingStarts",
    "RequeueQueue",
]
