"""EASY (aggressive) backfilling — the no-guarantees comparator.

The paper's scheduler must quote a deadline at submission, which forces
*conservative* backfilling (every job booked on arrival).  The classical
alternative, EASY backfilling, keeps only one reservation — for the queue
head — and starts any other job that fits in the meantime without delaying
that head.  EASY typically achieves lower waits and equal-or-better
utilization, but it cannot promise anything: a job's start time depends on
future arrivals.

:class:`EasyBackfillSimulator` replays the same workloads and failure
traces as :class:`~repro.core.system.ProbabilisticQoSSystem` under EASY, so
the *price of promises* — the utilization/wait gap between the two
disciplines — can be measured (see
``benchmarks/test_ablation_scheduler_discipline.py``).  Checkpointing is
periodic or disabled (EASY here models the prediction-free world).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tracelog import NullRecorder, TraceRecorder
from repro.checkpointing.runtime import JobRun, padded_remaining
from repro.cluster.machine import Cluster
from repro.core.metrics import MetricsCollector, SimulationMetrics
from repro.failures.events import FailureTrace
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.sim.engine import EventLoop
from repro.sim.events import Event, EventKind
from repro.workload.job import Job, JobLog


@dataclass(frozen=True)
class EasyConfig:
    """Configuration of the EASY comparator.

    Attributes:
        node_count: Cluster width.
        downtime: Node repair time, seconds.
        checkpoint_overhead: ``C`` for the periodic policy.
        checkpoint_interval: ``I`` for the periodic policy.
        checkpointing: ``True`` = periodic checkpoints, ``False`` = none.
    """

    node_count: int = 128
    downtime: float = 120.0
    checkpoint_overhead: float = 720.0
    checkpoint_interval: float = 3600.0
    checkpointing: bool = True


@dataclass
class _EasyJobState:
    job: Job
    saved_progress: float = 0.0
    run: Optional[JobRun] = None
    done: bool = False
    waiting: bool = False
    run_event: Optional[Event] = None


class EasyBackfillSimulator:
    """Replays a workload under EASY backfilling (no promises, no prediction).

    Args:
        recorder: Optional trace recorder (see
            :mod:`repro.analysis.tracelog`).  EASY makes no promises, so
            its traces have no ``negotiated`` records — start, checkpoint,
            failure, requeue, and finish transitions still assemble into
            spans, which is what lets the span layer render the comparator
            side by side with the paper's system.
    """

    def __init__(
        self,
        config: EasyConfig,
        workload: JobLog,
        failures: FailureTrace,
        registry: Optional[MetricsRegistry] = None,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.config = config
        self.workload = workload
        self.failures = failures
        self.recorder: TraceRecorder = (
            recorder if recorder is not None else NullRecorder()
        )
        registry = registry if registry is not None else NULL_REGISTRY
        self._registry = registry
        self._obs = registry.enabled
        self._c_backfill_attempts = registry.counter(
            "scheduling.easy.backfill_attempts"
        )
        self._c_backfill_successes = registry.counter(
            "scheduling.easy.backfill_successes"
        )
        self._c_head_starts = registry.counter("scheduling.easy.head_starts")
        self._g_queue_depth = registry.gauge("scheduling.easy.queue_depth")
        self.cluster = Cluster(
            config.node_count, downtime=config.downtime, registry=registry
        )
        self.metrics = MetricsCollector()
        self.loop = EventLoop(registry=registry)
        self._states: Dict[int, _EasyJobState] = {}
        #: Waiting job ids in FCFS order of original arrival.
        self._queue: List[int] = []
        self._unfinished = 0
        self._failure_cursor = 0
        register = self.loop.register
        register(EventKind.ARRIVAL, self._on_arrival)
        register(EventKind.FINISH, self._on_finish)
        register(EventKind.FAILURE, self._on_failure)
        register(EventKind.RECOVERY, self._on_recovery)
        register(EventKind.CHECKPOINT_REQUEST, self._on_checkpoint_request)
        register(EventKind.CHECKPOINT_FINISH, self._on_checkpoint_finish)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> SimulationMetrics:
        for job in self.workload:
            if job.size > self.config.node_count:
                raise ValueError(
                    f"job {job.job_id} wider than the cluster; clip the log"
                )
            self._states[job.job_id] = _EasyJobState(job=job)
            self.metrics.register_job(job)
            self.loop.schedule(job.arrival_time, EventKind.ARRIVAL, job_id=job.job_id)
        self._unfinished = len(self.workload)
        self._schedule_next_failure()
        self.loop.run()
        return self.metrics.finalize(self.config.node_count)

    # ------------------------------------------------------------------
    # Scheduling pass (the EASY core)
    # ------------------------------------------------------------------
    def _padded(self, remaining: float) -> float:
        if not self.config.checkpointing:
            return remaining
        return padded_remaining(
            remaining, self.config.checkpoint_interval, self.config.checkpoint_overhead
        )

    def _expected_release_times(self) -> List[Tuple[float, int]]:
        """(expected completion, width) per running job, soonest first."""
        releases = []
        for job_id in self.cluster.running_jobs():
            state = self._states[job_id]
            run = state.run
            assert run is not None
            remaining_wall = self._padded(max(run.remaining_work, 1e-9))
            releases.append((self.loop.now + remaining_wall, state.job.size))
        releases.sort()
        return releases

    def _free_now(self) -> int:
        return sum(
            1 for node in self.cluster.nodes if node.is_up and not node.is_busy
        )

    def _shadow_time(self, head_size: int) -> Tuple[float, int]:
        """When the queue head can start, and the spare nodes at that time.

        Walks the expected releases until enough nodes accumulate for the
        head; the *extra* nodes beyond the head's need at that instant may
        be used by backfill jobs running past the shadow time.
        """
        available = self._free_now()
        if available >= head_size:
            return self.loop.now, available - head_size
        for release_time, width in self._expected_release_times():
            available += width
            if available >= head_size:
                return release_time, available - head_size
        return float("inf"), 0

    def _schedule_pass(self) -> None:
        """Start the head if possible; otherwise backfill behind it."""
        now = self.loop.now
        obs = self._obs
        while self._queue:
            head = self._states[self._queue[0]]
            if self._try_start(head):
                self._queue.pop(0)
                if obs:
                    self._c_head_starts.inc()
                continue
            break
        if not self._queue:
            if obs:
                self._g_queue_depth.set(0)
            return
        head = self._states[self._queue[0]]
        shadow, spare = self._shadow_time(head.job.size)
        for job_id in list(self._queue[1:]):
            state = self._states[job_id]
            free = self._free_now()
            if state.job.size > free:
                continue
            remaining_wall = self._padded(state.job.runtime - state.saved_progress)
            fits_before_shadow = now + remaining_wall <= shadow + 1e-9
            fits_in_spare = state.job.size <= spare
            if not (fits_before_shadow or fits_in_spare):
                continue
            if obs:
                self._c_backfill_attempts.inc()
            if self._try_start(state):
                self._queue.remove(job_id)
                if obs:
                    self._c_backfill_successes.inc()
                if fits_in_spare and not fits_before_shadow:
                    spare -= state.job.size
        if obs:
            self._g_queue_depth.set(len(self._queue))

    def _try_start(self, state: _EasyJobState) -> bool:
        up_idle = [
            node.index
            for node in self.cluster.nodes
            if node.is_up and not node.is_busy
        ]
        if len(up_idle) < state.job.size:
            return False
        nodes = up_idle[: state.job.size]
        self.cluster.start_job(state.job.job_id, nodes)
        state.waiting = False
        now = self.loop.now
        self.metrics.record_start(state.job.job_id, now)
        self.recorder.record(now, "start", job_id=state.job.job_id, nodes=list(nodes))
        state.run = JobRun(
            job_id=state.job.job_id,
            total_work=state.job.runtime,
            interval=self.config.checkpoint_interval,
            overhead=self.config.checkpoint_overhead,
            saved_progress=state.saved_progress,
            start_time=now,
            registry=self._registry,
        )
        self._schedule_run_event(state)
        return True

    def _schedule_run_event(self, state: _EasyJobState) -> None:
        run = state.run
        assert run is not None
        kind, delay = run.next_event_delay()
        event_kind = (
            EventKind.FINISH if kind == "finish" else EventKind.CHECKPOINT_REQUEST
        )
        state.run_event = self.loop.schedule_in(
            delay, event_kind, job_id=state.job.job_id
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, event: Event) -> None:
        state = self._states[event.payload["job_id"]]
        state.waiting = True
        self._queue.append(state.job.job_id)
        self._queue.sort(key=lambda jid: self._states[jid].job.arrival_time)
        self._schedule_pass()

    def _on_finish(self, event: Event) -> None:
        job_id = event.payload["job_id"]
        state = self._states[job_id]
        if state.run is None:
            return
        state.run.finish(self.loop.now)
        state.run = None
        state.run_event = None
        state.done = True
        self._unfinished -= 1
        self.cluster.remove_job(job_id)
        self.metrics.record_finish(job_id, self.loop.now)
        self.recorder.record(self.loop.now, "finish", job_id=job_id)
        self._schedule_pass()

    def _on_checkpoint_request(self, event: Event) -> None:
        job_id = event.payload["job_id"]
        state = self._states[job_id]
        run = state.run
        if run is None:
            return
        now = self.loop.now
        run.reach_request(now)
        if self.config.checkpointing:
            run.begin_checkpoint(now)
            self.metrics.record_checkpoint(
                job_id, performed=True, overhead=self.config.checkpoint_overhead
            )
            state.run_event = self.loop.schedule_in(
                self.config.checkpoint_overhead,
                EventKind.CHECKPOINT_FINISH,
                job_id=job_id,
            )
        else:
            run.skip_checkpoint(now)
            self.metrics.record_checkpoint(job_id, performed=False)
            self.recorder.record(
                now, "checkpoint_skipped", job_id=job_id,
                reason="checkpointing-disabled",
            )
            self._schedule_run_event(state)

    def _on_checkpoint_finish(self, event: Event) -> None:
        job_id = event.payload["job_id"]
        state = self._states[job_id]
        run = state.run
        if run is None:
            return
        run.complete_checkpoint(self.loop.now)
        state.saved_progress = run.saved_progress
        self.recorder.record(
            self.loop.now, "checkpoint_performed", job_id=job_id,
            saved_progress=run.saved_progress,
            began_at=run.last_checkpoint_start,
            reason="periodic-always",
        )
        self._schedule_run_event(state)

    def _on_failure(self, event: Event) -> None:
        node = event.payload["node"]
        now = self.loop.now
        victim_id, recovery = self.cluster.fail_node(node, now)
        self.loop.schedule(recovery, EventKind.RECOVERY, node=node)
        self.recorder.record(now, "failure", node=node, victim=victim_id)
        self.recorder.record(now, "node_down", node=node, until=recovery)
        if victim_id is not None:
            state = self._states[victim_id]
            run = state.run
            assert run is not None
            lost_wall, durable = run.kill(now)
            self.metrics.record_failure_hit(victim_id, lost_wall * state.job.size)
            self.recorder.record(
                now, "killed", job_id=victim_id,
                lost_node_seconds=lost_wall * state.job.size,
                lost_wall_seconds=lost_wall,
                durable_progress=durable,
            )
            state.saved_progress = durable
            state.run = None
            if state.run_event is not None:
                state.run_event.cancel()
                state.run_event = None
            self.cluster.remove_job(victim_id)
            state.waiting = True
            self._queue.append(victim_id)
            self._queue.sort(key=lambda jid: self._states[jid].job.arrival_time)
            self.recorder.record(now, "requeued", job_id=victim_id)
        if self._unfinished > 0:
            self._schedule_next_failure()
        self._schedule_pass()

    def _on_recovery(self, event: Event) -> None:
        node = event.payload["node"]
        self.cluster.recover_node(node, self.loop.now)
        if self.cluster.node(node).is_up:
            self.recorder.record(self.loop.now, "node_up", node=node)
        self._schedule_pass()

    def _schedule_next_failure(self) -> None:
        while self._failure_cursor < len(self.failures):
            failure = self.failures[self._failure_cursor]
            self._failure_cursor += 1
            if failure.node >= self.config.node_count:
                continue
            if failure.time < self.loop.now:
                continue
            self.loop.schedule(
                failure.time, EventKind.FAILURE, node=failure.node
            )
            return


def simulate_easy(
    config: EasyConfig,
    workload: JobLog,
    failures: FailureTrace,
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[TraceRecorder] = None,
) -> SimulationMetrics:
    """One-call convenience for the EASY comparator."""
    return EasyBackfillSimulator(
        config, workload, failures, registry=registry, recorder=recorder
    ).run()
