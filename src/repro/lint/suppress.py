"""Inline suppression comments: ``# qoslint: disable=QOS102 -- reason``.

A suppression silences named rule codes *on its own physical line only* —
there is no block or file scope, so every silenced finding stays visible in
the diff right next to the code it excuses.  The ``-- reason`` tail is how
a suppression carries its rationale; repository convention (enforced by
review, not by this module) is that library suppressions always give one.

Suppressions are parsed from real COMMENT tokens via :mod:`tokenize`, so a
``# qoslint:`` inside a string literal is never misread as one.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

_DISABLE_RE = re.compile(
    r"#\s*qoslint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<reason>.+?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment.

    Attributes:
        line: 1-based physical line the comment sits on.
        codes: Rule codes it names, in written order.
        reason: Text after ``--``, or None when no rationale was given.
    """

    line: int
    codes: Tuple[str, ...]
    reason: Optional[str]


class SuppressionIndex:
    """All suppressions in one source file, queryable by line."""

    def __init__(self, suppressions: Iterable[Suppression]) -> None:
        self._by_line: Dict[int, List[Suppression]] = {}
        for suppression in suppressions:
            self._by_line.setdefault(suppression.line, []).append(suppression)

    @classmethod
    def scan(cls, source: str) -> "SuppressionIndex":
        """Parse every suppression comment out of ``source``.

        Assumes ``source`` already parsed as Python (the engine checks
        syntax first); tokenization errors therefore mean an internal bug
        and are allowed to propagate.
        """
        suppressions: List[Suppression] = []
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DISABLE_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            if not codes:
                continue
            suppressions.append(
                Suppression(
                    line=token.start[0],
                    codes=codes,
                    reason=match.group("reason"),
                )
            )
        return cls(suppressions)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_line.values())

    @property
    def suppressions(self) -> List[Suppression]:
        """All suppressions in line order."""
        return [
            suppression
            for line in sorted(self._by_line)
            for suppression in self._by_line[line]
        ]

    def is_suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is silenced on physical ``line``."""
        return any(
            code in suppression.codes
            for suppression in self._by_line.get(line, [])
        )

    def unknown_codes(
        self, known: FrozenSet[str]
    ) -> List[Tuple[int, str]]:
        """``(line, code)`` pairs naming codes no registered rule owns.

        These become QOS001 findings: a suppression for a misspelled code
        silences nothing while *looking* like it silences something, which
        is worse than no suppression at all.
        """
        pairs: List[Tuple[int, str]] = []
        for line in sorted(self._by_line):
            for suppression in self._by_line[line]:
                for code in suppression.codes:
                    if code not in known:
                        pairs.append((line, code))
        return pairs
