"""The repo-specific rule set (QOS101-QOS110).

Importing this package registers every rule with the engine registry;
:func:`repro.lint.engine.all_rules` does so lazily.  Each module groups the
rules policing one determinism failure mode; the rule docstrings and
``rationale`` attributes are the authoritative statement of the contract
(DESIGN.md "Static analysis & the determinism contract" mirrors them).
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401
    defaults,
    env,
    excepts,
    floats,
    hashing,
    ordering,
    pickling,
    rng,
    state,
    wallclock,
)
