"""The repo-specific rule set (QOS1xx-QOS5xx).

Importing this package registers every rule with the engine registry;
:func:`repro.lint.engine.all_rules` does so lazily.  Each module groups the
rules policing one determinism failure mode; the rule docstrings and
``rationale`` attributes are the authoritative statement of the contract
(DESIGN.md "Static analysis & the determinism contract" mirrors them).

Families: QOS1xx are single-pass pattern rules; QOS2xx follow taint
through per-function dataflow; QOS3xx check the probability and time-unit
domains; QOS4xx police coroutine safety; QOS5xx (in
:mod:`repro.lint.arch`, run by ``--arch``) enforce the layer DAG.
"""

from __future__ import annotations

from repro.lint import arch  # noqa: F401  (registers QOS501/QOS502)
from repro.lint.rules import (  # noqa: F401
    asyncsafety,
    dataflow,
    defaults,
    env,
    excepts,
    floats,
    hashing,
    ordering,
    pickling,
    probability,
    profzones,
    rng,
    state,
    wallclock,
)
