"""QOS101 — hidden global RNG state.

Every stochastic draw in this library must come from an explicitly seeded
generator derived in :mod:`repro.sim.rng`; the process-global streams
(``random.*`` module functions, ``numpy.random.*`` legacy functions) are
invisible inputs that make two "identical" runs diverge the moment any
other code touches the shared state.  Instantiating an explicit generator
(``random.Random(seed)``, ``np.random.default_rng(seed)``) is fine — the
rule bans the *module-level* streams, not seeded instances.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.banned import (
    NUMPY_EXPLICIT_RNG as NUMPY_EXPLICIT,
    STDLIB_GLOBAL_RNG_FUNCTIONS as STDLIB_GLOBAL_FUNCTIONS,
    is_global_rng as _banned,
)
from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity


@register
class GlobalRandomRule(Rule):
    code = "QOS101"
    name = "global-rng"
    rationale = (
        "process-global RNG streams are hidden inputs; every draw must come "
        "from an explicitly seeded generator derived in repro.sim.rng"
    )
    severity = LintSeverity.ERROR
    node_types = (ast.Attribute, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module == ctx.config.rng_module:
            return
        if isinstance(node, ast.ImportFrom):
            if node.level or node.module not in ("random", "numpy.random"):
                return
            for alias in node.names:
                if _banned(f"{node.module}.{alias.name}"):
                    yield self.finding(
                        node,
                        ctx,
                        f"import of global RNG function "
                        f"{node.module}.{alias.name}; use an explicit "
                        "generator from repro.sim.rng (make_rng/substream)",
                    )
            return
        # Attribute chains: random.seed(...), np.random.shuffle(...), ...
        # Nested attributes are visited again for each sub-chain, so only
        # report when the *full* chain is the banned name (the sub-chain
        # ``numpy.random`` alone is not banned, avoiding duplicates).
        qualified = ctx.qualified_name(node)
        if qualified is not None and _banned(qualified):
            yield self.finding(
                node,
                ctx,
                f"use of global RNG state {qualified}; draw from an "
                "explicitly seeded generator (repro.sim.rng.make_rng / "
                "substream) instead",
            )
