"""QOS105 — defaults evaluated once and shared across calls.

A mutable default (``def f(xs=[])``) is the classic shared-state bug; a
*call* default (``def f(cfg=Config())``) is its quieter sibling — the
object is built once at import time and aliased by every call, so identity
checks, later mutation, or pickling behave differently than the signature
suggests.  Use ``None`` and construct inside the body.  Calls producing
immutable values (``tuple()``, ``frozenset()``) are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity

#: Constructor names whose results are immutable and safe to share.
_IMMUTABLE_CONSTRUCTORS = frozenset({"tuple", "frozenset"})


def _shared_default(node: ast.AST) -> Optional[str]:
    """Describe a default that is built once and shared, else None."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _IMMUTABLE_CONSTRUCTORS
        ):
            return None
        name = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else node.func.attr
            if isinstance(node.func, ast.Attribute)
            else "call"
        )
        return f"{name}(...) instance"
    return None


@register
class SharedDefaultRule(Rule):
    code = "QOS105"
    name = "shared-default"
    rationale = (
        "mutable or constructed defaults are evaluated once at import and "
        "aliased by every call; default to None and build inside the body"
    )
    severity = LintSeverity.WARNING
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        args = node.args  # type: ignore[attr-defined]
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            description = _shared_default(default)
            if description is not None:
                yield self.finding(
                    default,
                    ctx,
                    f"default {description} is created once at definition "
                    "time and shared across calls; use None and construct "
                    "inside the function",
                )
