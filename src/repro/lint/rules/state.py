"""QOS107 — module-level mutable state in sim packages.

A module-level list/dict/set in a sim layer is process-global state shared
by every simulation in the process: warm-cache reruns, parallel workers
after fork, and back-to-back replication runs all see whatever the previous
run left behind.  Constants belong in immutable containers (tuple,
frozenset, ``types.MappingProxyType``); anything genuinely mutable belongs
on the object that owns its lifecycle.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "Counter",
        "OrderedDict",
        "bytearray",
        "defaultdict",
        "deque",
        "dict",
        "list",
        "set",
    }
)


def _mutable_value(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    ):
        return f"{node.func.id}(...)"
    return None


def _all_dunder_targets(node: ast.AST) -> bool:
    if isinstance(node, ast.AnnAssign):
        targets = [node.target]
    elif isinstance(node, ast.Assign):
        targets = node.targets
    else:
        return False
    return all(
        isinstance(target, ast.Name)
        and target.id.startswith("__")
        and target.id.endswith("__")
        for target in targets
    )


@register
class ModuleMutableStateRule(Rule):
    code = "QOS107"
    name = "module-mutable-state"
    rationale = (
        "module-level mutable containers in sim packages are process-global "
        "state leaking between runs; use tuple/frozenset/MappingProxyType "
        "or move the state onto its owning object"
    )
    severity = LintSeverity.ERROR
    node_types = (ast.Assign, ast.AnnAssign)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_sim_layer or not ctx.at_module_level:
            return
        # Dunder metadata (__all__ = [...]) is read-only by convention and
        # consumed by the import system, not by simulations.
        if _all_dunder_targets(node):
            return
        value = node.value
        if value is None:  # annotation-only AnnAssign
            return
        description = _mutable_value(value)
        if description is not None:
            yield self.finding(
                node,
                ctx,
                f"module-level mutable {description} in a sim package is "
                "shared global state; use an immutable container (tuple, "
                "frozenset, types.MappingProxyType) or move it onto the "
                "owning object",
            )
