"""QOS104 — float equality comparisons in library code.

``x == 0.3`` on accumulated floats is a latent heisenbug: it may hold on
one summation order and fail on another (exactly what changing worker
counts or numpy versions perturbs).  Library code must compare floats with
an explicit tolerance (``math.isclose``, ``abs(a - b) < eps``) or justify
an exact-representation comparison with a suppression.  Tests are exempt:
asserting *bit-exact* equality across replays is the determinism suite's
entire job.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity


def _is_float_expr(node: ast.AST) -> bool:
    """Syntactically float-valued: a float literal, ``-literal``, or
    ``float(...)`` call."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    return False


@register
class FloatEqualityRule(Rule):
    code = "QOS104"
    name = "float-equality"
    rationale = (
        "exact float equality depends on summation order; library code "
        "compares with an explicit tolerance (tests asserting bit-exact "
        "replays are exempt)"
    )
    severity = LintSeverity.WARNING
    node_types = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        if not ctx.in_library:
            return
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_float_expr(left) or _is_float_expr(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    left,
                    ctx,
                    f"float {symbol} comparison; use math.isclose or an "
                    "explicit tolerance (suppress with rationale when the "
                    "value is exactly representable by construction)",
                )
