"""QOS106 — exception handlers that swallow failures silently.

A bare ``except:`` catches ``SystemExit``/``KeyboardInterrupt`` and hides
engine bugs as mysteriously-wrong results; a broad handler whose body is
only ``pass`` turns an invariant violation into silent state divergence —
the worst possible failure mode for a simulator whose outputs are asserted
bit-identical.  Catch the narrowest type that the handler can actually
handle, and do something observable with it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in _BROAD
    if isinstance(annotation, ast.Tuple):
        return any(_is_broad(element) for element in annotation.elts)
    return False


def _body_is_silent(body: list) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


@register
class SilentExceptRule(Rule):
    code = "QOS106"
    name = "silent-except"
    rationale = (
        "bare or pass-only broad handlers turn engine invariant violations "
        "into silent state divergence; catch narrowly and act observably"
    )
    severity = LintSeverity.ERROR
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.finding(
                node,
                ctx,
                "bare except catches SystemExit/KeyboardInterrupt and hides "
                "bugs; name the exception types this handler can handle",
            )
            return
        if (
            ctx.in_library
            and _is_broad(node.type)
            and _body_is_silent(node.body)
        ):
            yield self.finding(
                node,
                ctx,
                "broad except with a pass-only body swallows failures "
                "silently; narrow the type or handle the error observably",
            )
