"""QOS110 — salted builtin ``hash()`` in sim layers.

``hash(str)`` is randomised per interpreter process (PYTHONHASHSEED), so
any sim-layer value derived from it — bucket choices, tie-breaks, derived
seeds — differs between two runs of the *same* experiment.  Use
:mod:`hashlib` digests or the stable keyed helpers in
:mod:`repro.sim.rng` (``substream``/``stable_uniform``), which exist for
exactly this purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity


@register
class SaltedHashRule(Rule):
    code = "QOS110"
    name = "salted-hash"
    rationale = (
        "builtin hash() is salted per process (PYTHONHASHSEED); sim-layer "
        "values derived from it differ across runs — use hashlib or "
        "repro.sim.rng.substream/stable_uniform"
    )
    severity = LintSeverity.ERROR
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.in_sim_layer:
            return
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            yield self.finding(
                node,
                ctx,
                "builtin hash() is salted per process; derive stable values "
                "with hashlib or repro.sim.rng (substream/stable_uniform)",
            )
