"""QOS109 — ambient process environment reads in library code.

``os.environ`` / ``os.getcwd()`` in library code make results depend on
*how the process was launched*: two archival runs of the same seed diverge
because one shell exported a knob the other did not, and a worker process
may not inherit what the parent saw.  Configuration must be threaded
through parameters; the few documented environment knobs (the benchmark
overrides in ``repro.experiments.config``) carry explicit suppressions
stating exactly that.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity

#: Attribute chains whose mere mention means ambient-environment access.
_AMBIENT_ATTRIBUTES = frozenset({"os.environ"})

#: Calls reading the ambient environment or working directory.
_AMBIENT_CALLS = frozenset(
    {"os.getenv", "os.getcwd", "os.getcwdb", "pathlib.Path.cwd"}
)


@register
class AmbientEnvironmentRule(Rule):
    code = "QOS109"
    name = "ambient-environment"
    rationale = (
        "environment/cwd reads make library results depend on how the "
        "process was launched; thread configuration through parameters "
        "(documented knobs carry suppressions)"
    )
    severity = LintSeverity.WARNING
    node_types = (ast.Attribute, ast.Call)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        if isinstance(node, ast.Call):
            qualified = ctx.qualified_name(node.func)
            if qualified in _AMBIENT_CALLS:
                yield self.finding(
                    node,
                    ctx,
                    f"{qualified}() read in library code; pass the value "
                    "in as a parameter instead of reading the ambient "
                    "process environment",
                )
            return
        qualified = ctx.qualified_name(node)
        if qualified in _AMBIENT_ATTRIBUTES:
            yield self.finding(
                node,
                ctx,
                f"{qualified} access in library code; thread configuration "
                "through explicit parameters (suppress with rationale for "
                "documented knobs)",
            )
