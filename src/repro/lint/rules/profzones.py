"""QOS111 — profiler zone names must be literal and well-formed.

Profiler zones are the currency of the perf-regression pipeline: ``bench
compare`` diffs them across commits and flamegraphs group by them, so a
zone name must be greppable (a string literal, not a computed value) and
must follow the same ``<layer>.<component>.<name>`` scheme the metrics
registry enforces at runtime.  A dynamic name — an f-string, a variable —
defeats both: the cross-commit diff silently forks per run, and the one
place a name is defined can no longer be found by searching for it.

The two legitimate dynamic sites (per-event-kind dispatch zones in the
engine, per-predictor query zones in ``prediction.base``) interpolate
closed, lowercase enums and carry explicit ``qoslint: disable=QOS111``
suppressions stating that.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity

__all__ = ["ZONE_NAME_RE", "ProfilerZoneNameRule"]

#: The ``<layer>.<component>.<name>`` grammar — mirrors
#: ``repro.obs.prof.ZONE_NAME_RE`` (the runtime validator); keep in sync.
ZONE_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+){2,}$")


def _zone_name_argument(node: ast.Call) -> Optional[ast.expr]:
    """The expression carrying the zone name, if this call takes one.

    Matches the two profiler entry points: ``<anything>.zone(name)``
    (binding a :class:`~repro.obs.prof.Zone`) and ``profiled(name, ...)``
    (the decorator), however the latter was imported.
    """
    func = node.func
    is_zone_method = isinstance(func, ast.Attribute) and func.attr == "zone"
    is_profiled = (
        isinstance(func, ast.Name) and func.id == "profiled"
    ) or (isinstance(func, ast.Attribute) and func.attr == "profiled")
    if not (is_zone_method or is_profiled) or not node.args:
        # Zero-arg ``.zone()`` is some other API (e.g. tzinfo); the
        # keyword-only forms fail at runtime before lint matters.
        return None
    return node.args[0]


@register
class ProfilerZoneNameRule(Rule):
    code = "QOS111"
    name = "prof-zone-name"
    rationale = (
        "profiler zone names must be string literals following "
        "<layer>.<component>.<name>; computed names break cross-commit "
        "perf diffs and cannot be found by grep"
    )
    severity = LintSeverity.WARNING
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.in_library:
            return
        argument = _zone_name_argument(node)
        if argument is None:
            return
        if isinstance(argument, ast.Constant) and isinstance(
            argument.value, str
        ):
            if not ZONE_NAME_RE.match(argument.value):
                yield self.finding(
                    argument,
                    ctx,
                    f"zone name {argument.value!r} does not follow "
                    "<layer>.<component>.<name> (lowercase dotted, "
                    "at least three segments)",
                )
            return
        # Anchor at the argument, not the call: multi-line calls carry
        # their suppression on the name's line.
        yield self.finding(
            argument,
            ctx,
            "zone name must be a string literal so perf diffs and greps "
            "can find it; if the interpolation is over a closed lowercase "
            "set, suppress with a rationale",
        )
