"""QOS108 — unpicklable callables handed to the parallel executor.

``repro.experiments.parallel`` fans work out over ``ProcessPoolExecutor``;
everything crossing the process boundary is pickled.  Lambdas (and locally
nested functions) are not picklable, so passing one to ``PointSpec`` /
``run_specs`` / ``run_points`` works in-process today and explodes the
first time someone adds ``--jobs 2``.  The rule flags lambdas anywhere in
the argument list of those APIs — including inside list/dict arguments.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity

#: Callable names (bare or attribute) of the multiprocessing fan-out APIs.
PARALLEL_APIS = frozenset({"PointSpec", "run_points", "run_specs"})


def _callee_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class UnpicklableCallableRule(Rule):
    code = "QOS108"
    name = "unpicklable-callable"
    rationale = (
        "arguments to the parallel-executor APIs cross a process boundary "
        "and must pickle; lambdas work sequentially and fail under --jobs N"
    )
    severity = LintSeverity.ERROR
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if _callee_name(node.func) not in PARALLEL_APIS:
            return
        arguments = [a for a in node.args] + [
            keyword.value for keyword in node.keywords
        ]
        for argument in arguments:
            for sub in ast.walk(argument):
                if isinstance(sub, ast.Lambda):
                    yield self.finding(
                        sub,
                        ctx,
                        f"lambda passed to {_callee_name(node.func)}(); it "
                        "cannot be pickled across the worker-process "
                        "boundary — use a module-level function",
                    )
