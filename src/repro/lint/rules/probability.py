"""QOS301–QOS302 — probability-domain and time-unit discipline by flow.

Every promise this system makes is a number in [0, 1] (Eq. 2 scores
against it; ``QoSGuarantee.__post_init__`` raises outside it — at runtime,
mid-simulation, after hours of work).  QOS301 runs an interval analysis
(:mod:`repro.lint.intervals`) over each function and flags expressions
that *provably* can leave the unit interval before reaching a probability
parameter: ``p + q`` where both are probabilities reaches 2, the canonical
add-instead-of-``combine_independent`` bug.

QOS302 polices the two-clock contract declared by
:mod:`repro.sim.units`: a value carrying ``WALL_SECONDS`` taint (host
clock) must never reach a ``SimSeconds``-annotated parameter — the event
loop's timeline, ``Event.time`` — and vice versa.  Both directions are
unit errors a type checker cannot see, because both aliases erase to
``float``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.cfg import Element, element_expressions
from repro.lint.dataflow import (
    SIM_SECONDS,
    WALL_SECONDS,
    _annotation_unit,
    taints_with_label,
)
from repro.lint.engine import (
    FlowRule,
    FunctionAnalysis,
    ModuleContext,
    register,
)
from repro.lint.findings import Finding, LintSeverity
from repro.lint.intervals import (
    PROBABILITY_ANNOTATIONS,
    PROBABILITY_PARAM_NAMES,
    Interval,
)

#: Keyword names checked at every call site: passing one is a declaration
#: that the argument is a probability.
_PROB_KEYWORDS = PROBABILITY_PARAM_NAMES


def _out_of_unit(interval: Interval) -> bool:
    """A *provable* escape from [0, 1]: both bounds known, one outside."""
    return interval.is_bounded and (interval.hi > 1.0 or interval.lo < 0.0)


def _calls_in(element: Element) -> Iterator[ast.Call]:
    for expr in element_expressions(element):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


@register
class ProbabilityDomainRule(FlowRule):
    code = "QOS301"
    name = "probability-domain"
    rationale = (
        "a value provably outside [0, 1] passed as a probability is a "
        "domain error the interval analysis can prove before runtime"
    )
    severity = LintSeverity.ERROR

    def check_function(
        self, analysis: FunctionAnalysis, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        intervals = analysis.intervals
        for element in analysis.cfg.elements():
            env = intervals.before.get(id(element.node))
            if env is None:
                continue
            node = element.node
            for call in _calls_in(element):
                for keyword in call.keywords:
                    if keyword.arg not in _PROB_KEYWORDS:
                        continue
                    value = intervals.interval_of(keyword.value, env)
                    if _out_of_unit(value):
                        yield self.finding(
                            keyword.value,
                            ctx,
                            f"probability argument {keyword.arg}= can reach "
                            f"{value}, outside [0, 1]; combine probabilities "
                            "with combine_independent(...) or clamp "
                            "explicitly",
                        )
            if (
                not element.header
                and isinstance(node, ast.AnnAssign)
                and node.value is not None
                and _annotation_name(node.annotation)
                in PROBABILITY_ANNOTATIONS
            ):
                value = intervals.interval_of(node.value, env)
                if _out_of_unit(value):
                    yield self.finding(
                        node,
                        ctx,
                        f"value annotated Probability can reach {value}, "
                        "outside [0, 1]",
                    )


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return annotation.value
    return None


#: Known unit-annotated API boundaries: method/ctor name → parameter name
#: and position (after ``self``) → expected unit label.
_KNOWN_UNIT_SINKS: Dict[str, Dict[object, str]] = {
    "schedule": {"time": SIM_SECONDS, 0: SIM_SECONDS},
    "schedule_in": {"delay": SIM_SECONDS, 0: SIM_SECONDS},
    "Event": {"time": SIM_SECONDS, 0: SIM_SECONDS},
}

_UNIT_WORDS = {SIM_SECONDS: "simulated-time", WALL_SECONDS: "wall-time"}
_OTHER_UNIT = {SIM_SECONDS: WALL_SECONDS, WALL_SECONDS: SIM_SECONDS}


def _local_unit_signatures(tree: ast.Module) -> Dict[str, Dict[object, str]]:
    """Unit-annotated parameters of functions defined in this module.

    Maps function name → {param name and position: unit label}, position
    counted after a leading ``self``/``cls`` so method calls line up.
    """
    out: Dict[str, Dict[object, str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params: Dict[object, str] = {}
        args = list(node.args.posonlyargs) + list(node.args.args)
        if args and args[0].arg in ("self", "cls"):
            args = args[1:]
        for position, arg in enumerate(args):
            unit = _annotation_unit(arg.annotation)
            if unit is not None:
                params[arg.arg] = unit
                params[position] = unit
        for arg in node.args.kwonlyargs:
            unit = _annotation_unit(arg.annotation)
            if unit is not None:
                params[arg.arg] = unit
        if params:
            out[node.name] = params
    return out


@register
class TimeUnitsRule(FlowRule):
    code = "QOS302"
    name = "time-units"
    rationale = (
        "SimSeconds and WallSeconds both erase to float; only taint "
        "tracking catches a host-clock duration scheduled as sim time"
    )
    severity = LintSeverity.ERROR

    def check_function(
        self, analysis: FunctionAnalysis, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if not ctx.in_library or ctx.tree is None:
            return
        local = ctx.memo(
            "unit-signatures", lambda: _local_unit_signatures(ctx.tree)
        )
        taint = analysis.taint
        for element in analysis.cfg.elements():
            env = taint.before.get(id(element.node))
            if env is None:
                continue
            for call in _calls_in(element):
                signature = self._signature_for(call, local)
                if signature is None:
                    continue
                for expected, argument in self._bound_args(call, signature):
                    wrong = _OTHER_UNIT[expected]
                    hits = taints_with_label(
                        taint.taint_of(argument, env), wrong
                    )
                    if not hits:
                        continue
                    origin = hits[0]
                    yield self.finding(
                        argument,
                        ctx,
                        f"{_UNIT_WORDS[wrong]} value ({origin.origin} at "
                        f"line {origin.line}) passed where "
                        f"{_UNIT_WORDS[expected]} seconds are expected; "
                        "convert explicitly or keep the clocks apart",
                    )

    def _signature_for(
        self, call: ast.Call, local: Dict[str, Dict[object, str]]
    ) -> Optional[Dict[object, str]]:
        func = call.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name is None:
            return None
        if name in _KNOWN_UNIT_SINKS:
            return _KNOWN_UNIT_SINKS[name]
        return local.get(name)

    def _bound_args(
        self, call: ast.Call, signature: Dict[object, str]
    ) -> Iterator[Tuple[str, ast.expr]]:
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            if position in signature:
                yield signature[position], arg
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in signature:
                yield signature[keyword.arg], keyword.value
