"""QOS201–QOS203 — nondeterminism taint reaching simulation state by flow.

The QOS1xx pattern rules catch the *call site* (``time.time()`` in library
code, iterating a set literal).  These rules catch the *journey*: a banned
value laundered through assignments, arithmetic, and containers before it
lands somewhere the simulation can see it.  Sinks are the places a value
becomes part of a trajectory — ``EventLoop.schedule``/``schedule_in``
arguments, ``Event(...)`` construction, ``self.attr = ...`` in a sim-layer
class, and sim-layer ``return`` values.

Each rule reports at the sink and names the origin line, and only fires
when origin and sink are *different* statements — a direct use on one line
is the pattern rules' jurisdiction, and reporting it twice would teach
people to read findings as noise.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.cfg import Element, element_expressions
from repro.lint.dataflow import (
    GLOBAL_RNG,
    Taint,
    TaintSet,
    UNORDERED,
    WALL_CLOCK,
    taints_with_label,
)
from repro.lint.engine import (
    FlowRule,
    FunctionAnalysis,
    ModuleContext,
    register,
)
from repro.lint.findings import Finding, LintSeverity

#: Canonical name of the event constructor (a sink: payloads become state).
_EVENT_CTOR = "repro.sim.events.Event"

#: EventLoop scheduling methods; every argument becomes simulation input.
_SCHEDULE_METHODS = frozenset({"schedule", "schedule_in"})

#: Materializers that freeze an iterable's order into a sequence.
_MATERIALIZERS = frozenset({"list", "tuple"})


def _iter_reachable(
    analysis: FunctionAnalysis,
) -> Iterator[Tuple[Element, dict]]:
    """Elements of the function paired with the taint env before each."""
    taint = analysis.taint
    for element in analysis.cfg.elements():
        env = taint.before.get(id(element.node))
        if env is not None:
            yield element, env


def _calls_in(element: Element) -> Iterator[ast.Call]:
    for expr in element_expressions(element):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def _call_arguments(call: ast.Call) -> Iterator[ast.expr]:
    for arg in call.args:
        yield arg.value if isinstance(arg, ast.Starred) else arg
    for keyword in call.keywords:
        yield keyword.value


def _is_self_attribute(target: ast.expr) -> bool:
    return (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    )


class _TaintSinkRule(FlowRule):
    """Shared sink walk for the sticky-label flow rules (201/202)."""

    #: The taint label this rule polices.
    label: str = ""
    #: Short phrase naming the contamination in messages.
    noun: str = ""

    severity = LintSeverity.ERROR

    def _state_sinks_apply(self, ctx: ModuleContext) -> bool:
        """Whether return/attribute sinks are policed in this module.

        Scheduling sinks are policed across the whole library, but a
        tainted return or attribute is only a defect where the module's
        outputs are part of the reproducibility contract — everywhere
        except the layers exempted for this label (repro.obs measures
        wall time by design; repro.sim.rng wraps the RNG by design).
        """
        raise NotImplementedError

    def check_function(
        self, analysis: FunctionAnalysis, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        taint = analysis.taint
        state_sinks = self._state_sinks_apply(ctx)
        for element, env in _iter_reachable(analysis):
            node = element.node
            for call in _calls_in(element):
                sink = self._call_sink(call, ctx)
                if sink is None:
                    continue
                merged: TaintSet = frozenset()
                for arg in _call_arguments(call):
                    merged |= taint.taint_of(arg, env)
                yield from self._report(merged, call, sink, ctx)
            if element.header or not state_sinks:
                continue
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if _is_self_attribute(target):
                        yield from self._report(
                            taint.taint_of(node.value, env),
                            node,
                            f"instance state self.{target.attr}",
                            ctx,
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_self_attribute(node.target):
                    yield from self._report(
                        taint.taint_of(node.value, env),
                        node,
                        f"instance state self.{node.target.attr}",
                        ctx,
                    )
            elif isinstance(node, ast.Return) and node.value is not None:
                yield from self._report(
                    taint.taint_of(node.value, env),
                    node,
                    "a library return value",
                    ctx,
                )

    def _call_sink(
        self, call: ast.Call, ctx: ModuleContext
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _SCHEDULE_METHODS:
            return f"event-loop {func.attr}()"
        if ctx.qualified_name(func) == _EVENT_CTOR:
            return "Event(...) construction"
        return None

    def _report(
        self,
        taints: TaintSet,
        sink_node: ast.AST,
        sink: str,
        ctx: ModuleContext,
    ) -> Iterator[Finding]:
        sink_line = getattr(sink_node, "lineno", 0)
        hits = [
            t
            for t in taints_with_label(taints, self.label)
            if t.line != sink_line
        ]
        if not hits:
            return
        origin = hits[0]
        yield self.finding(
            sink_node,
            ctx,
            f"{self.noun} value (from {origin.origin} at line "
            f"{origin.line}) flows into {sink}; reproducible library "
            f"outputs must not depend on {self.noun} data",
        )


@register
class WallClockFlowRule(_TaintSinkRule):
    code = "QOS201"
    name = "flow-wall-clock"
    rationale = (
        "a wall-clock read laundered through variables still couples the "
        "trajectory to the host machine; taint is tracked to the sink"
    )
    label = WALL_CLOCK
    noun = "wall-clock-derived"

    def _state_sinks_apply(self, ctx: ModuleContext) -> bool:
        return not ctx.config.is_wallclock_exempt(ctx.module)


@register
class GlobalRngFlowRule(_TaintSinkRule):
    code = "QOS202"
    name = "flow-global-rng"
    rationale = (
        "a draw from the process-global RNG stays nondeterministic however "
        "many assignments it passes through before reaching sim state"
    )
    label = GLOBAL_RNG
    noun = "global-RNG-derived"

    def _state_sinks_apply(self, ctx: ModuleContext) -> bool:
        return ctx.module != ctx.config.rng_module


@register
class UnorderedFlowRule(FlowRule):
    """QOS203 — unordered-container order frozen into sim results by flow.

    QOS103 flags iterating a *syntactic* set; this rule follows the
    variable: ``pending = set(...)`` ... ``for job in pending`` three
    functions of straight-line code later, or ``list(pending)`` freezing
    the accidental order into a sequence.  UNORDERED taint is fragile
    (see :mod:`repro.lint.dataflow`), so surviving to a sink means no
    ``sorted(...)`` intervened.
    """

    code = "QOS203"
    name = "flow-unordered"
    rationale = (
        "iterating or materializing a set-valued variable bakes accidental "
        "hash order into results; only sorted(...) launders it"
    )
    severity = LintSeverity.ERROR

    def check_function(
        self, analysis: FunctionAnalysis, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if not ctx.in_sim_layer:
            return
        taint = analysis.taint
        for element, env in _iter_reachable(analysis):
            node = element.node
            if element.header and isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._report(
                    taint.taint_of(node.iter, env),
                    node.iter,
                    "a for-loop iteration",
                    ctx,
                    same_line_ok=False,
                )
                continue
            if element.header:
                continue
            for call in _calls_in(element):
                func = call.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _MATERIALIZERS
                    and len(call.args) == 1
                    and not isinstance(call.args[0], ast.Starred)
                ):
                    # list(set(...)) on one line is still a bug QOS103
                    # cannot see, so same-line origins count here.
                    yield from self._report(
                        taint.taint_of(call.args[0], env),
                        call,
                        f"{func.id}(...) materialization",
                        ctx,
                        same_line_ok=True,
                    )
            if isinstance(node, ast.Return) and node.value is not None:
                yield from self._report(
                    taint.taint_of(node.value, env),
                    node,
                    "a sim-layer return value",
                    ctx,
                    same_line_ok=False,
                )

    def _report(
        self,
        taints: TaintSet,
        sink_node: ast.AST,
        sink: str,
        ctx: ModuleContext,
        same_line_ok: bool,
    ) -> Iterator[Finding]:
        sink_line = getattr(sink_node, "lineno", 0)
        hits: List[Taint] = [
            t
            for t in taints_with_label(taints, UNORDERED)
            if same_line_ok or t.line != sink_line
        ]
        if not hits:
            return
        origin = hits[0]
        yield self.finding(
            sink_node,
            ctx,
            f"unordered collection ({origin.origin} at line {origin.line}) "
            f"reaches {sink} in a sim layer; wrap it in sorted(...) before "
            "the order can leak into results",
        )
