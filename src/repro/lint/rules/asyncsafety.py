"""QOS401–QOS403 — async-safety for coroutine-based drivers.

The simulator core is synchronous, but experiment drivers and future
streaming-audit frontends run under an event loop of the *host* kind.
Three failure modes recur in such code:

* **QOS401** — a blocking call (``time.sleep``, ``subprocess.run``...)
  inside ``async def`` stalls every coroutine sharing the loop; the bug
  shows up as mysterious latency, never as an error.
* **QOS402** — module-level mutable state mutated from a coroutine is a
  data race the moment two tasks interleave at an ``await``, and a
  replay-determinism hole even when they do not.
* **QOS403** — calling a coroutine function without ``await`` creates a
  coroutine object and silently discards it; the body never runs.
  CPython warns at garbage-collection time, long after the evidence is
  gone.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Set

from repro.lint.cfg import assigned_names, element_expressions
from repro.lint.engine import (
    FlowRule,
    FunctionAnalysis,
    ModuleContext,
    register,
)
from repro.lint.findings import Finding, LintSeverity

#: Canonical dotted names that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "os.system",
        "socket.create_connection",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.run",
        "time.sleep",
        "urllib.request.urlopen",
    }
)

#: Prefixes of request-style libraries that are synchronous by design.
_BLOCKING_PREFIXES = ("requests.",)

#: Constructors whose result is module-level mutable state when bound at
#: module scope.
_MUTABLE_CTORS = frozenset(
    {"Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set"}
)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        return name in _MUTABLE_CTORS
    return False


def _module_mutables(tree: ast.Module) -> Dict[str, int]:
    """Module-level names bound to mutable containers → defining line."""
    out: Dict[str, int] = {}
    for statement in tree.body:
        targets = []
        value = None
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            targets = [statement.target]
            value = statement.value
        if value is None or not _is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = statement.lineno
    return out


def _async_def_names(tree: ast.Module) -> FrozenSet[str]:
    return frozenset(
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    )


def _local_bindings(function: ast.AST) -> Set[str]:
    """Names bound inside the function (params, assignments, loops...)."""
    bound: Set[str] = set()
    args = function.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                # Binding occurrences only: ``x[k] = v`` mutates x, it
                # does not rebind it.
                bound.update(name for name, _ in assigned_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(name for name, _ in assigned_names(node.target))
        elif isinstance(node, ast.Global):
            bound.difference_update(node.names)
    return bound


@register
class BlockingInAsyncRule(FlowRule):
    code = "QOS401"
    name = "async-blocking"
    rationale = (
        "a blocking call inside async def stalls the whole event loop; "
        "use the asyncio equivalent or run_in_executor"
    )
    severity = LintSeverity.ERROR

    def check_function(
        self, analysis: FunctionAnalysis, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if not analysis.is_async:
            return
        for element in analysis.cfg.elements():
            for expr in element_expressions(element):
                for node in ast.walk(expr):
                    if not isinstance(node, ast.Call):
                        continue
                    qualified = ctx.qualified_name(node.func)
                    if qualified is None:
                        continue
                    if qualified in _BLOCKING_CALLS or qualified.startswith(
                        _BLOCKING_PREFIXES
                    ):
                        yield self.finding(
                            node,
                            ctx,
                            f"blocking call {qualified}() inside async def "
                            f"{analysis.function.name}(); it stalls every "
                            "coroutine on the loop (use the asyncio "
                            "equivalent or run_in_executor)",
                        )


@register
class CoroutineMutatesModuleStateRule(FlowRule):
    code = "QOS402"
    name = "async-module-state"
    rationale = (
        "module-level mutable state touched from a coroutine races at "
        "every await and breaks replay determinism"
    )
    severity = LintSeverity.ERROR

    def check_function(
        self, analysis: FunctionAnalysis, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if not analysis.is_async or not ctx.in_library or ctx.tree is None:
            return
        mutables = ctx.memo(
            "module-mutables", lambda: _module_mutables(ctx.tree)
        )
        if not mutables:
            return
        function = analysis.function
        local = _local_bindings(function)
        shared = {
            name: line
            for name, line in mutables.items()
            if name not in local
        }
        if not shared:
            return
        for node in ast.walk(function):
            name = self._mutated_name(node)
            if name is not None and name in shared:
                yield self.finding(
                    node,
                    ctx,
                    f"coroutine {function.name}() mutates module-level "
                    f"{name} (defined at line {shared[name]}); pass state "
                    "explicitly or guard it with a lock",
                )

    @staticmethod
    def _mutated_name(node: ast.AST) -> str:
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Name)
            ):
                return func.value.id
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    return target.value.id
        return ""


@register
class UnawaitedCoroutineRule(FlowRule):
    code = "QOS403"
    name = "unawaited-coroutine"
    rationale = (
        "calling a coroutine function without await builds a coroutine "
        "object and throws it away; the body never runs"
    )
    severity = LintSeverity.ERROR

    def check_function(
        self, analysis: FunctionAnalysis, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if ctx.tree is None:
            return
        names = ctx.memo("async-defs", lambda: _async_def_names(ctx.tree))
        if not names:
            return
        for element in analysis.cfg.elements():
            node = element.node
            if element.header or not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            called = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if called in names:
                yield self.finding(
                    node,
                    ctx,
                    f"coroutine {called}(...) is called but never awaited; "
                    "the call only builds a coroutine object (await it or "
                    "hand it to asyncio.create_task)",
                )
