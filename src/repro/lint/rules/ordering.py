"""QOS103 — set/dict-order dependence in sim layers.

CPython set iteration order depends on insertion history and hash values;
dict-key order encodes insertion order.  Neither is part of any sim-layer
API contract, so code that *iterates* an unordered collection into results
(event scheduling, node selection, metric aggregation) must wrap it in
``sorted(...)``, and sim-layer APIs must not *return* bare sets for callers
to iterate.  The second check is what caught ``Cluster.running_jobs``
returning ``Set[int]`` straight into the EASY backfill release scan.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity

#: Annotation heads that denote an unordered set type.
_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


def _annotation_head(annotation: ast.AST) -> Optional[str]:
    """Base name of an annotation: ``Set[int]`` → ``Set``; ``set`` → ``set``."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):  # typing.Set[...]
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _unordered_iterable(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if iterating it is order-unstable, else None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return ".keys()"
    return None


@register
class UnorderedIterationRule(Rule):
    code = "QOS103"
    name = "unordered-iteration"
    rationale = (
        "set and dict-key iteration order is an accident of insertion "
        "history; sim-layer results must come from sorted(...) sequences"
    )
    severity = LintSeverity.ERROR
    node_types = (
        ast.For,
        ast.comprehension,
        ast.FunctionDef,
        ast.AsyncFunctionDef,
    )

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_sim_layer:
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            head = (
                _annotation_head(node.returns)
                if node.returns is not None
                else None
            )
            if head in _SET_ANNOTATIONS:
                yield self.finding(
                    node,
                    ctx,
                    f"sim-layer function {node.name}() returns an unordered "
                    "set; return a sorted sequence so callers cannot depend "
                    "on set iteration order",
                )
            return
        iterable = node.iter
        description = _unordered_iterable(iterable)
        if description is not None:
            anchor = iterable if hasattr(iterable, "lineno") else node
            yield self.finding(
                anchor,
                ctx,
                f"iteration over {description} in a sim layer; wrap it in "
                "sorted(...) (or iterate the dict itself for insertion "
                "order, stating why that order is deterministic)",
            )
