"""QOS102 — wall-clock reads in simulation library code.

Simulated time is the only clock the library may consult: a ``time.time()``
on a sim path couples results to the host's scheduler and CPU, which is
exactly the nondeterminism the replay tests exist to forbid.  The
instrumentation layer (:mod:`repro.obs`) is exempt — measuring wall time is
its job, and its timers never feed simulation state.  The two legitimate
sites outside it (the engine's obs handler timer, report elapsed-time
footers) carry explicit ``# qoslint: disable=QOS102`` suppressions with
their rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.banned import WALLCLOCK_CALLS
from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity

__all__ = ["WALLCLOCK_CALLS", "WallClockRule"]


@register
class WallClockRule(Rule):
    code = "QOS102"
    name = "wall-clock"
    rationale = (
        "library code must consult simulated time only; wall-clock reads "
        "couple results to the host machine (repro.obs is exempt by design)"
    )
    severity = LintSeverity.ERROR
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.in_library or ctx.config.is_wallclock_exempt(ctx.module):
            return
        qualified = ctx.qualified_name(node.func)
        if qualified in WALLCLOCK_CALLS:
            yield self.finding(
                node,
                ctx,
                f"wall-clock read {qualified}() in library code; use "
                "simulated time (EventLoop.now) or move the measurement "
                "into repro.obs",
            )
