"""Per-function control-flow graphs for the flow-aware lint rules.

The single-pass pattern rules (QOS1xx) see one AST node at a time; the
flow rules (QOS2xx/QOS3xx) need to know what a *variable* holds when it
reaches a sink, which requires statement ordering, branching, and loops.
:func:`build_cfg` lowers one function body (or a whole module body, for
module-level flows in test files) into basic blocks of *elements*:

* simple statements appear as ordinary elements;
* compound statements (``if``/``while``/``for``/``with``/``try``/
  ``match``) appear as **header** elements that stand for evaluating the
  construct's controlling expressions only — their bodies live in other
  blocks, so no expression is ever analysed twice.

The graph is deliberately approximate where exactness buys nothing for a
linter: exceptional edges into ``except`` handlers join the environment
from every block of the ``try`` body (any statement may raise), ``with``
bodies are entered unconditionally, and loop ``else`` clauses hang off
the loop header.  The approximations are all *over*-approximations of
reachability, which keeps the taint and interval analyses sound for the
"can this value reach this sink" questions the rules ask.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

FunctionLike = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]


@dataclass
class Element:
    """One unit of execution inside a basic block.

    Attributes:
        node: The AST statement this element stands for.
        header: True when ``node`` is a compound statement and this
            element represents evaluating only its controlling
            expressions (``if``/``while`` test, ``for`` iterable, ``with``
            context managers, ``match`` subject); the body statements
            live in successor blocks.
    """

    node: ast.stmt
    header: bool = False


@dataclass
class Block:
    """A straight-line run of elements with a single entry point."""

    index: int
    elements: List[Element] = field(default_factory=list)
    successors: List["Block"] = field(default_factory=list)
    predecessors: List["Block"] = field(default_factory=list)

    def link(self, other: "Block") -> None:
        if other not in self.successors:
            self.successors.append(other)
            other.predecessors.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(e.node).__name__ for e in self.elements)
        return f"<Block {self.index} [{kinds}] -> {[b.index for b in self.successors]}>"


@dataclass
class CFG:
    """Control-flow graph of one function-like body.

    Attributes:
        function: The lowered ``FunctionDef``/``AsyncFunctionDef``, or an
            ``ast.Module`` for module-level flows.
        entry: The unique entry block (may be empty).
        exit: The unique exit block (always empty); ``return``/``raise``
            and falling off the end all link here.
        blocks: Every block, in creation order.
    """

    function: FunctionLike
    entry: Block
    exit: Block
    blocks: List[Block]

    def elements(self) -> Iterator[Element]:
        """Every element once, in block creation order."""
        for block in self.blocks:
            yield from block.elements

    def reachable_blocks(self) -> List[Block]:
        """Blocks reachable from the entry, in a reverse-postorder-ish
        (creation) order suitable for forward fixpoints."""
        seen = {self.entry.index}
        stack = [self.entry]
        while stack:
            block = stack.pop()
            for succ in block.successors:
                if succ.index not in seen:
                    seen.add(succ.index)
                    stack.append(succ)
        return [b for b in self.blocks if b.index in seen]


class _LoopFrame:
    """Targets for break/continue inside the innermost loop."""

    def __init__(self, header: Block, after: Block) -> None:
        self.header = header
        self.after = after


class _Builder:
    def __init__(self, function: FunctionLike) -> None:
        self.function = function
        self.blocks: List[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()
        self.loops: List[_LoopFrame] = []

    def new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def build(self) -> CFG:
        body = list(self.function.body)
        tail = self.build_body(body, self.entry)
        if tail is not None:
            tail.link(self.exit)
        return CFG(
            function=self.function,
            entry=self.entry,
            exit=self.exit,
            blocks=self.blocks,
        )

    def build_body(
        self, statements: Sequence[ast.stmt], current: Optional[Block]
    ) -> Optional[Block]:
        """Lower ``statements`` starting in ``current``.

        Returns the block control falls out of, or None when every path
        diverges (return/raise/break/continue).  Statements after a
        diverging one are lowered into a fresh unreachable block so the
        corpus invariant "every statement appears in exactly one block"
        holds even for dead code.
        """
        for statement in statements:
            if current is None:
                current = self.new_block()  # unreachable continuation
            current = self.build_statement(statement, current)
        return current

    def build_statement(
        self, statement: ast.stmt, current: Block
    ) -> Optional[Block]:
        if isinstance(statement, (ast.If,)):
            return self._build_if(statement, current)
        if isinstance(statement, (ast.While,)):
            return self._build_while(statement, current)
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            return self._build_for(statement, current)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            return self._build_with(statement, current)
        if isinstance(statement, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(statement, ast.TryStar)
        ):
            return self._build_try(statement, current)
        if isinstance(statement, ast.Match):
            return self._build_match(statement, current)
        if isinstance(statement, (ast.Return, ast.Raise)):
            current.elements.append(Element(statement))
            current.link(self.exit)
            return None
        if isinstance(statement, ast.Break):
            current.elements.append(Element(statement))
            if self.loops:
                current.link(self.loops[-1].after)
            else:  # malformed code; treat as function exit
                current.link(self.exit)
            return None
        if isinstance(statement, ast.Continue):
            current.elements.append(Element(statement))
            if self.loops:
                current.link(self.loops[-1].header)
            else:
                current.link(self.exit)
            return None
        # Simple statements — including nested function/class definitions,
        # whose bodies are separate CFGs and not descended into here.
        current.elements.append(Element(statement))
        return current

    def _build_if(self, statement: ast.If, current: Block) -> Optional[Block]:
        current.elements.append(Element(statement, header=True))
        after = self.new_block()
        then_start = self.new_block()
        current.link(then_start)
        then_end = self.build_body(statement.body, then_start)
        if then_end is not None:
            then_end.link(after)
        if statement.orelse:
            else_start = self.new_block()
            current.link(else_start)
            else_end = self.build_body(statement.orelse, else_start)
            if else_end is not None:
                else_end.link(after)
        else:
            current.link(after)
        return after if after.predecessors else None

    def _build_while(
        self, statement: ast.While, current: Block
    ) -> Optional[Block]:
        header = self.new_block()
        current.link(header)
        header.elements.append(Element(statement, header=True))
        after = self.new_block()
        body_start = self.new_block()
        header.link(body_start)
        self.loops.append(_LoopFrame(header, after))
        try:
            body_end = self.build_body(statement.body, body_start)
        finally:
            self.loops.pop()
        if body_end is not None:
            body_end.link(header)
        if statement.orelse:
            else_start = self.new_block()
            header.link(else_start)
            else_end = self.build_body(statement.orelse, else_start)
            if else_end is not None:
                else_end.link(after)
        else:
            header.link(after)
        return after if after.predecessors else None

    def _build_for(
        self, statement: Union[ast.For, ast.AsyncFor], current: Block
    ) -> Optional[Block]:
        header = self.new_block()
        current.link(header)
        header.elements.append(Element(statement, header=True))
        after = self.new_block()
        body_start = self.new_block()
        header.link(body_start)
        self.loops.append(_LoopFrame(header, after))
        try:
            body_end = self.build_body(statement.body, body_start)
        finally:
            self.loops.pop()
        if body_end is not None:
            body_end.link(header)
        if statement.orelse:
            else_start = self.new_block()
            header.link(else_start)
            else_end = self.build_body(statement.orelse, else_start)
            if else_end is not None:
                else_end.link(after)
        else:
            header.link(after)
        return after if after.predecessors else None

    def _build_with(
        self, statement: Union[ast.With, ast.AsyncWith], current: Block
    ) -> Optional[Block]:
        current.elements.append(Element(statement, header=True))
        body_start = self.new_block()
        current.link(body_start)
        return self.build_body(statement.body, body_start)

    def _build_try(self, statement: ast.stmt, current: Block) -> Optional[Block]:
        # statement is ast.Try or ast.TryStar; both share the field names.
        current.elements.append(Element(statement, header=True))
        after = self.new_block()
        body_start = self.new_block()
        current.link(body_start)
        first_body_index = body_start.index
        body_end = self.build_body(statement.body, body_start)  # type: ignore[attr-defined]
        body_region = [
            b for b in self.blocks[first_body_index:] if b.index >= first_body_index
        ]

        # Any statement in the try body may raise: every block lowered for
        # the body (plus the block holding the header) can jump into every
        # handler.  This over-approximates reachability, which is the safe
        # direction for taint questions.
        handler_ends: List[Optional[Block]] = []
        for handler in statement.handlers:  # type: ignore[attr-defined]
            handler_start = self.new_block()
            current.link(handler_start)
            for block in body_region:
                block.link(handler_start)
            handler_ends.append(self.build_body(handler.body, handler_start))

        if statement.orelse:  # type: ignore[attr-defined]
            if body_end is not None:
                else_start = self.new_block()
                body_end.link(else_start)
                body_end = self.build_body(statement.orelse, else_start)  # type: ignore[attr-defined]

        exits = [body_end] + handler_ends
        live_exits = [b for b in exits if b is not None]
        if statement.finalbody:  # type: ignore[attr-defined]
            final_start = self.new_block()
            for block in live_exits:
                block.link(final_start)
            if not live_exits:
                # All paths diverge, but the finally body still runs on the
                # way out; keep it reachable from the try region.
                current.link(final_start)
            final_end = self.build_body(statement.finalbody, final_start)  # type: ignore[attr-defined]
            if final_end is not None and live_exits:
                final_end.link(after)
        else:
            for block in live_exits:
                block.link(after)
        return after if after.predecessors else None

    def _build_match(
        self, statement: ast.Match, current: Block
    ) -> Optional[Block]:
        current.elements.append(Element(statement, header=True))
        after = self.new_block()
        for case in statement.cases:
            case_start = self.new_block()
            current.link(case_start)
            case_end = self.build_body(case.body, case_start)
            if case_end is not None:
                case_end.link(after)
        current.link(after)  # no case may match
        return after if after.predecessors else None


def build_cfg(function: FunctionLike) -> CFG:
    """Lower one function (or module) body into a CFG."""
    return _Builder(function).build()


def header_expressions(element: Element) -> List[ast.expr]:
    """The expressions evaluated *at* a header element.

    For a non-header element the caller analyses the whole statement; for
    headers only the controlling expressions execute at this point — the
    bodies belong to successor blocks.
    """
    node = element.node
    if isinstance(node, (ast.If, ast.While)):
        return [node.test]
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter]
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in node.items]
    if isinstance(node, ast.Match):
        return [node.subject]
    if isinstance(node, ast.Try) or (
        hasattr(ast, "TryStar") and isinstance(node, ast.TryStar)
    ):
        return []
    return []


def element_expressions(element: Element) -> List[ast.expr]:
    """Expressions evaluated by ``element`` (headers: controls only).

    Nested function/class definitions contribute their decorators and
    argument defaults (evaluated at definition time) but not their bodies.
    """
    node = element.node
    if element.header:
        return header_expressions(element)
    if isinstance(node, ast.Expr):
        return [node.value]
    if isinstance(node, ast.Assign):
        return [node.value] + list(node.targets)
    if isinstance(node, ast.AnnAssign):
        return [node.value, node.target] if node.value is not None else []
    if isinstance(node, ast.AugAssign):
        return [node.value, node.target]
    if isinstance(node, ast.Return):
        return [node.value] if node.value is not None else []
    if isinstance(node, ast.Raise):
        out = []
        if node.exc is not None:
            out.append(node.exc)
        if node.cause is not None:
            out.append(node.cause)
        return out
    if isinstance(node, ast.Assert):
        out = [node.test]
        if node.msg is not None:
            out.append(node.msg)
        return out
    if isinstance(node, ast.Delete):
        return list(node.targets)
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        out = list(node.decorator_list)
        out.extend(d for d in node.args.defaults)
        out.extend(d for d in node.args.kw_defaults if d is not None)
        return out
    if isinstance(node, ast.ClassDef):
        return list(node.decorator_list) + list(node.bases) + [
            kw.value for kw in node.keywords
        ]
    return []


def assigned_names(target: ast.expr) -> List[Tuple[str, ast.expr]]:
    """Flatten an assignment target into ``(name, target_node)`` pairs.

    Attribute/subscript targets yield nothing — they mutate objects, not
    local bindings — and starred/nested tuples are recursed into.
    """
    if isinstance(target, ast.Name):
        return [(target.id, target)]
    if isinstance(target, ast.Starred):
        return assigned_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[Tuple[str, ast.expr]] = []
        for element in target.elts:
            out.extend(assigned_names(element))
        return out
    return []
