"""The lint engine: rule registry, AST dispatch, and file walking.

One :func:`lint_source` call makes a single pass over the module AST.
Rules declare the node types they care about (:attr:`Rule.node_types`) and
the engine dispatches each visited node to every interested rule, tracking
the lexical scope stack so rules can ask "is this module level?" without
re-walking.  Import aliases are resolved up front so rules match *canonical*
dotted names (``np.random.seed`` and ``from numpy import random`` both
resolve to ``numpy.random.seed``).

After the pattern pass, :class:`FlowRule` subclasses run once per function
scope over a shared :class:`FunctionAnalysis` bundle — the CFG, taint, and
interval analyses are built lazily and at most once per function, however
many flow rules consult them.

Infrastructure codes (not suppressible rules):

* ``QOS000`` — the file does not parse; nothing else can be checked.
* ``QOS001`` — a suppression comment names a code no rule owns, so it
  silences nothing while looking like it does.
* ``QOS002`` — a suppression names a code that was checked on this run but
  silenced no finding; the excuse has outlived the offence.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Type,
    TypeVar,
)

from repro.lint.config import LintConfig, module_name_for
from repro.lint.findings import Finding, LintSeverity
from repro.lint.suppress import SuppressionIndex

#: Code attached to files that fail to parse.
SYNTAX_ERROR_CODE = "QOS000"

#: Code attached to suppressions naming unknown rule codes.
UNKNOWN_SUPPRESSION_CODE = "QOS001"

#: Code attached to suppressions that silenced nothing on a run where the
#: named rule actually executed.
UNUSED_SUPPRESSION_CODE = "QOS002"

_T = TypeVar("_T")


@dataclass
class ModuleContext:
    """Everything a rule may ask about the module being linted.

    Attributes:
        path: File path as given to the linter.
        module: Canonical dotted name (``repro.sim.engine``) or ``""`` for
            files outside the ``repro`` package (tests, benchmarks).
        config: The active :class:`LintConfig`.
        aliases: Local name → canonical dotted module/object, built from
            the file's import statements.
        scope_stack: Enclosing ``FunctionDef``/``ClassDef`` nodes, outermost
            first; empty at module level.  Maintained by the engine during
            traversal.
        tree: The parsed module, for rules that need a whole-module view
            (flow rules, module pre-passes).  None only in hand-built
            contexts.
    """

    path: str
    module: str
    config: LintConfig
    aliases: Dict[str, str] = field(default_factory=dict)
    scope_stack: List[ast.AST] = field(default_factory=list)
    tree: Optional[ast.Module] = None
    _memo: Dict[str, object] = field(default_factory=dict, repr=False)

    def memo(self, key: str, compute: Callable[[], _T]) -> _T:
        """Cache a module-level pre-pass under ``key``.

        Flow rules share one context per file; pre-passes (async-def name
        collection, module-level mutable bindings, ...) run once however
        many rules ask for them.
        """
        if key not in self._memo:
            self._memo[key] = compute()
        return self._memo[key]  # type: ignore[return-value]

    @property
    def at_module_level(self) -> bool:
        """True when the current node is directly in module scope (possibly
        nested in module-level ``if``/``try`` blocks, which still execute at
        import time)."""
        return not self.scope_stack

    @property
    def in_library(self) -> bool:
        return self.config.is_library(self.module)

    @property
    def in_sim_layer(self) -> bool:
        return self.config.is_sim_layer(self.module)

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name for a ``Name``/``Attribute`` chain.

        Returns None for anything that is not a plain dotted chain rooted
        in a resolvable name (calls, subscripts, literals...).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`rationale`,
    :attr:`severity`, and :attr:`node_types`, then implement :meth:`visit`
    yielding findings for one node.  Rules must be stateless across files —
    one instance checks every file in a run.
    """

    code: str = ""
    name: str = ""
    #: One-sentence justification, surfaced in ``--explain``-style docs
    #: (DESIGN.md) and kept next to the implementation so they cannot drift.
    rationale: str = ""
    severity: LintSeverity = LintSeverity.ERROR
    node_types: Tuple[Type[ast.AST], ...] = ()

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, node: ast.AST, ctx: ModuleContext, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``'s first line."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=self.severity,
        )


class FunctionAnalysis:
    """Lazily computed flow analyses for one function scope.

    One instance exists per function (or per module body, for module-level
    flows) per lint pass; the CFG and each abstract interpretation are
    built on first access and shared by every flow rule.  Laziness matters:
    a run with only taint rules selected never pays for interval fixpoints.
    """

    def __init__(self, function: ast.AST, ctx: ModuleContext) -> None:
        self.function = function
        self.ctx = ctx
        self._cfg: Optional[object] = None
        self._taint: Optional[object] = None
        self._intervals: Optional[object] = None

    @property
    def is_module(self) -> bool:
        return isinstance(self.function, ast.Module)

    @property
    def is_async(self) -> bool:
        return isinstance(self.function, ast.AsyncFunctionDef)

    @property
    def cfg(self):  # -> repro.lint.cfg.CFG
        if self._cfg is None:
            from repro.lint.cfg import build_cfg

            self._cfg = build_cfg(self.function)
        return self._cfg

    @property
    def taint(self):  # -> repro.lint.dataflow.TaintAnalysis
        if self._taint is None:
            from repro.lint.dataflow import TaintAnalysis

            self._taint = TaintAnalysis(self.cfg, self.ctx)
        return self._taint

    @property
    def intervals(self):  # -> repro.lint.intervals.IntervalAnalysis
        if self._intervals is None:
            from repro.lint.intervals import IntervalAnalysis

            self._intervals = IntervalAnalysis(self.cfg, self.ctx)
        return self._intervals


class FlowRule(Rule):
    """Base class for rules driven by per-function flow analysis.

    Flow rules are not dispatched per node; after the pattern pass the
    engine calls :meth:`check_module` once and :meth:`check_function` for
    every function scope (including the module body, whose "function" is
    the :class:`ast.Module` itself — module-level flows are real flows).
    """

    node_types: Tuple[Type[ast.AST], ...] = ()

    def check_module(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> Iterator[Finding]:
        return iter(())

    def check_function(
        self, analysis: FunctionAnalysis, ctx: ModuleContext
    ) -> Iterator[Finding]:
        return iter(())


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = rule_class.code
    if not code:
        raise ValueError(f"{rule_class.__name__} has no code")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_class:
        raise ValueError(
            f"rule code {code} registered twice "
            f"({existing.__name__} and {rule_class.__name__})"
        )
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """One instance of every registered rule, sorted by code."""
    # Importing the rules package populates the registry on first use.
    from repro.lint import rules  # noqa: F401

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def known_codes() -> FrozenSet[str]:
    """All codes a suppression may legitimately name."""
    from repro.lint import rules  # noqa: F401

    return frozenset(_REGISTRY) | {
        SYNTAX_ERROR_CODE,
        UNKNOWN_SUPPRESSION_CODE,
        UNUSED_SUPPRESSION_CODE,
    }


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted origins from import statements."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import numpy.random`` binds the *top* package.
                    top = alias.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never reach the banned names
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


class _Dispatcher:
    """Single-pass traversal dispatching nodes to interested rules, then a
    flow pass handing each function scope to every :class:`FlowRule`."""

    def __init__(self, rules: List[Rule], ctx: ModuleContext) -> None:
        self._ctx = ctx
        self._interest: Dict[Type[ast.AST], List[Rule]] = {}
        self._flow_rules: List[FlowRule] = [
            rule for rule in rules if isinstance(rule, FlowRule)
        ]
        for rule in rules:
            for node_type in rule.node_types:
                self._interest.setdefault(node_type, []).append(rule)
        self.findings: List[Finding] = []

    def traverse(self, node: ast.AST) -> None:
        for rule in self._interest.get(type(node), ()):
            self.findings.extend(rule.visit(node, self._ctx))
        opens_scope = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        )
        if opens_scope:
            self._ctx.scope_stack.append(node)
        try:
            for child in ast.iter_child_nodes(node):
                self.traverse(child)
        finally:
            if opens_scope:
                self._ctx.scope_stack.pop()

    def run_flow_rules(self, tree: ast.Module) -> None:
        if not self._flow_rules:
            return
        for rule in self._flow_rules:
            self.findings.extend(rule.check_module(tree, self._ctx))
        scopes: List[ast.AST] = [tree]
        scopes.extend(
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            analysis = FunctionAnalysis(scope, self._ctx)
            for rule in self._flow_rules:
                self.findings.extend(rule.check_function(analysis, self._ctx))


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    rules: Optional[List[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns sorted, filtered findings."""
    config = config if config is not None else LintConfig()
    rules = rules if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = (getattr(exc, "offset", None) or 1) - 1
        return [
            Finding(
                path=path,
                line=line,
                col=max(col, 0),
                code=SYNTAX_ERROR_CODE,
                message=f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}",
                severity=LintSeverity.ERROR,
            )
        ]

    ctx = ModuleContext(
        path=path,
        module=module_name_for(path),
        config=config,
        aliases=_collect_aliases(tree),
        tree=tree,
    )
    dispatcher = _Dispatcher(rules, ctx)
    dispatcher.traverse(tree)
    dispatcher.run_flow_rules(tree)

    suppressions = SuppressionIndex.scan(source)
    used: Set[Tuple[int, str]] = {
        (finding.line, finding.code)
        for finding in dispatcher.findings
        if suppressions.is_suppressed(finding.line, finding.code)
    }
    findings = [
        finding
        for finding in dispatcher.findings
        if config.code_enabled(finding.code)
        and not suppressions.is_suppressed(finding.line, finding.code)
    ]
    if config.code_enabled(UNKNOWN_SUPPRESSION_CODE):
        for line, code in suppressions.unknown_codes(known_codes()):
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=0,
                    code=UNKNOWN_SUPPRESSION_CODE,
                    message=(
                        f"suppression names unknown rule code {code!r}; "
                        "it silences nothing (typo?)"
                    ),
                    severity=LintSeverity.ERROR,
                )
            )
    if config.code_enabled(UNUSED_SUPPRESSION_CODE):
        # Only codes a rule actually evaluated on this run count: with
        # ``--select QOS101`` a dormant ``disable=QOS104`` is not evidence
        # of staleness, and arch codes (checked in a separate graph pass)
        # are never judged here.
        checked = {
            rule.code
            for rule in rules
            if (rule.node_types or isinstance(rule, FlowRule))
            and config.code_enabled(rule.code)
        }
        for suppression in suppressions.suppressions:
            for code in suppression.codes:
                if code not in checked:
                    continue
                if (suppression.line, code) in used:
                    continue
                findings.append(
                    Finding(
                        path=path,
                        line=suppression.line,
                        col=0,
                        code=UNUSED_SUPPRESSION_CODE,
                        message=(
                            f"suppression of {code} matched no finding; "
                            "remove the stale disable comment"
                        ),
                        severity=LintSeverity.ERROR,
                    )
                )
    return sorted(findings)


def iter_python_files(paths: List[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order.

    Directories are walked recursively; caches, VCS internals, and build
    output are skipped.  Raises FileNotFoundError for a missing path.
    """
    skip_dirs = {"__pycache__", ".git", ".hypothesis", "build", "dist"}
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in skip_dirs and not d.endswith(".egg-info")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(
    paths: List[str],
    config: Optional[LintConfig] = None,
    arch: bool = False,
) -> Tuple[List[Finding], int]:
    """Lint every Python file under ``paths``.

    With ``arch=True`` the per-file pass is followed by the whole-program
    architecture pass (QOS501 layering, QOS502 cycles) over every scanned
    ``repro`` module; arch findings honour the same ``--select``/
    ``--ignore`` selection and per-line suppression comments.

    Returns:
        ``(findings, files_scanned)`` with findings sorted by location.
    """
    config = config if config is not None else LintConfig()
    rules = all_rules()
    findings: List[Finding] = []
    scanned = 0
    modules: Dict[str, Tuple[str, ast.Module]] = {}
    suppressions_by_path: Dict[str, SuppressionIndex] = {}
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(source, filename, config, rules))
        scanned += 1
        if not arch:
            continue
        module = module_name_for(filename)
        if not module:
            continue
        try:
            tree = ast.parse(source, filename=filename)
        except (SyntaxError, ValueError):
            continue  # already reported as QOS000 by lint_source
        modules[module] = (filename, tree)
        suppressions_by_path[filename] = SuppressionIndex.scan(source)
    if arch:
        from repro.lint.arch import check_architecture

        for finding in check_architecture(modules):
            if not config.code_enabled(finding.code):
                continue
            index = suppressions_by_path.get(finding.path)
            if index is not None and index.is_suppressed(
                finding.line, finding.code
            ):
                continue
            findings.append(finding)
    return sorted(findings), scanned
