"""QOS5xx — architecture-layer enforcement over the whole import graph.

The per-file rules see one module at a time; these checks see the program.
``probqos lint --arch`` builds the top-level import graph across every
scanned ``repro`` module and enforces two global invariants:

* **QOS501 — layering.**  The library is a stack of layers (see
  :data:`LAYERS`); a module may import from its own layer or any layer
  below it, never from above.  The bands encode who is allowed to know
  about whom: pure numerics at the bottom, instrumentation above it, then
  the deterministic simulation substrate, the input models, the predictors,
  and so on up to the CLI, which may see everything.
* **QOS502 — cycles.**  No import cycles at module granularity, ever.
  Cycles make import order load-bearing and freeze the layering in place;
  Tarjan's SCC algorithm finds every one in linear time.

Only *top-level* imports count.  A deferred ``import`` inside a function is
an explicit, reviewable exception (the engine/rules layers use exactly that
to break a would-be cycle), and ``if TYPE_CHECKING:`` blocks never execute,
so neither constrains the runtime import graph.

The rule classes are registered like every other rule so their codes are
known to ``--select``/``--ignore`` and to suppression comments, but they
declare no node interest: the graph pass in :func:`check_architecture` is
driven from :func:`repro.lint.engine.lint_paths`, not the AST dispatcher.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding, LintSeverity

#: The layer stack, bottom (rank 0) first.  Each entry is
#: ``(layer name, dotted module prefixes)``; a module belongs to the entry
#: with the longest matching prefix.  Two packages share a band when their
#: modules legitimately interleave (``core.system`` drives ``scheduling``
#: while ``scheduling.fcfs`` runs ``core.negotiation``; the workload and
#: failure generators consume each other's models) — within a band only the
#: cycle check (QOS502) constrains imports.
LAYERS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("analysis", ("repro.analysis",)),
    ("obs", ("repro.obs",)),
    ("sim", ("repro.sim",)),
    ("inputs", ("repro.workload", "repro.failures")),
    ("cluster+prediction", ("repro.cluster", "repro.prediction")),
    ("checkpointing", ("repro.checkpointing",)),
    ("core+scheduling", ("repro.core", "repro.scheduling")),
    ("experiments", ("repro.experiments", "repro.lint")),
    ("cli", ("repro.cli", "repro")),
)


def layer_of(module: str) -> Optional[Tuple[int, str]]:
    """``(rank, layer name)`` for a module, or None for unmapped modules.

    Longest-prefix match, so ``repro.cli`` wins over the bare ``repro``
    root entry.  Unmapped modules (a future package not yet placed in
    :data:`LAYERS`) are skipped rather than guessed at — adding the package
    to the map is part of adding the package.
    """
    best: Optional[Tuple[int, str]] = None
    best_len = -1
    for rank, (name, prefixes) in enumerate(LAYERS):
        for prefix in prefixes:
            if module == prefix or module.startswith(prefix + "."):
                if len(prefix) > best_len:
                    best = (rank, name)
                    best_len = len(prefix)
    return best


@dataclass(frozen=True)
class ImportEdge:
    """One top-level import between two scanned ``repro`` modules."""

    importer: str
    imported: str
    path: str
    line: int
    col: int


def _is_type_checking_test(test: ast.expr) -> bool:
    """Match ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` guards."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module statements that execute at import time.

    Descends into module-level ``if``/``try`` bodies (minus
    ``TYPE_CHECKING`` guards and their ``else`` never matters for imports
    we'd miss) but never into function or class bodies.
    """
    pending: List[ast.stmt] = list(tree.body)
    while pending:
        stmt = pending.pop(0)
        if isinstance(stmt, ast.If):
            if _is_type_checking_test(stmt.test):
                pending.extend(stmt.orelse)
                continue
            pending.extend(stmt.body)
            pending.extend(stmt.orelse)
            continue
        if isinstance(stmt, ast.Try):
            pending.extend(stmt.body)
            for handler in stmt.handlers:
                pending.extend(handler.body)
            pending.extend(stmt.orelse)
            pending.extend(stmt.finalbody)
            continue
        yield stmt


def collect_import_edges(
    tree: ast.Module,
    module: str,
    path: str,
    known_modules: Sequence[str],
) -> List[ImportEdge]:
    """Top-level ``repro``-internal import edges out of one module.

    ``from repro.core import metrics`` resolves to ``repro.core.metrics``
    when that is itself a scanned module (importing a symbol from a package
    ``__init__`` otherwise resolves to the package).  Self-imports are
    dropped — a package re-exporting its own submodule is not an edge the
    layering cares about.
    """
    known = set(known_modules)
    edges: List[ImportEdge] = []

    def add(target: str, node: ast.stmt) -> None:
        if target != module:
            edges.append(
                ImportEdge(
                    importer=module,
                    imported=target,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )

    for stmt in _top_level_statements(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    add(alias.name, stmt)
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module
            if stmt.level or base is None:
                continue  # the library uses absolute imports throughout
            if base != "repro" and not base.startswith("repro."):
                continue
            for alias in stmt.names:
                candidate = f"{base}.{alias.name}"
                add(candidate if candidate in known else base, stmt)
    return edges


def _layering_findings(edges: Sequence[ImportEdge]) -> List[Finding]:
    findings: List[Finding] = []
    for edge in edges:
        importer = layer_of(edge.importer)
        imported = layer_of(edge.imported)
        if importer is None or imported is None:
            continue
        if imported[0] <= importer[0]:
            continue
        findings.append(
            Finding(
                path=edge.path,
                line=edge.line,
                col=edge.col,
                code=LayeringRule.code,
                message=(
                    f"layer '{importer[1]}' module {edge.importer} imports "
                    f"{edge.imported} from higher layer '{imported[1]}'; "
                    "dependencies must point down the stack "
                    "(see LAYERS in repro.lint.arch)"
                ),
                severity=LintSeverity.ERROR,
            )
        )
    return findings


def _strongly_connected(
    edges: Sequence[ImportEdge],
) -> List[List[str]]:
    """Tarjan's algorithm, iterative; returns SCCs with more than one node.

    Only edges between scanned modules participate (an import of a module
    outside the scanned set cannot close a cycle we can report on).
    """
    graph: Dict[str, List[str]] = {}
    for edge in edges:
        graph.setdefault(edge.importer, []).append(edge.imported)
        graph.setdefault(edge.imported, [])

    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    counter = 0
    sccs: List[List[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        # Each frame is (node, iterator position into its successors).
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, pos = work.pop()
            if pos == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            successors = graph[node]
            advanced = False
            for i in range(pos, len(successors)):
                succ = successors[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack.get(succ):
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _cycle_findings(edges: Sequence[ImportEdge]) -> List[Finding]:
    findings: List[Finding] = []
    by_importer: Dict[str, List[ImportEdge]] = {}
    for edge in edges:
        by_importer.setdefault(edge.importer, []).append(edge)
    for component in _strongly_connected(edges):
        members = set(component)
        cycle = " <-> ".join(component)
        # One finding per in-cycle edge: each import line is independently
        # actionable (and independently suppressable).
        for member in component:
            for edge in by_importer.get(member, ()):
                if edge.imported in members:
                    findings.append(
                        Finding(
                            path=edge.path,
                            line=edge.line,
                            col=edge.col,
                            code=CycleRule.code,
                            message=(
                                f"import cycle among {{{cycle}}}: "
                                f"{edge.importer} imports {edge.imported}; "
                                "break the cycle with a deferred "
                                "(function-scoped) import or by moving the "
                                "shared piece down a layer"
                            ),
                            severity=LintSeverity.ERROR,
                        )
                    )
    return findings


def check_architecture(
    modules: Dict[str, Tuple[str, ast.Module]],
) -> List[Finding]:
    """Run both graph checks over ``{module: (path, tree)}``; sorted."""
    edges: List[ImportEdge] = []
    known = list(modules)
    for module, (path, tree) in sorted(modules.items()):
        edges.extend(collect_import_edges(tree, module, path, known))
    return sorted(_layering_findings(edges) + _cycle_findings(edges))


@register
class LayeringRule(Rule):
    """QOS501 — marker class carrying the code, docs, and severity.

    Never dispatched per node; :func:`check_architecture` emits the
    findings.  Registering it keeps ``--select QOS501`` and suppression
    comments honest.
    """

    code = "QOS501"
    name = "arch-layering"
    rationale = (
        "an upward import makes a lower layer depend on policy above it, "
        "and the next refactor either breaks or ossifies around it"
    )
    severity = LintSeverity.ERROR
    node_types: Tuple = ()

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())


@register
class CycleRule(Rule):
    """QOS502 — marker class for the import-cycle check."""

    code = "QOS502"
    name = "arch-cycle"
    rationale = (
        "an import cycle makes module initialisation order load-bearing; "
        "whether it works depends on who gets imported first"
    )
    severity = LintSeverity.ERROR
    node_types: Tuple = ()

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())
