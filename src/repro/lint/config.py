"""Per-path lint configuration: layers, allowlists, rule selection.

The rules are *repo-specific*: what counts as a violation depends on where
the code lives.  A wall-clock read inside :mod:`repro.obs` is the whole
point of that layer; the same call inside :mod:`repro.sim` silently breaks
replay determinism.  :class:`LintConfig` encodes that map once so every
rule asks the same questions (:meth:`is_sim_layer`, :meth:`is_library`)
instead of re-deriving path semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

#: Packages whose modules are "sim layers": code that runs inside (or
#: feeds) the deterministic simulation and therefore must be bit-stable
#: across replays, worker counts, and interpreter restarts.
SIM_LAYER_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.cluster",
    "repro.scheduling",
    "repro.checkpointing",
    "repro.failures",
    "repro.core",
)

#: The one module allowed to touch RNG machinery directly: every stream in
#: the library is derived here from explicit seeds (QOS101).
RNG_MODULE = "repro.sim.rng"

#: Packages exempt from the wall-clock rule (QOS102): the instrumentation
#: layer measures wall time by design, and its timers never feed sim state.
WALLCLOCK_EXEMPT_PACKAGES: Tuple[str, ...] = ("repro.obs",)


def module_name_for(path: str) -> str:
    """Dotted module name for a file inside the ``repro`` package, else ``""``.

    ``src/repro/sim/engine.py`` → ``repro.sim.engine``;
    ``tests/sim/test_engine.py`` → ``""`` (not library code).
    """
    parts = path.replace("\\", "/").split("/")
    try:
        start = parts.index("repro")
    except ValueError:
        return ""
    dotted = parts[start:]
    if not dotted[-1].endswith(".py"):
        return ""
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _in_packages(module: str, packages: Tuple[str, ...]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


@dataclass(frozen=True)
class LintConfig:
    """Immutable lint run configuration.

    Attributes:
        select: If set, only these codes are active (``--select``).
        ignore: Codes disabled outright (``--ignore``).
        sim_layer_packages: Dotted prefixes classified as sim layers.
        rng_module: The module exempt from the global-RNG rule.
        wallclock_exempt_packages: Packages exempt from the wall-clock rule.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    sim_layer_packages: Tuple[str, ...] = SIM_LAYER_PACKAGES
    rng_module: str = RNG_MODULE
    wallclock_exempt_packages: Tuple[str, ...] = field(
        default=WALLCLOCK_EXEMPT_PACKAGES
    )

    def code_enabled(self, code: str) -> bool:
        """Whether findings with ``code`` survive ``--select``/``--ignore``."""
        if code in self.ignore:
            return False
        if self.select is not None:
            return code in self.select
        return True

    def is_library(self, module: str) -> bool:
        """True for modules shipped inside the ``repro`` package."""
        return module.startswith("repro.") or module == "repro"

    def is_sim_layer(self, module: str) -> bool:
        """True for modules under the deterministic sim-layer packages."""
        return _in_packages(module, self.sim_layer_packages)

    def is_wallclock_exempt(self, module: str) -> bool:
        return _in_packages(module, self.wallclock_exempt_packages)
