"""Forward dataflow over the lint CFG: fixpoint driver and taint lattice.

The flow rules ask one question shape: *can a value produced here reach a
sink there?*  :func:`forward_fixpoint` answers it generically — iterate
per-block transfer functions to a fixpoint over :class:`~repro.lint.cfg.CFG`
blocks, recording the environment **before every element** so rules can
interrogate any program point.  :class:`TaintAnalysis` instantiates it
with a powerset lattice of :class:`Taint` facts.

Taint labels:

* ``WALL_CLOCK`` — value derived from a host-clock read (``time.time()``
  and friends); also implies ``WALL_SECONDS``.
* ``GLOBAL_RNG`` — value derived from the process-global RNG streams.
* ``UNORDERED`` — a set/dict-key view whose iteration order is an
  accident of insertion history.
* ``WALL_SECONDS`` / ``SIM_SECONDS`` — the units dimension for QOS302:
  seeded by ``WallSeconds``/``SimSeconds`` parameter annotations, clock
  reads, and ``.now`` property reads.

``WALL_CLOCK``/``GLOBAL_RNG``/``WALL_SECONDS``/``SIM_SECONDS`` are
*sticky*: they survive arithmetic and arbitrary calls (``round(time.time())``
is still wall-clock data).  ``UNORDERED`` is *fragile*: it describes the
container's iteration order, so it survives only set algebra and copies —
an unknown call may well impose an order, and assuming it does not would
drown the rules in false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from repro.lint.banned import WALLCLOCK_CALLS, is_global_rng
from repro.lint.cfg import CFG, Element, assigned_names, build_cfg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import ModuleContext

# ---------------------------------------------------------------------------
# Generic fixpoint driver
# ---------------------------------------------------------------------------

#: Safety valve for pathological graphs; real functions converge in a
#: handful of passes because the lattices here have tiny heights.
MAX_PASSES = 32


def forward_fixpoint(
    cfg: CFG,
    initial: Dict[str, object],
    transfer: Callable[[Element, Dict[str, object]], Dict[str, object]],
    join: Callable[[Dict[str, object], Dict[str, object]], Dict[str, object]],
    equal: Callable[[Dict[str, object], Dict[str, object]], bool],
    widen: Optional[
        Callable[[Dict[str, object], Dict[str, object]], Dict[str, object]]
    ] = None,
    widen_after: int = 4,
) -> Dict[int, Dict[str, object]]:
    """Run a forward analysis to fixpoint.

    Returns a map from ``id(element.node)`` to the environment holding
    immediately *before* that element executes.  Unreachable elements are
    absent from the map.

    For lattices with unbounded ascending chains (intervals), pass
    ``widen``: from pass ``widen_after`` onward each block's new input is
    widened against its previous input, forcing convergence.
    """
    blocks = cfg.reachable_blocks()
    block_in: Dict[int, Dict[str, object]] = {cfg.entry.index: dict(initial)}
    block_out: Dict[int, Dict[str, object]] = {}
    before: Dict[int, Dict[str, object]] = {}

    for pass_no in range(MAX_PASSES):
        changed = False
        for block in blocks:
            env: Optional[Dict[str, object]] = None
            if block is cfg.entry:
                env = dict(initial)
            for pred in block.predecessors:
                if pred.index in block_out:
                    env = (
                        dict(block_out[pred.index])
                        if env is None
                        else join(env, block_out[pred.index])
                    )
            if env is None:
                continue  # nothing reaches this block yet
            if (
                widen is not None
                and pass_no >= widen_after
                and block.index in block_in
            ):
                env = widen(block_in[block.index], env)
            if block.index in block_in and equal(block_in[block.index], env):
                env = dict(block_in[block.index])
            else:
                block_in[block.index] = dict(env)
                changed = True
            for element in block.elements:
                before[id(element.node)] = dict(env)
                env = transfer(element, env)
            if block.index not in block_out or not equal(
                block_out[block.index], env
            ):
                block_out[block.index] = dict(env)
                changed = True
        if not changed:
            break
    return before


# ---------------------------------------------------------------------------
# Taint lattice
# ---------------------------------------------------------------------------

WALL_CLOCK = "wall-clock"
GLOBAL_RNG = "global-rng"
UNORDERED = "unordered"
WALL_SECONDS = "wall-seconds"
SIM_SECONDS = "sim-seconds"

#: Labels that survive arithmetic and unknown calls.
STICKY_LABELS = frozenset({WALL_CLOCK, GLOBAL_RNG, WALL_SECONDS, SIM_SECONDS})


@dataclass(frozen=True)
class Taint:
    """One taint fact: where a label entered the dataflow.

    Attributes:
        label: One of the module-level label constants.
        line: 1-based line of the originating expression.
        origin: Human description of the source (``"time.time()"``).
    """

    label: str
    line: int
    origin: str


TaintSet = FrozenSet[Taint]
EMPTY: TaintSet = frozenset()

#: Set-returning methods: a tainted receiver stays tainted through these.
_SET_PRESERVING_METHODS = frozenset(
    {
        "copy",
        "difference",
        "intersection",
        "symmetric_difference",
        "union",
    }
)

#: Calls whose result order no longer depends on set iteration order.
_ORDER_SANITIZERS = frozenset({"sorted", "NodeSet", "freeze_nodes"})

#: Order-insensitive consumers: result carries no UNORDERED taint even
#: though the argument does (sums, sizes, extrema are order-free).
_ORDER_FREE_CONSUMERS = frozenset(
    {"len", "sum", "min", "max", "any", "all", "frozenset", "set"}
)

#: Mutating methods that push argument taints into their receiver.
_MUTATORS = frozenset(
    {"add", "append", "appendleft", "extend", "insert", "setdefault", "update"}
)

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class TaintAnalysis:
    """Taint propagation over one function-like body.

    Build with the module context (for alias-resolved call names), then
    query :meth:`taint_of` with any expression and the environment the
    fixpoint recorded before the enclosing element.
    """

    def __init__(self, cfg: CFG, ctx: "ModuleContext") -> None:
        self._ctx = ctx
        self.cfg = cfg
        initial = self._parameter_env()
        self.before = forward_fixpoint(
            cfg,
            initial,
            self._transfer,
            _taint_join,
            _taint_equal,
        )

    # -- environment plumbing ------------------------------------------------

    def _parameter_env(self) -> Dict[str, object]:
        env: Dict[str, object] = {}
        function = self.cfg.function
        if isinstance(function, ast.Module):
            return env
        args = function.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            label = _annotation_unit(arg.annotation)
            if label is not None:
                env[arg.arg] = frozenset(
                    {
                        Taint(
                            label=label,
                            line=arg.lineno,
                            origin=f"parameter {arg.arg}: "
                            f"{'WallSeconds' if label == WALL_SECONDS else 'SimSeconds'}",
                        )
                    }
                )
        return env

    def env_before(self, node: ast.stmt) -> Optional[Dict[str, TaintSet]]:
        """Environment before the element lowered from ``node``, or None
        when the element is unreachable."""
        return self.before.get(id(node))  # type: ignore[return-value]

    # -- expression evaluation ----------------------------------------------

    def taint_of(self, expr: Optional[ast.expr], env: Dict[str, TaintSet]) -> TaintSet:
        if expr is None:
            return EMPTY
        return self._eval(expr, env)

    def _sticky(self, taints: TaintSet) -> TaintSet:
        return frozenset(t for t in taints if t.label in STICKY_LABELS)

    def _eval(self, expr: ast.expr, env: Dict[str, TaintSet]) -> TaintSet:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, EMPTY)
        if isinstance(expr, ast.Constant):
            return EMPTY
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            merged = left | right
            if isinstance(expr.op, _SET_OPS) and any(
                t.label == UNORDERED for t in merged
            ):
                return merged  # set algebra preserves unordered-ness
            return self._sticky(merged)
        if isinstance(expr, ast.UnaryOp):
            return self._sticky(self._eval(expr.operand, env))
        if isinstance(expr, ast.BoolOp):
            out: TaintSet = EMPTY
            for value in expr.values:
                out |= self._eval(value, env)
            return out
        if isinstance(expr, ast.IfExp):
            return self._eval(expr.body, env) | self._eval(expr.orelse, env)
        if isinstance(expr, ast.Compare):
            out = EMPTY
            for operand in [expr.left] + list(expr.comparators):
                out |= self._eval(operand, env)
            return self._sticky(out)
        if isinstance(expr, ast.Attribute):
            if expr.attr == "now":
                # ``loop.now`` / ``self.engine.now`` property reads are the
                # canonical simulated-time source.
                return frozenset(
                    {
                        Taint(
                            label=SIM_SECONDS,
                            line=expr.lineno,
                            origin=f"simulated-time read .{expr.attr}",
                        )
                    }
                )
            if expr.attr == "keys":
                # A bare ``d.keys`` reference (no call) — rare; treat like
                # the call for safety.
                return self._eval(expr.value, env)
            return self._sticky(self._eval(expr.value, env))
        if isinstance(expr, ast.Subscript):
            return self._sticky(self._eval(expr.value, env))
        if isinstance(expr, ast.Set):
            taints = EMPTY
            for element in expr.elts:
                taints |= self._sticky(self._eval(element, env))
            return taints | frozenset(
                {Taint(UNORDERED, expr.lineno, "set literal")}
            )
        if isinstance(expr, ast.SetComp):
            return frozenset(
                {Taint(UNORDERED, expr.lineno, "set comprehension")}
            )
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            out = EMPTY
            for comp in expr.generators:
                iter_taint = self._eval(comp.iter, env)
                out |= iter_taint  # unordered iteration orders the result
                out |= self._unordered_literal(comp.iter)
            out |= self._sticky(self._eval_in_comp(expr.elt, env))
            return out
        if isinstance(expr, ast.DictComp):
            out = EMPTY
            for comp in expr.generators:
                out |= self._eval(comp.iter, env)
                out |= self._unordered_literal(comp.iter)
            return out
        if isinstance(expr, (ast.Tuple, ast.List)):
            out = EMPTY
            for element in expr.elts:
                out |= self._sticky(self._eval(element, env))
            return out
        if isinstance(expr, ast.Dict):
            out = EMPTY
            for value in expr.values:
                if value is not None:
                    out |= self._sticky(self._eval(value, env))
            return out
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.JoinedStr):
            out = EMPTY
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._sticky(self._eval(value.value, env))
            return out
        if isinstance(expr, ast.NamedExpr):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.Lambda):
            return EMPTY
        return EMPTY

    def _eval_in_comp(
        self, expr: ast.expr, env: Dict[str, TaintSet]
    ) -> TaintSet:
        # Comprehension element expressions reference loop variables we do
        # not bind; evaluating with the outer env is a safe approximation
        # (loop variables read as untainted).
        return self._eval(expr, env)

    def _unordered_literal(self, expr: ast.expr) -> TaintSet:
        """UNORDERED taint for syntactically unordered iterables."""
        if isinstance(expr, ast.Set):
            return frozenset({Taint(UNORDERED, expr.lineno, "set literal")})
        if isinstance(expr, ast.SetComp):
            return frozenset(
                {Taint(UNORDERED, expr.lineno, "set comprehension")}
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return frozenset(
                    {Taint(UNORDERED, expr.lineno, f"{func.id}(...)")}
                )
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                return frozenset({Taint(UNORDERED, expr.lineno, ".keys()")})
        return EMPTY

    def _eval_call(self, expr: ast.Call, env: Dict[str, TaintSet]) -> TaintSet:
        func = expr.func
        qualified = self._ctx.qualified_name(func)
        arg_taints: TaintSet = EMPTY
        for arg in expr.args:
            arg_taints |= self._eval(arg, env)
        for keyword in expr.keywords:
            arg_taints |= self._eval(keyword.value, env)

        if qualified is not None:
            if qualified in WALLCLOCK_CALLS:
                return frozenset(
                    {
                        Taint(WALL_CLOCK, expr.lineno, f"{qualified}()"),
                        Taint(WALL_SECONDS, expr.lineno, f"{qualified}()"),
                    }
                )
            if is_global_rng(qualified):
                return frozenset(
                    {Taint(GLOBAL_RNG, expr.lineno, f"{qualified}()")}
                )

        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name in _ORDER_SANITIZERS:
            return self._sticky(arg_taints)
        if name in _ORDER_FREE_CONSUMERS:
            if name in ("set", "frozenset"):
                return self._sticky(arg_taints) | frozenset(
                    {Taint(UNORDERED, expr.lineno, f"{name}(...)")}
                )
            return self._sticky(arg_taints)
        if isinstance(func, ast.Attribute):
            if func.attr == "keys" and not expr.args:
                return frozenset(
                    {Taint(UNORDERED, expr.lineno, ".keys()")}
                ) | self._sticky(self._eval(func.value, env))
            if func.attr in _SET_PRESERVING_METHODS:
                receiver = self._eval(func.value, env)
                if any(t.label == UNORDERED for t in receiver):
                    return receiver | self._sticky(arg_taints)
                return self._sticky(receiver | arg_taints)
        # Unknown call: sticky labels flow through, UNORDERED does not —
        # the callee may well impose an order.
        return self._sticky(arg_taints)

    # -- transfer ------------------------------------------------------------

    def _transfer(
        self, element: Element, env: Dict[str, object]
    ) -> Dict[str, object]:
        tenv: Dict[str, TaintSet] = env  # type: ignore[assignment]
        node = element.node
        out = dict(tenv)
        if element.header:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                element_taint = self._sticky(self._eval(node.iter, tenv))
                for name, _ in assigned_names(node.target):
                    out[name] = element_taint
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is None:
                        continue
                    taint = self._sticky(
                        self._eval(item.context_expr, tenv)
                    )
                    for name, _ in assigned_names(item.optional_vars):
                        out[name] = taint
            return out
        if isinstance(node, ast.Assign):
            value_taint = self._eval(node.value, tenv)
            for target in node.targets:
                for name, _ in assigned_names(target):
                    out[name] = value_taint
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    base = target.value.id
                    out[base] = tenv.get(base, EMPTY) | self._sticky(
                        value_taint
                    )
            return out
        if isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                if node.value is not None:
                    out[node.target.id] = self._eval(node.value, tenv)
                else:
                    unit = _annotation_unit(node.annotation)
                    if unit is not None:
                        out[node.target.id] = frozenset(
                            {
                                Taint(
                                    unit,
                                    node.lineno,
                                    f"declared {node.target.id}",
                                )
                            }
                        )
            return out
        if isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                name = node.target.id
                out[name] = tenv.get(name, EMPTY) | self._eval(
                    node.value, tenv
                )
            return out
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.pop(target.id, None)
            return out
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
            ):
                pushed: TaintSet = EMPTY
                for arg in call.args:
                    pushed |= self._sticky(self._eval(arg, tenv))
                for keyword in call.keywords:
                    pushed |= self._sticky(self._eval(keyword.value, tenv))
                if pushed:
                    base = func.value.id
                    out[base] = tenv.get(base, EMPTY) | pushed
            return out
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out[node.name] = EMPTY
            return out
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                out[local] = EMPTY
            return out
        return out


def _taint_join(
    a: Dict[str, object], b: Dict[str, object]
) -> Dict[str, object]:
    out = dict(a)
    for name, taints in b.items():
        out[name] = out.get(name, EMPTY) | taints  # type: ignore[operator]
    return out


def _taint_equal(a: Dict[str, object], b: Dict[str, object]) -> bool:
    return a == b


def _annotation_unit(annotation: Optional[ast.expr]) -> Optional[str]:
    """Map a ``SimSeconds``/``WallSeconds`` annotation to its taint label."""
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    else:
        return None
    if name == "SimSeconds":
        return SIM_SECONDS
    if name == "WallSeconds":
        return WALL_SECONDS
    return None


def labels_of(taints: TaintSet) -> FrozenSet[str]:
    return frozenset(t.label for t in taints)


def taints_with_label(taints: TaintSet, label: str) -> List[Taint]:
    return sorted(
        (t for t in taints if t.label == label), key=lambda t: t.line
    )


def analyse_function(function, ctx: "ModuleContext") -> Tuple[CFG, TaintAnalysis]:
    """Convenience: build the CFG and run taint for one function-like node."""
    cfg = build_cfg(function)
    return cfg, TaintAnalysis(cfg, ctx)
