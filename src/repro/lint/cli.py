"""The ``probqos lint`` command: run the pass, render text or JSON.

Exit codes follow the convention batch pipelines expect:

* ``0`` — every scanned file is clean;
* ``1`` — at least one finding survived selection and suppressions;
* ``2`` — usage error (missing path, unknown code in --select/--ignore).
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from typing import List, Optional, TextIO

from repro.lint.config import LintConfig
from repro.lint.engine import known_codes, lint_paths
from repro.lint.findings import Finding, LintSeverity

#: Version of the ``--format json`` document layout.
LINT_SCHEMA_VERSION = 1

#: Default lint roots when none are given (filtered to those that exist).
DEFAULT_PATHS = ("src", "tests")


def _parse_codes(raw: Optional[str], option: str) -> Optional[frozenset]:
    """Parse a comma-separated code list, validating against the registry."""
    if raw is None:
        return None
    codes = frozenset(code.strip() for code in raw.split(",") if code.strip())
    if not codes:
        raise ValueError(f"{option} got an empty code list")
    unknown = sorted(codes - known_codes())
    if unknown:
        raise ValueError(
            f"{option} names unknown code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known_codes()))})"
        )
    return codes


def render_text(
    findings: List[Finding], files_scanned: int, stream: TextIO
) -> None:
    for finding in findings:
        stream.write(finding.render() + "\n")
    if findings:
        errors = sum(
            1 for f in findings if f.severity is LintSeverity.ERROR
        )
        warnings = len(findings) - errors
        stream.write(
            f"\n{len(findings)} finding(s) ({errors} error(s), "
            f"{warnings} warning(s)) across {files_scanned} file(s)\n"
        )
    else:
        stream.write(f"ok: {files_scanned} file(s), 0 findings\n")


def render_json(
    findings: List[Finding], files_scanned: int, stream: TextIO
) -> None:
    counts = Counter(finding.code for finding in findings)
    document = {
        "schema": LINT_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "findings": [finding.to_dict() for finding in findings],
        "counts": dict(sorted(counts.items())),
    }
    json.dump(document, stream, indent=2, sort_keys=True)
    stream.write("\n")


def run_lint(
    paths: Optional[List[str]],
    output_format: str = "text",
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    arch: bool = False,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute one lint run; returns the process exit code."""
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    try:
        config = LintConfig(
            select=_parse_codes(select, "--select"),
            ignore=_parse_codes(ignore, "--ignore") or frozenset(),
        )
    except ValueError as exc:
        print(f"probqos lint: {exc}", file=stderr)
        return 2

    if not paths:
        import os

        paths = [p for p in DEFAULT_PATHS if os.path.isdir(p)] or ["."]
    try:
        findings, files_scanned = lint_paths(list(paths), config, arch=arch)
    except (FileNotFoundError, OSError) as exc:
        print(f"probqos lint: {exc}", file=stderr)
        return 2

    if output_format == "json":
        render_json(findings, files_scanned, stdout)
    elif output_format == "sarif":
        from repro.lint.sarif import render_sarif

        render_sarif(findings, stdout)
    else:
        render_text(findings, files_scanned, stdout)
    return 1 if findings else 0
