"""Canonical banned-call sets shared by pattern rules and flow analyses.

The QOS1xx pattern rules and the QOS2xx/3xx taint analyses must agree on
what counts as a wall-clock read or a global-RNG draw — one definition,
imported by both, keeps the direct-use rules and the through-a-variable
rules from drifting apart.  This module has no intra-package imports so
either side can load first.
"""

from __future__ import annotations

#: Canonical dotted names of wall-clock sources.
WALLCLOCK_CALLS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: ``random.<name>`` module-level functions that read or mutate the hidden
#: global Mersenne Twister.
STDLIB_GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` attributes that do NOT touch the legacy global state:
#: explicit generator/bit-generator constructors and seed plumbing.
NUMPY_EXPLICIT_RNG = frozenset(
    {
        "BitGenerator",
        "Generator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "RandomState",
        "SFC64",
        "SeedSequence",
        "default_rng",
    }
)


def is_global_rng(qualified: str) -> bool:
    """Whether a canonical dotted name is a process-global RNG access."""
    if qualified.startswith("random."):
        return qualified[len("random.") :] in STDLIB_GLOBAL_RNG_FUNCTIONS
    if qualified.startswith("numpy.random."):
        rest = qualified[len("numpy.random.") :]
        return "." not in rest and rest not in NUMPY_EXPLICIT_RNG
    return False
