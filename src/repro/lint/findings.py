"""Finding records produced by the determinism & sim-safety lint pass.

A :class:`Finding` is one rule violation at one source location.  Findings
sort by ``(path, line, col, code)`` so reports are stable regardless of the
order rules ran in — the linter holds itself to the same determinism
contract it enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class LintSeverity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break the determinism contract outright (hidden RNG
    state, wall-clock reads on sim paths); ``WARNING`` findings are fragile
    patterns that usually precede one (float equality, shared mutable
    defaults).  Both are reported and both fail the CI gate — the split
    exists so downstream tooling can prioritise, not so warnings can rot.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: File the finding is in, as given to the linter.
        line: 1-based line of the offending expression (suppression
            comments must sit on exactly this line).
        col: 0-based column offset.
        code: Rule code, e.g. ``"QOS101"``.
        message: Human-readable explanation with the suggested fix.
        severity: See :class:`LintSeverity`.
    """

    path: str
    line: int
    col: int
    code: str
    message: str = field(compare=False)
    severity: LintSeverity = field(compare=False, default=LintSeverity.ERROR)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the ``--format json`` row)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity.value,
        }

    def render(self) -> str:
        """The one-line ``--format text`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity.value}] {self.message}"
        )
