"""Interval abstract domain for the probability-domain rule (QOS301).

Every promised probability in this system must live in [0, 1]; Eq. 2
scores against it, ``combine_independent`` assumes it, and
``QoSGuarantee.__post_init__`` raises outside it — at runtime, mid-
simulation.  :class:`IntervalAnalysis` evaluates what the linter can
*prove* about an expression's numeric range from literals, probability-
typed parameters and attributes, and arithmetic, so the boundary check
moves from a runtime crash to a lint finding.

The domain is deliberately optimistic about the unknown: anything it
cannot bound is ``TOP`` and never reported.  Findings therefore carry a
derivation the reader can check by hand (``p + q`` with both in [0, 1]
can reach [0, 2]).
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, TYPE_CHECKING

from repro.lint.cfg import CFG, Element, assigned_names
from repro.lint.dataflow import forward_fixpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import ModuleContext

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed numeric interval, possibly unbounded on either side."""

    lo: float
    hi: float

    @property
    def is_bounded(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        corners = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        finite = [c for c in corners if not math.isnan(c)]
        if not finite:
            return TOP
        return Interval(min(finite), max(finite))

    def __truediv__(self, other: "Interval") -> "Interval":
        if other.lo <= 0.0 <= other.hi:
            return TOP
        corners = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ]
        finite = [c for c in corners if not math.isnan(c)]
        if not finite:
            return TOP
        return Interval(min(finite), max(finite))

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def abs(self) -> "Interval":
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def min_with(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def pow_int(self, exponent: int) -> "Interval":
        """``self ** exponent`` for a non-negative base and int exponent."""
        if exponent < 0 or self.lo < 0.0:
            return TOP
        return Interval(self.lo**exponent, self.hi**exponent)

    def __repr__(self) -> str:
        def fmt(x: float) -> str:
            if x == _INF:
                return "+inf"
            if x == -_INF:
                return "-inf"
            return f"{x:g}"

        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"


TOP = Interval(-_INF, _INF)
UNIT = Interval(0.0, 1.0)

#: Parameter names conventionally carrying probabilities in this repo.
#: Seeding them with [0, 1] is what lets the analysis prove that ``p + q``
#: can reach 2 — the canonical add-instead-of-combine bug.
PROBABILITY_PARAM_NAMES = frozenset(
    {
        "accuracy",
        "confidence",
        "failure_probability",
        "p",
        "p_f",
        "pf",
        "predicted_failure_probability",
        "prob",
        "probability",
    }
)

#: Attribute names that read a probability off a domain object
#: (``offer.probability``, ``guarantee.predicted_failure_probability``).
PROBABILITY_ATTR_NAMES = frozenset(
    {
        "accuracy",
        "failure_probability",
        "predicted_failure_probability",
        "probability",
    }
)

#: Calls whose return value is a probability by contract.
PROBABILITY_RETURNING_CALLS = frozenset(
    {
        "best_case_probability",
        "combine_independent",
        "failure_probability",
        "node_failure_probability",
        "node_failure_term",
        "stable_uniform",
    }
)

#: Annotation names treated as the probability domain (``p: Probability``).
PROBABILITY_ANNOTATIONS = frozenset({"Probability"})


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _parameter_interval(arg: ast.arg) -> Optional[Interval]:
    annotation = _annotation_name(arg.annotation)
    if annotation in PROBABILITY_ANNOTATIONS:
        return UNIT
    if arg.arg in PROBABILITY_PARAM_NAMES and annotation in (None, "float"):
        return UNIT
    return None


class IntervalAnalysis:
    """Forward interval analysis over one function-like body."""

    def __init__(self, cfg: CFG, ctx: "ModuleContext") -> None:
        self._ctx = ctx
        self.cfg = cfg
        self.before = forward_fixpoint(
            cfg,
            self._parameter_env(),
            self._transfer,
            _join,
            _equal,
            widen=_widen,
        )

    def _parameter_env(self) -> Dict[str, object]:
        env: Dict[str, object] = {}
        function = self.cfg.function
        if isinstance(function, ast.Module):
            return env
        args = function.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            interval = _parameter_interval(arg)
            if interval is not None:
                env[arg.arg] = interval
        return env

    def env_before(self, node: ast.stmt) -> Optional[Dict[str, Interval]]:
        return self.before.get(id(node))  # type: ignore[return-value]

    # -- expression evaluation ----------------------------------------------

    def interval_of(
        self, expr: Optional[ast.expr], env: Dict[str, Interval]
    ) -> Interval:
        if expr is None:
            return TOP
        return self._eval(expr, env)

    def _eval(self, expr: ast.expr, env: Dict[str, Interval]) -> Interval:
        if isinstance(expr, ast.Constant):
            value = expr.value
            if isinstance(value, bool):
                return Interval(float(value), float(value))
            if isinstance(value, (int, float)) and math.isfinite(value):
                return Interval(float(value), float(value))
            return TOP
        if isinstance(expr, ast.Name):
            return env.get(expr.id, TOP)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, env)
            if isinstance(expr.op, ast.USub):
                return -operand
            if isinstance(expr.op, ast.UAdd):
                return operand
            if isinstance(expr.op, ast.Not):
                return Interval(0.0, 1.0)
            return TOP
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            if isinstance(expr.op, ast.Add):
                return left + right
            if isinstance(expr.op, ast.Sub):
                return left - right
            if isinstance(expr.op, ast.Mult):
                return left * right
            if isinstance(expr.op, ast.Div):
                return left / right
            if isinstance(expr.op, ast.Pow):
                if (
                    isinstance(expr.right, ast.Constant)
                    and isinstance(expr.right.value, int)
                    and not isinstance(expr.right.value, bool)
                ):
                    return left.pow_int(expr.right.value)
                return TOP
            return TOP
        if isinstance(expr, ast.IfExp):
            return self._eval(expr.body, env).hull(
                self._eval(expr.orelse, env)
            )
        if isinstance(expr, ast.BoolOp):
            out = self._eval(expr.values[0], env)
            for value in expr.values[1:]:
                out = out.hull(self._eval(value, env))
            return out
        if isinstance(expr, ast.Compare):
            return Interval(0.0, 1.0)  # bool
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Attribute):
            if expr.attr in PROBABILITY_ATTR_NAMES:
                return UNIT
            return TOP
        if isinstance(expr, ast.NamedExpr):
            return self._eval(expr.value, env)
        return TOP

    def _eval_call(self, expr: ast.Call, env: Dict[str, Interval]) -> Interval:
        func = expr.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        arg_intervals = [self._eval(arg, env) for arg in expr.args]
        if name == "min" and arg_intervals:
            out = arg_intervals[0]
            for interval in arg_intervals[1:]:
                out = out.min_with(interval)
            return out
        if name == "max" and arg_intervals:
            out = arg_intervals[0]
            for interval in arg_intervals[1:]:
                out = out.max_with(interval)
            return out
        if name == "abs" and len(arg_intervals) == 1:
            return arg_intervals[0].abs()
        if name == "float" and len(arg_intervals) == 1:
            return arg_intervals[0]
        if name in PROBABILITY_RETURNING_CALLS:
            return UNIT
        return TOP

    # -- transfer ------------------------------------------------------------

    def _transfer(
        self, element: Element, env: Dict[str, object]
    ) -> Dict[str, object]:
        ienv: Dict[str, Interval] = env  # type: ignore[assignment]
        node = element.node
        out = dict(ienv)
        if element.header:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                for name, _ in assigned_names(node.target):
                    out[name] = TOP
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for name, _ in assigned_names(item.optional_vars):
                            out[name] = TOP
            return out
        if isinstance(node, ast.Assign):
            value = self._eval(node.value, ienv)
            for target in node.targets:
                for name, _ in assigned_names(target):
                    out[name] = value
            return out
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if node.value is not None:
                out[node.target.id] = self._eval(node.value, ienv)
            elif _annotation_name(node.annotation) in PROBABILITY_ANNOTATIONS:
                out[node.target.id] = UNIT
            return out
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            current = ienv.get(node.target.id, TOP)
            value = self._eval(node.value, ienv)
            if isinstance(node.op, ast.Add):
                out[node.target.id] = current + value
            elif isinstance(node.op, ast.Sub):
                out[node.target.id] = current - value
            elif isinstance(node.op, ast.Mult):
                out[node.target.id] = current * value
            elif isinstance(node.op, ast.Div):
                out[node.target.id] = current / value
            else:
                out[node.target.id] = TOP
            return out
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.pop(target.id, None)
            return out
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            out.pop(node.name, None)
            return out
        return out


def _join(a: Dict[str, object], b: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for name in set(a) | set(b):
        ia = a.get(name, TOP)
        ib = b.get(name, TOP)
        out[name] = ia.hull(ib)  # type: ignore[union-attr]
    return out


def _equal(a: Dict[str, object], b: Dict[str, object]) -> bool:
    return a == b


def _widen(old: Dict[str, object], new: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for name in set(old) | set(new):
        io: Interval = old.get(name, TOP)  # type: ignore[assignment]
        ni: Interval = new.get(name, TOP)  # type: ignore[assignment]
        lo = ni.lo if ni.lo >= io.lo else -_INF
        hi = ni.hi if ni.hi <= io.hi else _INF
        out[name] = Interval(lo, hi)
    return out
