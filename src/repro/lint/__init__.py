"""``repro.lint`` — the determinism & sim-safety static-analysis pass.

The reproduction's guarantees are *exact*: tier-1 tests assert bit-identical
results across seed replays, worker counts, and warm caches.  This package
encodes the coding contract that makes those assertions hold — no hidden
global RNG state, no wall-clock reads on sim paths, no set-order
dependence — as machine-checked AST rules (QOS101-QOS110), so the contract
survives contributors who never read DESIGN.md.

Run it as ``probqos lint [PATHS] [--format text|json] [--select/--ignore]``;
silence a deliberate exception inline with
``# qoslint: disable=QOS102 -- <why this site is legitimate>``.
"""

from __future__ import annotations

from repro.lint.config import LintConfig, SIM_LAYER_PACKAGES
from repro.lint.engine import (
    ModuleContext,
    Rule,
    all_rules,
    known_codes,
    lint_paths,
    lint_source,
    register,
)
from repro.lint.findings import Finding, LintSeverity
from repro.lint.suppress import Suppression, SuppressionIndex

__all__ = [
    "Finding",
    "LintConfig",
    "LintSeverity",
    "ModuleContext",
    "Rule",
    "SIM_LAYER_PACKAGES",
    "Suppression",
    "SuppressionIndex",
    "all_rules",
    "known_codes",
    "lint_paths",
    "lint_source",
    "register",
]
