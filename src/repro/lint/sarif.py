"""SARIF 2.1.0 rendering for lint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS standard
code-scanning tools speak to CI platforms; GitHub's code-scanning UI
ingests it directly, so ``probqos lint --format sarif`` plus one upload
step puts QOS findings inline on pull requests.

The document is deliberately minimal but valid: one run, one driver, the
full rule metadata (so the UI can show each rule's rationale without a
round-trip to the repo), and one result per finding.  Output is fully
deterministic — keys are sorted and nothing derived from the clock or the
environment enters the document — so the artifact diffs cleanly between
runs, which is how regressions are meant to be spotted.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO

from repro.lint.findings import Finding, LintSeverity

#: The SARIF spec version emitted (and the schema URI advertising it).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool identity in the ``driver`` block.
TOOL_NAME = "probqos-lint"
TOOL_INFO_URI = "https://example.invalid/probqos"


def _sarif_level(severity: LintSeverity) -> str:
    return "error" if severity is LintSeverity.ERROR else "warning"


def _rule_metadata() -> List[Dict[str, object]]:
    """``reportingDescriptor`` entries for every registered rule.

    Includes the infrastructure codes (QOS000-QOS002) so results citing
    them always resolve to a descriptor, as the spec requires.
    """
    from repro.lint.engine import (
        SYNTAX_ERROR_CODE,
        UNKNOWN_SUPPRESSION_CODE,
        UNUSED_SUPPRESSION_CODE,
        all_rules,
    )

    infrastructure = {
        SYNTAX_ERROR_CODE: "file does not parse; nothing can be checked",
        UNKNOWN_SUPPRESSION_CODE: "suppression names a code no rule owns",
        UNUSED_SUPPRESSION_CODE: "suppression silenced no finding this run",
    }
    descriptors: List[Dict[str, object]] = []
    for code, text in sorted(infrastructure.items()):
        descriptors.append(
            {
                "id": code,
                "name": code,
                "shortDescription": {"text": text},
            }
        )
    for rule in all_rules():
        descriptors.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {
                    "level": _sarif_level(rule.severity)
                },
            }
        )
    return descriptors


def to_sarif(findings: List[Finding]) -> Dict[str, object]:
    """The findings as one SARIF 2.1.0 document (a plain dict)."""
    rule_ids = [d["id"] for d in _rule_metadata()]
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.code,
                "ruleIndex": rule_ids.index(finding.code)
                if finding.code in rule_ids
                else -1,
                "level": _sarif_level(finding.severity),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                # SARIF columns are 1-based.
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_INFO_URI,
                        "rules": _rule_metadata(),
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: List[Finding], stream: TextIO) -> None:
    """Serialise the findings as SARIF JSON to ``stream``."""
    json.dump(to_sarif(findings), stream, indent=2, sort_keys=True)
    stream.write("\n")
