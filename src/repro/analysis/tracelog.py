"""Structured simulation trace recording.

The simulator can attach a :class:`TraceRecorder` that captures every
semantic transition — negotiations, starts, checkpoint decisions, failures,
evacuations, finishes — as typed :class:`TraceRecord` rows.  The trace is
the raw material for the schedule visualiser (:mod:`repro.analysis.gantt`),
for JSONL export, and for debugging simulations event by event.

Recording is opt-in: the system runs with a null recorder by default, so
sweeps pay nothing for the facility.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, TextIO

#: Trace record kinds, in the vocabulary of the paper's system.
RECORD_KINDS = (
    "negotiated",
    "start",
    "checkpoint_skipped",
    "checkpoint_performed",
    "failure",
    "killed",
    "evacuated",
    "requeued",
    "finish",
    "node_down",
    "node_up",
)


@dataclass(frozen=True)
class TraceRecord:
    """One semantic transition in a simulation.

    Attributes:
        time: Simulated timestamp.
        kind: One of :data:`RECORD_KINDS`.
        job_id: Affected job, or None for node-only records.
        node: Affected node, or None for job-wide records.
        detail: Kind-specific fields (promised probability, lost work...).
    """

    time: float
    kind: str
    job_id: Optional[int] = None
    node: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """One JSONL line.

        Builds the dict by hand rather than through ``dataclasses.asdict``:
        ``asdict`` deep-copies every detail value through a generic
        recursion, which dominates serialisation time on 100k-row streamed
        traces.  ``json.dumps`` never mutates its input, so the copy buys
        nothing.
        """
        return json.dumps(
            {
                "time": self.time,
                "kind": self.kind,
                "job_id": self.job_id,
                "node": self.node,
                "detail": self.detail,
            },
            sort_keys=True,
        )


class TraceRecorder:
    """Accumulates trace records in memory (and optionally streams JSONL).

    Args:
        stream: Optional text stream each record is written to as JSONL the
            moment it is recorded (e.g. an open file).
        keep_in_memory: Retain records on the recorder for later queries;
            disable for very long streamed runs.
    """

    def __init__(
        self, stream: Optional[TextIO] = None, keep_in_memory: bool = True
    ) -> None:
        self._stream = stream
        self._keep = keep_in_memory
        self._records: List[TraceRecord] = []
        # Indexes maintained in record() so the post-run queries below are
        # O(result) instead of O(trace) — a gantt render walks the per-kind
        # lists dozens of times over traces with tens of thousands of rows.
        self._by_kind: Dict[str, List[TraceRecord]] = {}
        self._by_job: Dict[int, List[TraceRecord]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        kind: str,
        job_id: Optional[int] = None,
        node: Optional[int] = None,
        **detail: Any,
    ) -> None:
        """Append one record; unknown kinds are rejected to catch typos."""
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown trace record kind {kind!r}")
        self._ingest(
            TraceRecord(time=time, kind=kind, job_id=job_id, node=node, detail=detail)
        )

    def _ingest(self, record: TraceRecord) -> None:
        """Index/stream one already-validated record.

        The single sink behind both live recording (:meth:`record`) and
        replay (:meth:`from_records`); subclasses that derive state from
        the record stream (e.g. :class:`repro.obs.trace.SpanBuilder`)
        override this so both paths feed their state machine.
        """
        if self._keep:
            self._records.append(record)
            self._by_kind.setdefault(record.kind, []).append(record)
            if record.job_id is not None:
                self._by_job.setdefault(record.job_id, []).append(record)
        if self._stream is not None:
            self._stream.write(record.to_json() + "\n")

    @classmethod
    def from_records(
        cls,
        records: Iterable[TraceRecord],
        stream: Optional[TextIO] = None,
        keep_in_memory: bool = True,
    ) -> "TraceRecorder":
        """Rebuild a recorder (with its per-kind/per-job indexes) from
        already-materialised records, e.g. a JSONL trace loaded with
        :func:`load_jsonl`.

        Live recording populates the indexes incrementally; this is the
        replay equivalent, so post-run queries (:meth:`of_kind`,
        :meth:`for_job`, :meth:`counts`) work on loaded traces too.  Kinds
        are validated exactly as :meth:`record` validates them (filter a
        ``strict=False`` load before replaying if unknown kinds must be
        kept).
        """
        recorder = cls(stream=stream, keep_in_memory=keep_in_memory)
        for record in records:
            if record.kind not in RECORD_KINDS:
                raise ValueError(f"unknown trace record kind {record.kind!r}")
            recorder._ingest(record)
        return recorder

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in time order."""
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown trace record kind {kind!r}")
        return list(self._by_kind.get(kind, ()))

    def for_job(self, job_id: int) -> List[TraceRecord]:
        """A job's full life story, in time order."""
        return list(self._by_job.get(job_id, ()))

    def counts(self) -> Dict[str, int]:
        """Record count per kind (only kinds that occurred)."""
        return {kind: len(rows) for kind, rows in self._by_kind.items()}


class NullRecorder(TraceRecorder):
    """A recorder that drops everything (the default, zero-cost)."""

    def __init__(self) -> None:
        super().__init__(stream=None, keep_in_memory=False)

    def record(self, time, kind, job_id=None, node=None, **detail) -> None:
        return


def load_jsonl(lines: Iterable[str], strict: bool = True) -> List[TraceRecord]:
    """Parse JSONL lines back into records (inverse of streaming).

    Kinds are validated against :data:`RECORD_KINDS` just as :meth:`record`
    validates them on the way in — a trace written by a newer (or corrupted)
    build should fail loudly here, not at the end of whatever analysis
    consumed it.  Pass ``strict=False`` to keep unknown-kind rows anyway,
    e.g. to salvage what a mixed-version trace still contains.
    """
    records = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        kind = data["kind"]
        if strict and kind not in RECORD_KINDS:
            raise ValueError(
                f"line {lineno}: unknown trace record kind {kind!r} "
                "(pass strict=False to keep it)"
            )
        records.append(
            TraceRecord(
                time=data["time"],
                kind=kind,
                job_id=data.get("job_id"),
                node=data.get("node"),
                detail=data.get("detail", {}),
            )
        )
    return records
