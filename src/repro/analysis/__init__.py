"""Analysis tools: structured trace recording and schedule visualisation."""

from repro.analysis.gantt import (
    Occupancy,
    downtime_intervals,
    occupancy_intervals,
    render_gantt,
)
from repro.analysis.tracelog import (
    NullRecorder,
    RECORD_KINDS,
    TraceRecord,
    TraceRecorder,
    load_jsonl,
)

__all__ = [
    "Occupancy",
    "downtime_intervals",
    "occupancy_intervals",
    "render_gantt",
    "NullRecorder",
    "RECORD_KINDS",
    "TraceRecord",
    "TraceRecorder",
    "load_jsonl",
]
