"""ASCII schedule visualisation from a simulation trace.

Renders a node-by-time occupancy chart — the classic scheduling Gantt — from
the records of a :class:`~repro.analysis.tracelog.TraceRecorder`:

* digits/letters mark which job occupies a node (job ids are mapped to a
  compact symbol alphabet, reused cyclically);
* ``#`` marks a node inside its repair window;
* ``.`` marks idle.

Intended for small demonstration clusters (examples, debugging, teaching);
for a 128-node production sweep the JSONL trace export is the right tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.tracelog import TraceRecorder

_SYMBOLS = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_DOWN, _IDLE = "#", "."


@dataclass(frozen=True)
class Occupancy:
    """A half-open occupancy interval of one node by one job."""

    node: int
    job_id: int
    start: float
    end: float


def occupancy_intervals(recorder: TraceRecorder) -> List[Occupancy]:
    """Reconstruct per-node occupancy from start/finish/kill records."""
    open_runs: Dict[Tuple[int, int], float] = {}  # (job, node) -> start
    intervals: List[Occupancy] = []
    for record in recorder:
        if record.kind == "start":
            for node in record.detail.get("nodes", []):
                open_runs[(record.job_id, node)] = record.time
        elif record.kind in ("finish", "killed", "evacuated"):
            for (job_id, node), started in list(open_runs.items()):
                if job_id == record.job_id:
                    intervals.append(
                        Occupancy(
                            node=node,
                            job_id=job_id,
                            start=started,
                            end=record.time,
                        )
                    )
                    del open_runs[(job_id, node)]
    intervals.sort(key=lambda o: (o.node, o.start))
    return intervals


def downtime_intervals(recorder: TraceRecorder) -> List[Tuple[int, float, float]]:
    """Reconstruct per-node repair windows from node_down/node_up records."""
    down_since: Dict[int, float] = {}
    intervals: List[Tuple[int, float, float]] = []
    for record in recorder:
        if record.kind == "node_down" and record.node is not None:
            down_since.setdefault(record.node, record.time)
        elif record.kind == "node_up" and record.node is not None:
            started = down_since.pop(record.node, None)
            if started is not None:
                intervals.append((record.node, started, record.time))
    return intervals


def render_gantt(
    recorder: TraceRecorder,
    node_count: int,
    width: int = 72,
    end_time: Optional[float] = None,
) -> str:
    """Render the schedule as one text row per node.

    Args:
        recorder: A trace with at least start/finish records.
        node_count: Number of node rows to draw.
        width: Chart columns; each column is one time bucket.
        end_time: Chart horizon; defaults to the last record's time.

    Returns:
        The chart plus a legend mapping symbols to job ids.
    """
    records = recorder.records
    if not records:
        return "(empty trace)"
    horizon = end_time if end_time is not None else max(r.time for r in records)
    if horizon <= 0:
        return "(trace has no duration)"
    bucket = horizon / width

    grid = [[_IDLE] * width for _ in range(node_count)]

    def paint(node: int, start: float, end: float, symbol: str) -> None:
        if node >= node_count:
            return
        first = min(width - 1, max(0, int(start / bucket)))
        last = min(width - 1, max(0, int(max(end - 1e-9, start) / bucket)))
        for column in range(first, last + 1):
            grid[node][column] = symbol

    for node, start, end in downtime_intervals(recorder):
        paint(node, start, end, _DOWN)

    legend: Dict[int, str] = {}
    for interval in occupancy_intervals(recorder):
        symbol = legend.setdefault(
            interval.job_id, _SYMBOLS[len(legend) % len(_SYMBOLS)]
        )
        paint(interval.node, interval.start, interval.end, symbol)

    lines = [
        f"t = 0 .. {horizon:.0f}s, one column = {bucket:.0f}s; "
        f"'{_DOWN}' down, '{_IDLE}' idle"
    ]
    for node in range(node_count):
        lines.append(f"node {node:>3} |{''.join(grid[node])}|")
    if legend:
        mapping = ", ".join(
            f"{symbol}=job {job_id}"
            for job_id, symbol in sorted(legend.items())[:20]
        )
        lines.append(f"jobs: {mapping}" + (" ..." if len(legend) > 20 else ""))
    return "\n".join(lines)
