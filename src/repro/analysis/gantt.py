"""ASCII schedule visualisation from a simulation trace.

Renders a node-by-time occupancy chart — the classic scheduling Gantt — from
the span timeline of :mod:`repro.obs.trace`, assembled on the fly from the
records of a :class:`~repro.analysis.tracelog.TraceRecorder`:

* digits/letters mark which job occupies a node (job ids are mapped to a
  compact symbol alphabet, reused cyclically);
* ``#`` marks a node inside its repair window;
* ``.`` marks idle.

Runs still open at the horizon (a job mid-execution when the trace stopped)
are drawn up to the horizon rather than dropped, which is what the span
layer's ``open`` flag exists for.

Intended for small demonstration clusters (examples, debugging, teaching);
for a 128-node production sweep the JSONL trace export is the right tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.tracelog import TraceRecorder

if TYPE_CHECKING:  # import cycle: repro.obs.trace imports this package
    from repro.obs.trace import SpanBuilder, SpanTimeline

_SYMBOLS = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_DOWN, _IDLE = "#", "."


@dataclass(frozen=True)
class Occupancy:
    """A half-open occupancy interval of one node by one job."""

    node: int
    job_id: int
    start: float
    end: float


def _span_builder_of(recorder: TraceRecorder) -> "SpanBuilder":
    """The recorder as a span builder, replaying its records if needed.

    Imported lazily: :mod:`repro.obs.trace` imports this package's
    ``tracelog`` module, so a top-level import here would be circular.
    """
    from repro.obs.trace import SpanBuilder

    if isinstance(recorder, SpanBuilder):
        return recorder
    builder = SpanBuilder.from_records(recorder, keep_in_memory=False)
    assert isinstance(builder, SpanBuilder)
    return builder


def _span_timeline(
    recorder: TraceRecorder, end_time: Optional[float]
) -> "SpanTimeline":
    """Assemble the recorder's records into spans."""
    return _span_builder_of(recorder).build(end_time=end_time)


def occupancy_intervals(
    recorder: TraceRecorder, end_time: Optional[float] = None
) -> List[Occupancy]:
    """Per-node occupancy, derived from the span layer's ``running`` spans.

    A running span closes on finish, kill, or evacuation; each covers the
    job's whole partition, so it expands to one interval per node.  Spans
    still open at the end of the trace are closed at ``end_time`` when
    given, dropped otherwise (matching the trace's own knowledge).
    """
    intervals: List[Occupancy] = []
    for span in _span_timeline(recorder, end_time).spans:
        if span.track != "job" or span.name != "running" or span.end is None:
            continue
        for node in span.attrs.get("nodes", []):
            intervals.append(
                Occupancy(
                    node=node,
                    job_id=span.track_id,
                    start=span.start,
                    end=span.end,
                )
            )
    intervals.sort(key=lambda o: (o.node, o.start))
    return intervals


def downtime_intervals(
    recorder: TraceRecorder, end_time: Optional[float] = None
) -> List[Tuple[int, float, float]]:
    """Per-node repair windows, derived from the span layer's ``down`` spans."""
    intervals: List[Tuple[int, float, float]] = []
    for span in _span_timeline(recorder, end_time).spans:
        if span.track == "node" and span.name == "down" and span.end is not None:
            intervals.append((span.track_id, span.start, span.end))
    intervals.sort()
    return intervals


def render_gantt(
    recorder: TraceRecorder,
    node_count: int,
    width: int = 72,
    end_time: Optional[float] = None,
) -> str:
    """Render the schedule as one text row per node.

    Args:
        recorder: A trace with at least start/finish records.
        node_count: Number of node rows to draw.
        width: Chart columns; each column is one time bucket.
        end_time: Chart horizon; defaults to the last record's time.

    Returns:
        The chart plus a legend mapping symbols to job ids.
    """
    builder = _span_builder_of(recorder)
    last = builder.last_time
    if len(recorder) == 0 and last <= 0:
        return "(empty trace)"
    horizon = end_time if end_time is not None else last
    if horizon <= 0:
        return "(trace has no duration)"
    bucket = horizon / width

    grid = [[_IDLE] * width for _ in range(node_count)]

    def paint(node: int, start: float, end: float, symbol: str) -> None:
        if node >= node_count:
            return
        first = min(width - 1, max(0, int(start / bucket)))
        last_col = min(width - 1, max(0, int(max(end - 1e-9, start) / bucket)))
        for column in range(first, last_col + 1):
            grid[node][column] = symbol

    for node, start, end in downtime_intervals(recorder, end_time=horizon):
        paint(node, start, end, _DOWN)

    legend: Dict[int, str] = {}
    for interval in occupancy_intervals(recorder, end_time=horizon):
        symbol = legend.setdefault(
            interval.job_id, _SYMBOLS[len(legend) % len(_SYMBOLS)]
        )
        paint(interval.node, interval.start, interval.end, symbol)

    lines = [
        f"t = 0 .. {horizon:.0f}s, one column = {bucket:.0f}s; "
        f"'{_DOWN}' down, '{_IDLE}' idle"
    ]
    for node in range(node_count):
        lines.append(f"node {node:>3} |{''.join(grid[node])}|")
    if legend:
        mapping = ", ".join(
            f"{symbol}=job {job_id}"
            for job_id, symbol in sorted(legend.items())[:20]
        )
        lines.append(f"jobs: {mapping}" + (" ..." if len(legend) > 20 else ""))
    return "\n".join(lines)
