"""Predictor quality evaluation (precision / recall / calibration).

Measures what the paper's accuracy knob abstracts away: given a predictor
and a ground-truth failure trace, how many failures are caught with how much
warning, and how many alarms are spurious.  Used to validate that

* the :class:`~repro.prediction.trace.TracePredictor` realises recall ≈ a
  and precision = 1 by construction, and
* the :class:`~repro.prediction.online.OnlinePredictor` lands in the
  "Sahoo regime" (recall up to ≈0.7 at near-zero false-positive rate) on
  synthetic telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.failures.events import FailureTrace
from repro.obs.audit import CalibrationCurve, CalibrationSummary
from repro.prediction.base import Predictor


@dataclass(frozen=True)
class PredictionQuality:
    """Alarm-level evaluation of a predictor against ground truth.

    Attributes:
        failures: Ground-truth failures examined.
        detected: Failures for which an alarm was raised in their lead
            window on the right node.
        alarms: Total alarms raised across all probe points.
        false_alarms: Alarms not matching any failure in the probe window.
        recall: detected / failures (1.0 when failures == 0).
        precision: (alarms - false_alarms) / alarms (1.0 when alarms == 0).
        calibration: Binned calibration of every alarm's disclosed
            probability against whether the alarm was correct — the same
            :class:`~repro.obs.audit.CalibrationSummary` math (reliability
            bins with Wilson intervals, Brier decomposition, log loss) the
            guarantee audit layer uses.
    """

    failures: int
    detected: int
    alarms: int
    false_alarms: int
    recall: float
    precision: float
    calibration: CalibrationSummary

    @property
    def mean_probability(self) -> float:
        """Mean disclosed probability over scored alarms (back-compat)."""
        return self.calibration.mean_forecast


def evaluate_predictor(
    predictor: Predictor,
    truth: FailureTrace,
    nodes: int,
    lead: float = 1800.0,
    horizon: float = 3600.0,
    probe_step: Optional[float] = None,
    max_probes: int = 2000,
) -> PredictionQuality:
    """Probe a predictor across the trace and score its alarms.

    Protocol: at probe times spaced ``probe_step`` apart (default:
    ``horizon``), ask the predictor for failures over
    ``[t + lead, t + lead + horizon)`` on all nodes.  An alarm is *correct*
    if a ground-truth failure occurs on that node within the probed window;
    a ground-truth failure counts as *detected* if any probe whose window
    covered it alarmed on its node.

    Args:
        predictor: Any :class:`~repro.prediction.base.Predictor`.
        truth: Ground-truth failures.
        nodes: Cluster width (nodes probed at each step).
        lead: Warning time required before the window opens.
        horizon: Probed window length.
        probe_step: Spacing of probe times; defaults to ``horizon`` (the
            windows tile the trace).
        max_probes: Upper bound on probe points (long traces are
            subsampled evenly).
    """
    if len(truth) == 0:
        return PredictionQuality(
            0, 0, 0, 0, 1.0, 1.0, CalibrationCurve().summary()
        )
    step = probe_step if probe_step is not None else horizon
    if step <= 0:
        raise ValueError(f"probe_step must be > 0, got {step}")

    start = truth[0].time - lead - horizon
    end = truth[-1].time + step
    probe_count = int((end - start) / step) + 1
    stride = max(1, probe_count // max_probes)

    node_range = list(range(nodes))
    detected_ids: Set[int] = set()
    alarms = 0
    false_alarms = 0
    # Every alarm's disclosed probability is scored against whether the
    # alarm came true — the shared audit-layer calibration math.
    curve = CalibrationCurve()

    for k in range(0, probe_count, stride):
        t = start + k * step
        window_start = t + lead
        window_end = window_start + horizon
        for alarm in predictor.predicted_failures(node_range, window_start, window_end):
            alarms += 1
            # An alarm is credited when a real failure hits that node inside
            # the probed window, or within one lead of its start: precursor
            # evidence cannot localise a failure to better than its warning
            # span, and an alarm for a failure landing minutes before the
            # window is a correct warning, not a false positive.
            matches = [
                e
                for e in truth.in_window(
                    (alarm.node,), window_start - lead, window_end
                )
            ]
            if matches:
                for event in matches:
                    detected_ids.add(event.event_id)
            else:
                false_alarms += 1
            curve.observe(min(max(alarm.probability, 0.0), 1.0), bool(matches))

    failures = len(truth)
    detected = len(detected_ids)
    return PredictionQuality(
        failures=failures,
        detected=detected,
        alarms=alarms,
        false_alarms=false_alarms,
        recall=detected / failures,
        precision=(alarms - false_alarms) / alarms if alarms else 1.0,
        calibration=curve.summary(),
    )


def recall_by_lead(
    predictor: Predictor,
    truth: FailureTrace,
    nodes: int,
    leads: List[float],
    horizon: float = 3600.0,
) -> List[float]:
    """Recall as a function of required warning time.

    Online predictors degrade as more lead is demanded (precursors fade);
    the trace predictor is lead-invariant by construction.  Returns one
    recall value per entry of ``leads``.
    """
    return [
        evaluate_predictor(predictor, truth, nodes, lead=lead, horizon=horizon).recall
        for lead in leads
    ]
