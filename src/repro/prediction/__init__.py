"""Event-prediction substrate: interfaces, trace oracle, online predictor."""

from repro.prediction.base import (
    NullPredictor,
    PredictedFailure,
    Predictor,
    combine_independent,
)
from repro.prediction.evaluation import (
    PredictionQuality,
    evaluate_predictor,
    recall_by_lead,
)
from repro.prediction.health import (
    EventWindowIndex,
    HealthModel,
    HealthSample,
    THERMAL_SUBSYSTEMS,
)
from repro.prediction.index import FailureIntervalIndex
from repro.prediction.online import OnlinePredictor, OnlinePredictorConfig
from repro.prediction.trace import TracePredictor

__all__ = [
    "NullPredictor",
    "PredictedFailure",
    "Predictor",
    "combine_independent",
    "PredictionQuality",
    "evaluate_predictor",
    "recall_by_lead",
    "EventWindowIndex",
    "HealthModel",
    "HealthSample",
    "THERMAL_SUBSYSTEMS",
    "FailureIntervalIndex",
    "OnlinePredictor",
    "OnlinePredictorConfig",
    "TracePredictor",
]
