"""The paper's trace-based predictor with static detectability.

Section 4.3 specifies the simulation device exactly:

* every failure ``x`` in the log carries a *static detectability*
  ``p_x ∈ [0, 1]`` assigned randomly once (deterministic across runs);
* a query over a node set and window retrieves the matching failures in
  time order; the first with ``p_x ≤ a`` is *detected* and its ``p_x`` is
  returned as the probability of failure; otherwise 0 is returned;
* hence the false-positive rate is 0, the false-negative rate is ``1 − a``,
  and the returned probability never exceeds ``a`` — "a low-accuracy
  predictor should not make predictions with high confidence."

Detectability is keyed on the failure's ``event_id`` via a hash-based
uniform draw (:func:`repro.sim.rng.stable_uniform`), so it is independent of
query order and identical across parameter sweeps with the same seed —
exactly the "deterministic across runs" property the paper relies on when
comparing accuracies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.failures.events import FailureEvent, FailureTrace
from repro.prediction.base import PredictedFailure, Predictor
from repro.sim.rng import stable_uniform


class TracePredictor(Predictor):
    """Oracle-with-blind-spots predictor over a known failure trace.

    Metrics (when a registry is bound): ``prediction.trace.queries``,
    ``prediction.trace.hits``, and the rolling ``prediction.trace.hit_rate``
    gauge — the fraction of window queries that surfaced a detectable
    failure.

    Args:
        trace: The failure log the simulation replays.
        accuracy: The accuracy knob ``a ∈ [0, 1]``; a failure is visible to
            the predictor iff its detectability ``p_x ≤ a``.
        seed: Seed for the detectability assignment; keep it fixed across an
            accuracy sweep so higher accuracy strictly reveals a superset of
            failures.
    """

    _obs_component = "trace"

    def __init__(
        self, trace: FailureTrace, accuracy: float, seed: Optional[int] = None
    ) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        self._trace = trace
        self._accuracy = float(accuracy)
        self._seed = seed
        self._detectability: Dict[int, float] = {
            event.event_id: stable_uniform(f"detectability:{event.event_id}", seed)
            for event in trace
        }
        self._index: Optional["FailureIntervalIndex"] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def accuracy(self) -> float:
        """The accuracy parameter ``a``."""
        return self._accuracy

    @property
    def trace(self) -> FailureTrace:
        """The underlying failure trace."""
        return self._trace

    def detectability(self, event: FailureEvent) -> float:
        """The static ``p_x`` assigned to ``event``."""
        return self._detectability[event.event_id]

    def is_detectable(self, event: FailureEvent) -> bool:
        """Whether this predictor (at its accuracy) can see ``event``."""
        return self._detectability[event.event_id] <= self._accuracy

    # ------------------------------------------------------------------
    # Predictor interface
    # ------------------------------------------------------------------
    def failure_probability(
        self, nodes: Iterable[int], start: float, end: float
    ) -> float:
        """Detectability of the first detectable failure in the window, or 0.

        Matches the paper's retrieval semantics: failures are scanned in
        time order and the first with ``p_x ≤ a`` short-circuits the scan.
        The result is therefore bounded above by ``a``.
        """
        if not self._prof:
            return self._failure_probability(nodes, start, end)
        with self._z_query:
            return self._failure_probability(nodes, start, end)

    def _failure_probability(
        self, nodes: Iterable[int], start: float, end: float
    ) -> float:
        if end <= start:
            return 0.0
        result = 0.0
        for event in self._trace.in_window(nodes, start, end):
            px = self._detectability[event.event_id]
            if px <= self._accuracy:
                result = px
                break
        if self._obs:
            self._record_query(result)
        return result

    def predicted_failures(
        self, nodes: Iterable[int], start: float, end: float
    ) -> List[PredictedFailure]:
        """All detectable failures in the window, in time order."""
        if end <= start:
            return []
        result: List[PredictedFailure] = []
        for event in self._trace.in_window(nodes, start, end):
            px = self._detectability[event.event_id]
            if px <= self._accuracy:
                result.append(
                    PredictedFailure(time=event.time, node=event.node, probability=px)
                )
        return result

    def first_predicted_failure(
        self, nodes: Iterable[int], start: float, end: float
    ) -> Optional[PredictedFailure]:
        """The failure whose ``p_x`` :meth:`failure_probability` would return."""
        if end <= start:
            return None
        for event in self._trace.in_window(nodes, start, end):
            px = self._detectability[event.event_id]
            if px <= self._accuracy:
                return PredictedFailure(
                    time=event.time, node=event.node, probability=px
                )
        return None

    def interval_index(self) -> "FailureIntervalIndex":
        """This predictor's :class:`FailureIntervalIndex`, built lazily.

        The index is a pure function of (trace, detectability, accuracy),
        all immutable here, so one build serves the predictor's lifetime;
        :meth:`with_accuracy` clones re-filter at their own accuracy.
        """
        if self._index is None:
            from repro.prediction.index import FailureIntervalIndex

            self._index = FailureIntervalIndex(
                self._trace, self._detectability, self._accuracy
            )
        return self._index

    def node_failure_term(self, node: int, start: float, end: float) -> float:
        """Per-node term (``p_x`` of the node's first detectable failure).

        Note the trace predictor is *not* survival-decomposable — the
        set-level ``p_f`` is the first-failure detectability, not an
        independent combination — so the fast path uses
        :meth:`interval_index` for set queries and these terms only for
        placement scoring, where they match
        :meth:`node_failure_probability` exactly.
        """
        if end <= start:
            return 0.0
        return self.interval_index().node_term(node, start, end)

    def with_accuracy(self, accuracy: float) -> "TracePredictor":
        """A predictor over the same trace and detectabilities at another
        accuracy (the cheap way to sweep ``a``)."""
        clone = TracePredictor.__new__(TracePredictor)
        clone._trace = self._trace
        clone._accuracy = float(accuracy)
        if not 0.0 <= clone._accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        clone._seed = self._seed
        clone._detectability = self._detectability
        clone._index = None
        return clone
