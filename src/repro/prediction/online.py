"""A working online event predictor (the Sahoo-et-al.-style substrate).

The paper treats prediction as a black box with an accuracy knob, citing
algorithms that combine "linear time series models for the roughly
continuous variables" with "Bayesian correlation models to recognize
patterns in preceding system events", reaching ≈70% recall with negligible
false positives.  Those algorithms are closed, so this module implements a
faithful open equivalent over the library's synthetic telemetry:

* **logical channel** — a severity-weighted sliding-window count of recent
  WARNING/ERROR records per node (:class:`~repro.prediction.health
  .EventWindowIndex`), the event-pattern half;
* **physical channel** — the recent temperature slope from
  :class:`~repro.prediction.health.HealthModel`, the time-series half;
* a logistic combination maps the two scores to a per-node hazard for the
  queried window; per-node hazards combine independently.

Unlike :class:`~repro.prediction.trace.TracePredictor`, this predictor only
sees information available *before* the window starts — it can be wrong in
both directions, and :mod:`repro.prediction.evaluation` measures exactly how
wrong.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.failures.events import RawEvent
from repro.prediction.base import (
    PredictedFailure,
    Predictor,
    combine_independent,
)
from repro.prediction.health import EventWindowIndex, HealthModel

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class OnlinePredictorConfig:
    """Tuning knobs for the online predictor.

    The defaults are calibrated for the "Sahoo regime" the paper cites:
    a *very* low background hazard on healthy nodes (so quoting a promise
    over a long window does not drown it in false risk), with alarms only
    when precursor evidence is strong — precision over recall.

    Attributes:
        event_window: Lookback (seconds) for the logical channel.
        event_scale: Logical score at which that channel saturates one
            unit of logit.
        logical_weight: Logit units contributed by a saturated logical
            channel.
        slope_scale: Temperature slope (deg C/h) for one unit of the
            physical channel.
        physical_weight: Logit units contributed per unit of the physical
            channel.
        bias: Logistic bias; sets the healthy-node background hazard
            (``sigmoid(bias)`` per reference window).
        horizon_reference: Window length (seconds) the hazard is calibrated
            for.  Shorter windows scale the hazard down linearly; longer
            windows do *not* scale it up — precursor knowledge only reaches
            about one window ahead, and a predictor should not grow more
            confident about a horizon it cannot see (the same philosophy as
            the paper's ``p_f <= a`` cap).
        alarm_threshold: Minimum per-node probability to disclose a
            :class:`PredictedFailure` in :meth:`predicted_failures`.
    """

    event_window: float = 3600.0
    event_scale: float = 2.5
    logical_weight: float = 3.0
    slope_scale: float = 8.0
    physical_weight: float = 2.0
    bias: float = -7.0
    horizon_reference: float = 3600.0
    alarm_threshold: float = 0.5


class OnlinePredictor(Predictor):
    """Health-signal predictor over the raw event log + telemetry.

    Args:
        raw_log: The unfiltered event stream (provides the logical channel).
        health: Continuous telemetry model (provides the physical channel).
        config: Tuning; defaults favour precision over recall, matching the
            paper's "negligible rate of false positives" regime.
    """

    _obs_component = "online"

    def __init__(
        self,
        raw_log: Sequence[RawEvent],
        health: Optional[HealthModel] = None,
        config: Optional[OnlinePredictorConfig] = None,
    ) -> None:
        self._index = EventWindowIndex(raw_log)
        self._health = health
        self._config = config if config is not None else OnlinePredictorConfig()

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        super().bind_registry(registry)
        self._c_alarms = registry.counter("prediction.online.alarms")

    @property
    def config(self) -> OnlinePredictorConfig:
        return self._config

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def node_hazard(self, node: int, at_time: float, horizon: float) -> float:
        """Probability node ``node`` fails within ``horizon`` of ``at_time``.

        Only observations strictly before ``at_time`` are used.
        """
        cfg = self._config
        logical = self._index.score(node, at_time, cfg.event_window)
        physical = 0.0
        if self._health is not None:
            physical = max(0.0, self._health.temperature_slope(node, at_time))
        z = (
            cfg.bias
            + cfg.logical_weight * (logical / cfg.event_scale)
            + cfg.physical_weight * (physical / cfg.slope_scale)
        )
        base = 1.0 / (1.0 + math.exp(-z))
        # Shorter windows see proportionally less of the hazard; longer
        # windows never scale it *up* (see config docstring).
        scale = min(1.0, max(horizon, 0.0) / cfg.horizon_reference)
        return min(1.0, base * scale)

    # ------------------------------------------------------------------
    # Predictor interface
    # ------------------------------------------------------------------
    def node_failure_term(self, node: int, start: float, end: float) -> float:
        """The raw per-node hazard (this predictor *is* survival-
        decomposable: ``failure_probability`` combines exactly these terms
        independently, so the fast path's cached reconstruction is
        bit-identical to the probe path)."""
        if end <= start:
            return 0.0
        return self.node_hazard(node, start, end - start)

    def failure_probability(
        self, nodes: Iterable[int], start: float, end: float
    ) -> float:
        if end <= start:
            return 0.0
        horizon = end - start
        hazards = [self.node_hazard(n, start, horizon) for n in nodes]
        result = combine_independent(hazards)
        if self._obs:
            self._record_query(result)
        return result

    def predicted_failures(
        self, nodes: Iterable[int], start: float, end: float
    ) -> List[PredictedFailure]:
        if end <= start:
            return []
        horizon = end - start
        alarms: List[PredictedFailure] = []
        for node in nodes:
            p = self.node_hazard(node, start, horizon)
            if p >= self._config.alarm_threshold:
                # The logical channel cannot localise the time within the
                # window; report the window midpoint as the point estimate.
                alarms.append(
                    PredictedFailure(
                        time=start + horizon / 2.0, node=node, probability=p
                    )
                )
        alarms.sort(key=lambda a: (a.time, a.node))
        if self._obs and alarms:
            self._c_alarms.inc(len(alarms))
        return alarms
