"""Interval index over a trace predictor's detectable failures.

The negotiation fast path (see :mod:`repro.core.fastpath`) needs three
queries answered many times per dialogue, each over a different window:

* the detectability ``p_x`` of the *first* detectable failure on a node
  set — exactly :meth:`~repro.prediction.trace.TracePredictor
  .failure_probability`, the paper's retrieval semantics;
* the per-node variant of the same (the fault-aware placement score);
* a sound upper bound on the promise *any* partition of a given size
  could earn in a window (the candidate-pruning bound).

The trace predictor answers the first two by materialising every failure
in the window and scanning it (``in_window`` allocates a merged, sorted
list per query).  This index pre-filters the trace once — keeping only
failures the predictor can actually see (``p_x <= a``) — and stores, per
failing node, parallel arrays of ``(time, event_id, p_x)`` sorted by
``(time, event_id)``.  Each query then reduces to one ``bisect`` per
node: O(log f) with no allocation, and *bit-identical* results, because
the ``(time, event_id)`` order is exactly the tie-break
:meth:`~repro.failures.events.FailureTrace.in_window` applies.

Undetectable failures (``p_x > a``) are excluded at build time: the
predictor cannot see them, so they can never influence a query result.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.cluster.nodeset import NodeSet
from repro.failures.events import FailureTrace
from repro.prediction.base import PredictedFailure

if TYPE_CHECKING:
    from repro.obs.prof import Profiler, Zone


class FailureIntervalIndex:
    """Per-node sorted detectable-failure arrays with O(log f) lookups.

    Args:
        trace: The failure trace the predictor replays.
        detectability: Static ``p_x`` per ``event_id`` (the trace
            predictor's assignment; sharing it keeps results bit-identical
            across the probe and analytical paths).
        accuracy: The predictor's accuracy ``a``; failures with
            ``p_x > a`` are invisible and therefore not indexed.
    """

    def __init__(
        self,
        trace: FailureTrace,
        detectability: Mapping[int, float],
        accuracy: float,
    ) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        self._accuracy = float(accuracy)
        times: Dict[int, List[float]] = {}
        event_ids: Dict[int, List[int]] = {}
        px: Dict[int, List[float]] = {}
        # ``for_node`` preserves the trace's global (time, event_id) sort,
        # so the per-node arrays inherit exactly the in_window scan order.
        for node in trace.nodes:
            for event in trace.for_node(node):
                value = detectability[event.event_id]
                if value <= self._accuracy:
                    times.setdefault(node, []).append(event.time)
                    event_ids.setdefault(node, []).append(event.event_id)
                    px.setdefault(node, []).append(value)
        self._times = times
        self._event_ids = event_ids
        self._px = px
        #: Nodes carrying at least one detectable failure, ascending; every
        #: other node is clean in every window and never needs scanning.
        self._failing_nodes: List[int] = sorted(times)
        # Profiling (repro.obs.prof): off until bind_profiler.
        self._prof = False
        self._z_query: Optional["Zone"] = None

    def bind_profiler(self, profiler: "Profiler") -> None:
        """Attach a profiler: set queries run in ``prediction.index.query``.

        Binding a null profiler is a no-op (the zone stays unbound and the
        one-bool guard keeps the query path at its uninstrumented cost).
        """
        if profiler.enabled:
            self._prof = True
            self._z_query = profiler.zone("prediction.index.query")

    @property
    def accuracy(self) -> float:
        """The accuracy the index was filtered at."""
        return self._accuracy

    @property
    def detectable_count(self) -> int:
        """Total detectable failures indexed."""
        return sum(len(ts) for ts in self._times.values())

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def _query_order(self, nodes: Iterable[int]) -> Iterable[int]:
        """The cheaper side to iterate for a per-node scan over ``nodes``.

        Only nodes carrying detectable failures can contribute to any
        query, so when a run-length :class:`NodeSet` is wider than the
        failing-node list the scan flips to ``failing ∩ nodes`` — on a
        100k-node partition with a handful of dirty nodes that is a few
        bisections instead of 100k dict probes.  Both orders are ascending
        restrictions of the same set, so results are unchanged.
        """
        if isinstance(nodes, NodeSet) and len(self._failing_nodes) < len(nodes):
            return [n for n in self._failing_nodes if n in nodes]
        return nodes

    def _node_first(
        self, node: int, start: float, end: float
    ) -> Optional[Tuple[float, int, float]]:
        """``(time, event_id, p_x)`` of ``node``'s first detectable failure
        in ``[start, end)``, or None if the node is clean there."""
        times = self._times.get(node)
        if not times:
            return None
        lo = bisect.bisect_left(times, start)
        if lo == len(times) or times[lo] >= end:
            return None
        return times[lo], self._event_ids[node][lo], self._px[node][lo]

    def node_term(self, node: int, start: float, end: float) -> float:
        """``p_x`` of the node's first detectable failure in the window, or 0.

        Bit-identical to ``TracePredictor.node_failure_probability``.
        """
        if end <= start:
            return 0.0
        first = self._node_first(node, start, end)
        return first[2] if first is not None else 0.0

    def first_detectable(
        self, nodes: Iterable[int], start: float, end: float
    ) -> Optional[Tuple[float, int, float, int]]:
        """``(time, event_id, p_x, node)`` of the set's earliest detectable
        failure in ``[start, end)``, minimised by ``(time, event_id)``.

        ``(time, event_id)`` keys are unique across nodes, so the minimum
        is independent of iteration order — which licenses the big-cluster
        fast path: a wide run-length :class:`NodeSet` is intersected with
        the (usually far shorter) failing-node list instead of being walked
        member by member.
        """
        if end <= start:
            return None
        candidates = self._query_order(nodes)
        best: Optional[Tuple[float, int, float, int]] = None
        for node in candidates:
            first = self._node_first(node, start, end)
            if first is None:
                continue
            candidate = (first[0], first[1], first[2], node)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        return best

    def failure_probability(
        self, nodes: Iterable[int], start: float, end: float
    ) -> float:
        """``p_x`` of the first detectable failure on the set, or 0.

        Bit-identical to ``TracePredictor.failure_probability`` — same
        events, same ``(time, event_id)`` tie-break, same float.
        """
        if not self._prof:
            first = self.first_detectable(nodes, start, end)
            return first[2] if first is not None else 0.0
        assert self._z_query is not None
        with self._z_query:
            first = self.first_detectable(nodes, start, end)
            return first[2] if first is not None else 0.0

    def first_predicted(
        self, nodes: Iterable[int], start: float, end: float
    ) -> Optional[PredictedFailure]:
        """The set's earliest detectable failure as a
        :class:`PredictedFailure` (the negotiation jump target)."""
        first = self.first_detectable(nodes, start, end)
        if first is None:
            return None
        return PredictedFailure(time=first[0], node=first[3], probability=first[2])

    def predicted_failures(
        self, nodes: Iterable[int], start: float, end: float
    ) -> List[PredictedFailure]:
        """All detectable failures on the set in the window, time-sorted
        (``TracePredictor.predicted_failures`` semantics)."""
        if end <= start:
            return []
        if isinstance(nodes, NodeSet):
            ordered: Iterable[int] = self._query_order(nodes)
        else:
            ordered = sorted(set(nodes))
        hits: List[Tuple[float, int, float, int]] = []
        for node in ordered:
            times = self._times.get(node)
            if not times:
                continue
            lo = bisect.bisect_left(times, start)
            hi = bisect.bisect_left(times, end)
            for i in range(lo, hi):
                hits.append(
                    (times[i], self._event_ids[node][i], self._px[node][i], node)
                )
        hits.sort(key=lambda h: (h[0], h[1]))
        return [
            PredictedFailure(time=t, node=n, probability=p)
            for t, _, p, n in hits
        ]

    # ------------------------------------------------------------------
    # Pruning bound
    # ------------------------------------------------------------------
    def best_case_probability(
        self, size: int, start: float, end: float, node_count: int
    ) -> float:
        """Sound upper bound on the promise any ``size``-node partition can
        earn in ``[start, end)``.

        Derivation (see DESIGN.md "Analytical negotiation fast path"): the
        set-level ``p_f`` is the ``p_x`` of the partition's earliest
        detectable failure, which is always some member node's *first*
        in-window failure.  With ``k`` dirty nodes (first failure at
        ``t_1 <= ... <= t_k``, detectabilities ``x_1..x_k``) and ``c``
        clean nodes:

        * ``c >= size`` — an all-clean partition exists, best ``p = 1``;
        * otherwise every partition must contain ``m = size - c`` dirty
          nodes, and its earliest-failing member can only be one of the
          first ``k - m + 1`` dirty nodes in time order (later ones cannot
          lead a set that needs ``m`` dirty members), so the best promise
          is ``1 - min(x_1..x_{k-m+1})``.

        Any achievable offer probability is ``<=`` this bound, for every
        topology (supersets of ``size`` only add failures).
        """
        if end <= start:
            return 1.0
        dirty: List[Tuple[float, int, float]] = []
        for node in self._failing_nodes:
            first = self._node_first(node, start, end)
            if first is not None:
                dirty.append(first)
        clean = node_count - len(dirty)
        deficit = size - clean
        if deficit <= 0:
            return 1.0
        if deficit > len(dirty):
            # size exceeds the cluster: no partition exists at all.  Do not
            # prune — the probe path reports infeasibility naturally.
            return 1.0
        dirty.sort(key=lambda d: (d[0], d[1]))
        reachable = dirty[: len(dirty) - deficit + 1]
        return 1.0 - min(d[2] for d in reachable)
