"""Predictor interface.

The paper's predictor contract (Section 3.2): *"The prediction algorithm is
given a set (partition) of nodes and a time window, and returns the
estimated probability of failure."*  Every predictor in the library — the
trace-based simulation device, the null predictor, and the online
health-signal predictor — implements :class:`Predictor`.

A second method, :meth:`Predictor.predicted_failures`, exposes the *times*
of predicted failures in a window.  The scheduler's negotiation loop uses it
to advance candidate start times past a predicted failure instead of probing
blindly, and the checkpointing policy uses the window probability alone.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.obs.prof import Profiler, Zone
    from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class PredictedFailure:
    """One failure a predictor is willing to disclose for a window.

    Attributes:
        time: Predicted failure time (seconds).
        node: Node expected to fail.
        probability: Predictor's confidence the failure occurs, in [0, 1].
    """

    time: float
    node: int
    probability: float

    def __post_init__(self) -> None:
        # The [0, 1] domain is the contract every consumer (negotiation,
        # checkpointing, the QOS301 interval analysis) assumes; enforce it
        # where the prediction enters the system.
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"predicted failure probability {self.probability} "
                "not in [0, 1]"
            )


class Predictor(abc.ABC):
    """Estimates failure probabilities for node sets over time windows."""

    #: Observability flag; flipped by :meth:`bind_registry`.  Hot paths in
    #: concrete predictors guard on this, so unbound predictors pay one
    #: class-attribute test per query and nothing more.
    _obs = False
    #: Component segment of this predictor's metric names
    #: (``prediction.<component>.*``); overridden by subclasses.
    _obs_component = "base"
    #: Profiling flag; flipped by :meth:`bind_profiler`.  Same contract as
    #: :attr:`_obs`: unbound predictors pay one class-attribute test.
    _prof = False

    def bind_profiler(self, profiler: "Profiler") -> None:
        """Attach a :class:`~repro.obs.prof.Profiler`.

        Window queries run inside the ``prediction.<component>.query``
        zone.  Binding a null profiler is a no-op.
        """
        self._prof = profiler.enabled
        self._z_query: "Zone" = profiler.zone(
            f"prediction.{self._obs_component}.query"  # qoslint: disable=QOS111 -- per-component query zones: _obs_component is a fixed lowercase class attribute
        )

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        """Attach a :class:`~repro.obs.registry.MetricsRegistry`.

        Queries and positive predictions are counted under
        ``prediction.<component>.*``, and a rolling hit-rate gauge tracks
        the fraction of window queries that returned a nonzero failure
        probability.  Binding a null registry is a no-op.
        """
        self._obs = registry.enabled
        prefix = f"prediction.{self._obs_component}"
        self._c_queries = registry.counter(prefix + ".queries")
        self._c_hits = registry.counter(prefix + ".hits")
        self._g_hit_rate = registry.gauge(prefix + ".hit_rate")

    def _record_query(self, probability: float) -> None:
        """Count one ``failure_probability`` call (obs-on paths only)."""
        self._c_queries.inc()
        if probability > 0.0:
            self._c_hits.inc()
        self._g_hit_rate.set(self._c_hits.value / self._c_queries.value)

    @abc.abstractmethod
    def failure_probability(
        self, nodes: Iterable[int], start: float, end: float
    ) -> float:
        """Probability that *some* node in ``nodes`` fails in ``[start, end)``.

        Returns 0.0 when no failure is predicted; never raises for empty
        node sets or zero-length windows (both trivially return 0.0).
        """

    @abc.abstractmethod
    def predicted_failures(
        self, nodes: Iterable[int], start: float, end: float
    ) -> List[PredictedFailure]:
        """All failures the predictor discloses in the window, time-sorted.

        ``failure_probability`` must be consistent with this list: it
        reflects the first (earliest) disclosed failure, matching the
        paper's "considers them in order of time" semantics.
        """

    def first_predicted_failure(
        self, nodes: Iterable[int], start: float, end: float
    ) -> Optional[PredictedFailure]:
        """The earliest disclosed failure in the window, or None.

        The negotiation loop only ever needs the first element of
        :meth:`predicted_failures` (the jump target past a predicted
        failure); predictors with an indexed representation override this
        to avoid materialising the full list.
        """
        predicted = self.predicted_failures(nodes, start, end)
        return predicted[0] if predicted else None

    def node_failure_probability(self, node: int, start: float, end: float) -> float:
        """Single-node convenience used for placement scoring."""
        return self.failure_probability((node,), start, end)

    def node_failure_term(self, node: int, start: float, end: float) -> float:
        """Per-node hazard term for survival-decomposable predictors.

        The analytical fast path (:mod:`repro.core.fastpath`) memoises
        these per ``(node, window)`` and combines them independently via
        :func:`combine_independent`.  Predictors whose set-level
        ``failure_probability`` *is* the independent combination of
        per-node hazards (e.g. the online predictor) override this to
        return the raw hazard, making the cached reconstruction
        bit-identical; for others the default single-node query makes the
        reconstruction an independence approximation (see DESIGN.md
        "Analytical negotiation fast path" for the tolerance contract).
        """
        return self.failure_probability((node,), start, end)


class NullPredictor(Predictor):
    """A predictor with no information (the paper's no-forecasting system).

    Equivalent to the trace predictor at accuracy ``a = 0``: it never
    predicts anything, so fault-aware placement degrades to arbitrary
    tie-breaking and risk-based checkpointing sees ``p_f = 0`` everywhere.
    """

    def failure_probability(
        self, nodes: Iterable[int], start: float, end: float
    ) -> float:
        return 0.0

    def predicted_failures(
        self, nodes: Iterable[int], start: float, end: float
    ) -> List[PredictedFailure]:
        return []


def combine_independent(probabilities: Sequence[float]) -> float:
    """Probability that at least one of several independent events occurs.

    Utility for predictors that model per-node hazards independently:
    ``1 - prod(1 - p_i)``, clipped into [0, 1].
    """
    survival = 1.0
    for p in probabilities:
        p = min(max(p, 0.0), 1.0)
        survival *= 1.0 - p
    return 1.0 - survival
