"""System-health monitoring and modelling substrate (paper Section 3.1).

The paper's health monitor collects "physical and logical data about the
state of the machine, including information such as node temperatures, power
consumption, error messages, problem flags, and maintenance schedules" at a
central location, and feeds the event predictor.

This module provides that telemetry for the simulated cluster:

* continuous per-node signals (temperature, load, power) synthesised as
  deterministic functions of ``(node, time, seed)`` — baseline + diurnal
  cycle + node personality + noise — so arbitrarily long histories can be
  sampled lazily without storing them;
* pre-failure signatures: failures whose subsystem is thermal/power-like
  ramp the node's temperature over the preceding hour, giving the online
  time-series model something real to detect (mirroring the linear
  time-series half of the Sahoo et al. predictor);
* the logical event stream (warnings/errors) comes from the raw log
  produced by :func:`repro.failures.generator.generate_raw_log`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.failures.events import FailureTrace, RawEvent, Severity
from repro.sim.rng import stable_uniform

#: Subsystems whose failures exhibit a continuous (temperature) precursor.
THERMAL_SUBSYSTEMS = frozenset({"power", "memory"})


@dataclass(frozen=True)
class HealthSample:
    """One telemetry sample for one node.

    Attributes:
        time: Sample timestamp (seconds).
        node: Node index.
        temperature: Die temperature in degrees Celsius.
        load: CPU load in [0, 1].
        power: Power draw in watts.
    """

    time: float
    node: int
    temperature: float
    load: float
    power: float


class HealthModel:
    """Lazily-evaluated cluster telemetry with pre-failure signatures.

    Args:
        trace: Ground-truth failures; thermal-subsystem failures imprint a
            temperature ramp over :attr:`ramp_lead` seconds before the
            event.
        seed: Seed for per-node personalities and noise.
        base_temperature: Idle die temperature.
        ramp_lead: How long before a thermal failure the ramp starts.
        ramp_magnitude: Peak excess temperature at the failure instant.
    """

    def __init__(
        self,
        trace: FailureTrace,
        seed: Optional[int] = None,
        base_temperature: float = 48.0,
        ramp_lead: float = 3600.0,
        ramp_magnitude: float = 22.0,
    ) -> None:
        self._trace = trace
        self._seed = seed
        self.base_temperature = base_temperature
        self.ramp_lead = ramp_lead
        self.ramp_magnitude = ramp_magnitude
        # Per-node thermal failure times, sorted, for ramp lookup.
        self._thermal_times: Dict[int, List[float]] = {}
        for event in trace:
            if event.subsystem in THERMAL_SUBSYSTEMS:
                self._thermal_times.setdefault(event.node, []).append(event.time)
        for times in self._thermal_times.values():
            times.sort()

    # ------------------------------------------------------------------
    # Continuous signals
    # ------------------------------------------------------------------
    def _personality(self, node: int, trait: str) -> float:
        """Stable per-node offset in [0, 1) for a named trait."""
        return stable_uniform(f"health:{trait}:{node}", self._seed)

    def _noise(self, node: int, time: float, trait: str) -> float:
        """Deterministic pseudo-noise in [-0.5, 0.5) at minute granularity."""
        minute = int(time // 60.0)
        return stable_uniform(f"noise:{trait}:{node}:{minute}", self._seed) - 0.5

    def _ramp(self, node: int, time: float) -> float:
        """Excess temperature from an approaching thermal failure."""
        times = self._thermal_times.get(node)
        if not times:
            return 0.0
        idx = bisect_left(times, time)
        if idx >= len(times):
            return 0.0
        lead = times[idx] - time
        if lead > self.ramp_lead or lead < 0:
            return 0.0
        return self.ramp_magnitude * (1.0 - lead / self.ramp_lead)

    def load(self, node: int, time: float) -> float:
        """CPU load in [0, 1]: diurnal cycle + personality + noise."""
        hours = (time % 86400.0) / 3600.0
        diurnal = 0.5 + 0.3 * math.sin((hours - 9.0) * math.pi / 12.0)
        personality = 0.2 * (self._personality(node, "load") - 0.5)
        noise = 0.2 * self._noise(node, time, "load")
        return min(1.0, max(0.0, diurnal + personality + noise))

    def temperature(self, node: int, time: float) -> float:
        """Die temperature: base + load heating + personality + ramp."""
        heating = 18.0 * self.load(node, time)
        personality = 6.0 * (self._personality(node, "temp") - 0.5)
        noise = 2.0 * self._noise(node, time, "temp")
        return self.base_temperature + heating + personality + noise + self._ramp(
            node, time
        )

    def power(self, node: int, time: float) -> float:
        """Power draw in watts, tracking load."""
        return 120.0 + 160.0 * self.load(node, time) + 10.0 * self._noise(
            node, time, "power"
        )

    def sample(self, node: int, time: float) -> HealthSample:
        """A full telemetry sample for ``(node, time)``."""
        return HealthSample(
            time=time,
            node=node,
            temperature=self.temperature(node, time),
            load=self.load(node, time),
            power=self.power(node, time),
        )

    def temperature_series(
        self, node: int, start: float, end: float, step: float = 300.0
    ) -> List[HealthSample]:
        """Regularly sampled telemetry over ``[start, end)``."""
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        samples = []
        t = start
        while t < end:
            samples.append(self.sample(node, t))
            t += step
        return samples

    def temperature_slope(
        self, node: int, time: float, lookback: float = 3600.0, points: int = 13
    ) -> float:
        """Least-squares slope (deg C per hour) of recent temperature.

        This is the "linear time series model for the roughly continuous
        variables" of the Sahoo predictor, reduced to its decision-relevant
        output: a sustained positive slope flags an impending thermal event.
        """
        if points < 2:
            raise ValueError(f"points must be >= 2, got {points}")
        step = lookback / (points - 1)
        xs = [time - lookback + i * step for i in range(points)]
        ys = [self.temperature(node, x) for x in xs]
        mean_x = sum(xs) / points
        mean_y = sum(ys) / points
        num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        den = sum((x - mean_x) ** 2 for x in xs)
        if den == 0:
            return 0.0
        return (num / den) * 3600.0


class EventWindowIndex:
    """Per-node index over a raw event log for sliding-window queries.

    Supports the logical half of the online predictor: "how many WARNING+
    records did node ``n`` emit in the ``window`` seconds before ``t``?"
    """

    def __init__(self, records: Sequence[RawEvent]) -> None:
        self._times: Dict[int, List[float]] = {}
        self._weights: Dict[int, List[float]] = {}
        self._failure_times: Dict[int, List[float]] = {}
        severity_weight = {
            Severity.WARNING: 1.0,
            Severity.ERROR: 2.5,
            Severity.FATAL: 2.0,
            Severity.FAILURE: 2.0,
        }
        for record in sorted(records, key=lambda r: r.time):
            if record.severity >= Severity.FATAL:
                # The failure already happened; it is a *reset*, not a
                # precursor — post-repair nodes start clean.
                self._failure_times.setdefault(record.node, []).append(record.time)
                continue
            weight = severity_weight.get(record.severity)
            if weight is None:
                continue  # INFO records carry no predictive weight
            self._times.setdefault(record.node, []).append(record.time)
            self._weights.setdefault(record.node, []).append(weight)
        self._prefix: Dict[int, List[float]] = {}
        for node, weights in self._weights.items():
            acc, prefix = 0.0, [0.0]
            for w in weights:
                acc += w
                prefix.append(acc)
            self._prefix[node] = prefix

    def score(self, node: int, time: float, window: float = 3600.0) -> float:
        """Severity-weighted count of precursor events in the lookback.

        The lookback is ``[time - window, time)`` truncated at the node's
        most recent critical (FATAL/FAILURE) record: evidence from before a
        failure-and-repair cycle says nothing about the *next* failure.
        """
        times = self._times.get(node)
        if not times:
            return 0.0
        window_start = time - window
        failures = self._failure_times.get(node)
        if failures:
            idx = bisect_left(failures, time)
            if idx > 0:
                window_start = max(window_start, failures[idx - 1])
        lo = bisect_left(times, window_start)
        hi = bisect_left(times, time)
        prefix = self._prefix[node]
        return prefix[hi] - prefix[lo]
