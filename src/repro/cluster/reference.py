"""Frozen seed implementation of the reservation ledger.

This module preserves the original (pre-optimisation) ledger verbatim:
every query rebuilds its answer from scratch — ``reservations()`` re-sorts
the live bookings, ``node_free`` scans every predecessor interval, and
``find_slot``/``profile`` reconstruct a full :class:`CapacityProfile` per
call.  It exists for two reasons and must not be "improved":

* **Equivalence testing** — the optimised
  :class:`~repro.cluster.reservations.ReservationLedger` must return
  byte-identical ``find_slot`` results and identical ``max_usage`` values
  under any mutation sequence (see
  ``tests/cluster/test_profile_equivalence.py``).
* **Performance baselines** — ``benchmarks/perf/run.py`` times the seed
  code path against the incremental one and records the speedup in
  ``BENCH_ledger.json``.

The one addition over the seed is :meth:`SeedReservationLedger.profile`,
which reproduces exactly what the seed *call sites* did (build a fresh
``CapacityProfile`` from a fresh sort) so the negotiation and scheduling
layers can run unmodified on top of either ledger.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.reservations import (
    CapacityProfile,
    NodeScorer,
    Reservation,
)


class SeedReservationLedger:
    """The seed ledger: correct, simple, and O(n log n) per query."""

    def __init__(self, node_count: int) -> None:
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        self._n = node_count
        # Per-node parallel arrays of (start, end, job_id), sorted by start.
        self._starts: List[List[float]] = [[] for _ in range(node_count)]
        self._ends: List[List[float]] = [[] for _ in range(node_count)]
        self._jobs: List[List[int]] = [[] for _ in range(node_count)]
        self._by_job: Dict[int, Reservation] = {}
        # Sorted multiset of reservation end times (candidate start points).
        self._end_times: List[float] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return self._n

    def __len__(self) -> int:
        return len(self._by_job)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_job

    def get(self, job_id: int) -> Optional[Reservation]:
        return self._by_job.get(job_id)

    def reservations(self) -> List[Reservation]:
        """All live reservations, sorted by start time (fresh sort)."""
        return sorted(self._by_job.values(), key=lambda r: (r.start, r.job_id))

    def profile(self) -> CapacityProfile:
        """A from-scratch capacity profile (what the seed call sites built)."""
        return CapacityProfile(self.reservations())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def reserve(
        self,
        job_id: int,
        nodes: Iterable[int],
        start: float,
        end: float,
        allow_overlap: bool = False,
    ) -> Reservation:
        node_tuple = tuple(sorted(set(nodes)))
        if not node_tuple:
            raise ValueError(f"job {job_id}: empty node set")
        if end <= start:
            raise ValueError(f"job {job_id}: end {end} <= start {start}")
        if job_id in self._by_job:
            raise ValueError(f"job {job_id} already has a reservation")
        for node in node_tuple:
            self._check_node(node)
            if not allow_overlap and not self.node_free(node, start, end):
                raise ValueError(
                    f"job {job_id}: node {node} not free over [{start}, {end})"
                )
        for node in node_tuple:
            idx = bisect.bisect_left(self._starts[node], start)
            self._starts[node].insert(idx, start)
            self._ends[node].insert(idx, end)
            self._jobs[node].insert(idx, job_id)
        reservation = Reservation(job_id=job_id, nodes=node_tuple, start=start, end=end)
        self._by_job[job_id] = reservation
        bisect.insort(self._end_times, end)
        return reservation

    def release(self, job_id: int) -> Reservation:
        reservation = self._by_job.pop(job_id, None)
        if reservation is None:
            raise KeyError(f"job {job_id} has no reservation")
        for node in reservation.nodes:
            idx = self._find_entry(node, job_id)
            del self._starts[node][idx]
            del self._ends[node][idx]
            del self._jobs[node][idx]
        self._remove_end_time(reservation.end)
        return reservation

    def truncate(self, job_id: int, new_end: float) -> Reservation:
        reservation = self._by_job.get(job_id)
        if reservation is None:
            raise KeyError(f"job {job_id} has no reservation")
        if new_end >= reservation.end:
            return reservation
        if new_end <= reservation.start:
            raise ValueError(
                f"job {job_id}: truncation to {new_end} precedes start "
                f"{reservation.start}"
            )
        for node in reservation.nodes:
            idx = self._find_entry(node, job_id)
            self._ends[node][idx] = new_end
        self._remove_end_time(reservation.end)
        bisect.insort(self._end_times, new_end)
        updated = Reservation(job_id, reservation.nodes, reservation.start, new_end)
        self._by_job[job_id] = updated
        return updated

    def extend(self, job_id: int, new_end: float) -> Reservation:
        reservation = self._by_job.get(job_id)
        if reservation is None:
            raise KeyError(f"job {job_id} has no reservation")
        if new_end <= reservation.end:
            return reservation
        for node in reservation.nodes:
            idx = self._find_entry(node, job_id)
            self._ends[node][idx] = new_end
        self._remove_end_time(reservation.end)
        bisect.insort(self._end_times, new_end)
        updated = Reservation(job_id, reservation.nodes, reservation.start, new_end)
        self._by_job[job_id] = updated
        return updated

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_free(self, node: int, start: float, end: float) -> bool:
        """Seed semantics: scan every predecessor interval's end."""
        self._check_node(node)
        starts = self._starts[node]
        ends = self._ends[node]
        idx = bisect.bisect_left(starts, end)
        for k in range(idx - 1, -1, -1):
            if ends[k] > start:
                return False
        return True

    def free_nodes(self, start: float, end: float) -> List[int]:
        return [n for n in range(self._n) if self.node_free(n, start, end)]

    def busy_jobs_at(self, time: float) -> List[int]:
        return sorted(
            r.job_id
            for r in self._by_job.values()
            if r.start <= time < r.end
        )

    def candidate_times(self, earliest: float, limit: Optional[int] = None) -> List[float]:
        idx = bisect.bisect_right(self._end_times, earliest)
        tail = self._end_times[idx:]
        times = [earliest]
        last = earliest
        for t in tail:
            if t > last:
                times.append(t)
                last = t
        if limit is not None:
            times = times[:limit]
        return times

    def find_slot(
        self,
        size: int,
        duration: float,
        earliest: float,
        scorer: Optional[NodeScorer] = None,
    ) -> Tuple[float, List[int]]:
        """Seed semantics: rebuild the capacity profile from a full sort."""
        if size > self._n:
            raise ValueError(f"requested {size} nodes on a {self._n}-node cluster")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")

        profile = CapacityProfile(self.reservations())
        for start in self.candidate_times(earliest):
            if not profile.window_fits(start, start + duration, size, self._n):
                continue
            free = self.free_nodes(start, start + duration)
            if len(free) >= size:
                chosen = self._select(free, size, start, start + duration, scorer)
                return start, chosen
        raise RuntimeError("no feasible slot found past the final booking")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _select(
        self,
        free: Sequence[int],
        size: int,
        start: float,
        end: float,
        scorer: Optional[NodeScorer],
    ) -> List[int]:
        if scorer is None:
            return list(free[:size])
        scored = sorted(free, key=lambda n: (scorer(n, start, end), n))
        return sorted(scored[:size])

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise ValueError(f"node {node} out of range [0, {self._n})")

    def _find_entry(self, node: int, job_id: int) -> int:
        """Seed semantics: linear scan for the job's interval."""
        for idx, jid in enumerate(self._jobs[node]):
            if jid == job_id:
                return idx
        raise KeyError(f"job {job_id} has no interval on node {node}")

    def _remove_end_time(self, end: float) -> None:
        idx = bisect.bisect_left(self._end_times, end)
        if idx < len(self._end_times) and self._end_times[idx] == end:
            del self._end_times[idx]
