"""Run-length encoded node sets for big-cluster placements.

At paper scale (128 nodes) a partition is a short tuple of indexes and
every representation is cheap.  At 10k-100k nodes the substrate would
otherwise materialise 100k-element Python lists on every ``free_nodes``
probe and every booking — ~1 MB and a full scan per query.  A
:class:`NodeSet` stores the same set as sorted half-open ``[start, stop)``
runs: a first-fit placement of 64k nodes is a handful of ranges, and
set algebra (union / intersection / difference) runs in O(runs), not
O(nodes).

Compatibility contract
----------------------
The rest of the codebase passes node sets around as sorted tuples or
lists (``Reservation.nodes``, ``DeadlineOffer.nodes``,
``QoSGuarantee.planned_nodes``).  ``NodeSet`` is a drop-in for those
uses:

* it iterates ascending, supports ``len``, ``in``, indexing and
  step-1 slicing (``free[:size]`` stays a ``NodeSet``);
* ``==`` compares elementwise against any sequence of ints, so a
  ``NodeSet`` equals the tuple/list holding the same nodes — this is what
  keeps the seed-ledger equivalence benches and the existing tests
  working unchanged;
* ``hash`` matches ``hash(tuple(self))`` so equal values stay
  interchangeable as dict keys (computed lazily, O(n) once).

Determinism: all operations are pure functions of the run lists; no set
or dict iteration is involved anywhere (lint rule QOS103).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union, overload

#: A half-open interval of node indexes: ``start <= n < stop``.
Run = Tuple[int, int]


def _runs_from_sorted(values: Sequence[int]) -> List[Run]:
    """Group an ascending, duplicate-free index sequence into runs."""
    runs: List[Run] = []
    if not values:
        return runs
    run_start = prev = values[0]
    for v in values[1:]:
        if v == prev + 1:
            prev = v
            continue
        runs.append((run_start, prev + 1))
        run_start = prev = v
    runs.append((run_start, prev + 1))
    return runs


class NodeSet:
    """An immutable set of node indexes stored as sorted interval runs."""

    __slots__ = ("_runs", "_starts", "_size", "_hash")

    def __init__(self, runs: Iterable[Run] = ()) -> None:
        """Build from *normalised* runs: sorted, non-empty, non-adjacent,
        non-overlapping.  Use :meth:`from_iterable` for arbitrary input."""
        run_list = list(runs)
        size = 0
        prev_stop: Optional[int] = None
        for start, stop in run_list:
            if stop <= start:
                raise ValueError(f"empty or inverted run [{start}, {stop})")
            if prev_stop is not None and start <= prev_stop:
                raise ValueError(
                    f"runs not normalised: [{start}, {stop}) touches or "
                    f"overlaps the previous run ending at {prev_stop}"
                )
            size += stop - start
            prev_stop = stop
        self._runs: Tuple[Run, ...] = tuple(run_list)
        # Parallel array of run starts for O(log runs) membership tests.
        self._starts: List[int] = [r[0] for r in run_list]
        self._size = size
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_iterable(cls, nodes: Iterable[int]) -> "NodeSet":
        """Normalise arbitrary (unsorted, possibly duplicated) indexes."""
        if isinstance(nodes, NodeSet):
            return nodes
        return cls(_runs_from_sorted(sorted(set(nodes))))

    @classmethod
    def from_sorted(cls, values: Sequence[int]) -> "NodeSet":
        """Build from an ascending, duplicate-free sequence (unchecked)."""
        return cls(_runs_from_sorted(values))

    @classmethod
    def interval(cls, start: int, stop: int) -> "NodeSet":
        """The contiguous set ``{start, ..., stop - 1}`` (empty if degenerate)."""
        if stop <= start:
            return cls()
        return cls(((start, stop),))

    @classmethod
    def full(cls, node_count: int) -> "NodeSet":
        """Every node of an ``node_count``-wide cluster."""
        return cls.interval(0, node_count)

    # ------------------------------------------------------------------
    # Sequence protocol (ascending iteration order)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[int]:
        for start, stop in self._runs:
            yield from range(start, stop)

    def __contains__(self, node: object) -> bool:
        if not isinstance(node, int):
            return False
        idx = bisect.bisect_right(self._starts, node) - 1
        return idx >= 0 and node < self._runs[idx][1]

    @overload
    def __getitem__(self, index: int) -> int: ...

    @overload
    def __getitem__(self, index: slice) -> "NodeSet": ...

    def __getitem__(self, index: Union[int, slice]) -> Union[int, "NodeSet"]:
        if isinstance(index, slice):
            start, stop, step = index.indices(self._size)
            if step != 1:
                raise ValueError("NodeSet slicing supports step 1 only")
            return self._slice(start, stop)
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError("NodeSet index out of range")
        remaining = index
        for run_start, run_stop in self._runs:
            width = run_stop - run_start
            if remaining < width:
                return run_start + remaining
            remaining -= width
        raise IndexError("NodeSet index out of range")  # pragma: no cover

    def _slice(self, start: int, stop: int) -> "NodeSet":
        """Elements with iteration rank in ``[start, stop)``, as a NodeSet."""
        if stop <= start:
            return NodeSet()
        runs: List[Run] = []
        skip = start
        take = stop - start
        for run_start, run_stop in self._runs:
            width = run_stop - run_start
            if skip >= width:
                skip -= width
                continue
            lo = run_start + skip
            skip = 0
            hi = min(run_stop, lo + take)
            runs.append((lo, hi))
            take -= hi - lo
            if take == 0:
                break
        return NodeSet(runs)

    # ------------------------------------------------------------------
    # Equality / hashing (tuple-compatible)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, NodeSet):
            return self._runs == other._runs
        if isinstance(other, (tuple, list)):
            if len(other) != self._size:
                return False
            it = iter(self)
            for value in other:
                if value != next(it):
                    return False
            return True
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(self))  # qoslint: disable=QOS110 -- dict/set-key hashing only, must equal tuple.__hash__; never persisted or fed to sim state
        return self._hash

    def __repr__(self) -> str:
        parts = ", ".join(
            str(a) if b == a + 1 else f"{a}-{b - 1}" for a, b in self._runs
        )
        return f"NodeSet([{parts}])"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def runs(self) -> Tuple[Run, ...]:
        """The normalised ``(start, stop)`` half-open runs."""
        return self._runs

    @property
    def run_count(self) -> int:
        return len(self._runs)

    @property
    def min_node(self) -> int:
        """Smallest member (O(1)); raises ValueError on the empty set."""
        if not self._runs:
            raise ValueError("empty NodeSet has no minimum")
        return self._runs[0][0]

    @property
    def max_node(self) -> int:
        """Largest member (O(1)); raises ValueError on the empty set."""
        if not self._runs:
            raise ValueError("empty NodeSet has no maximum")
        return self._runs[-1][1] - 1

    def to_list(self) -> List[int]:
        """Materialise as an ascending list (the legacy representation)."""
        return list(self)

    # ------------------------------------------------------------------
    # Set algebra (all O(runs of self + runs of other))
    # ------------------------------------------------------------------
    def union(self, other: "NodeSet") -> "NodeSet":
        merged: List[Run] = []
        for start, stop in sorted(self._runs + other._runs):
            if merged and start <= merged[-1][1]:
                if stop > merged[-1][1]:
                    merged[-1] = (merged[-1][0], stop)
            else:
                merged.append((start, stop))
        return NodeSet(merged)

    def intersection(self, other: "NodeSet") -> "NodeSet":
        result: List[Run] = []
        i = j = 0
        a, b = self._runs, other._runs
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                result.append((lo, hi))
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return NodeSet(result)

    def difference(self, other: "NodeSet") -> "NodeSet":
        result: List[Run] = []
        j = 0
        b = other._runs
        for start, stop in self._runs:
            cursor = start
            while j < len(b) and b[j][1] <= cursor:
                j += 1
            k = j
            while k < len(b) and b[k][0] < stop:
                if b[k][0] > cursor:
                    result.append((cursor, b[k][0]))
                cursor = max(cursor, b[k][1])
                if cursor >= stop:
                    break
                k += 1
            if cursor < stop:
                result.append((cursor, stop))
        return NodeSet(result)

    def __or__(self, other: "NodeSet") -> "NodeSet":
        return self.union(other)

    def __and__(self, other: "NodeSet") -> "NodeSet":
        return self.intersection(other)

    def __sub__(self, other: "NodeSet") -> "NodeSet":
        return self.difference(other)

    def isdisjoint(self, other: "NodeSet") -> bool:
        i = j = 0
        a, b = self._runs, other._runs
        while i < len(a) and j < len(b):
            if a[i][1] <= b[j][0]:
                i += 1
            elif b[j][1] <= a[i][0]:
                j += 1
            else:
                return False
        return True


def freeze_nodes(nodes: Iterable[int]) -> Sequence[int]:
    """Normalise a node collection for storage on immutable records.

    ``NodeSet`` inputs pass through untouched (already immutable and
    ascending); anything else becomes the legacy sorted-unique tuple.
    Used where offers/reservations/guarantees capture their partition.
    """
    if isinstance(nodes, NodeSet):
        return nodes
    if isinstance(nodes, tuple):
        return nodes
    return tuple(nodes)
