"""Node-level reservation ledger (the scheduler's free-time profile).

Conservative backfilling — which is what a scheduler that *promises
deadlines at submission* must do — books a concrete ``(node set, start,
end)`` reservation for every job the moment it is negotiated.  The ledger
stores those bookings as per-node interval lists and answers the two
questions the scheduler and the negotiation loop ask:

* *"What is the earliest time at or after ``t`` at which ``n`` nodes are
  simultaneously free for ``d`` seconds, and which nodes?"*
  (:meth:`ReservationLedger.find_slot`) — candidate start times only need to
  be examined at ``t`` itself and at reservation end points, because free
  capacity changes nowhere else;
* *"Is this exact window still free on these nodes?"* for requeue placement.

Reservations are immutable once made except for two paper-sanctioned
adjustments: an early *release* when a job finishes ahead of its padded
estimate (skipped checkpoints), and an *extension* when a start is delayed
by a node still in its 120 s repair window.  Extensions may overlap a later
booking; the conflict resolves at start time (the runtime layer starts jobs
only when their nodes are actually free), mirroring how the paper's
scheduler never re-optimises the future schedule.

Performance model
-----------------
The negotiation dialogue probes the ledger up to ``max_offers`` times per
submission while mutating it at most a handful of times per job, so the
ledger is read-dominated by two to three orders of magnitude.  The
structures below exploit that asymmetry (see DESIGN.md "Performance" and
"Scaling the substrate"):

* the aggregate usage *skyline* is kept as an incrementally maintained
  delta map; :meth:`ReservationLedger.profile` materialises it into a
  :class:`CapacityProfile` — flat ``array``-module boundary/level arrays
  with a block-decomposed range maximum — once per mutation generation
  and serves every later call from cache in O(1);
* each node carries a prefix-maximum over its interval end times, making
  :meth:`ReservationLedger.node_free` a pure O(log k) bisection even after
  :meth:`ReservationLedger.extend` has destroyed the sortedness of ends;
* per-node interval lists live in dicts keyed by node and a sorted
  *booked-node* list is maintained incrementally, so every cost scales
  with the number of nodes actually carrying bookings — never with the
  cluster width.  A 100k-node ledger with a hundred live jobs costs the
  same as a 1k-node one;
* free-node queries answer in run-length :class:`~repro.cluster.nodeset
  .NodeSet` form (:meth:`ReservationLedger.free_nodes_set`), and the
  scorerless ``find_slot`` path stops scanning as soon as the requested
  width is covered, so a first-fit placement on a mostly-idle big cluster
  touches a handful of runs instead of materialising 100k-element lists;
* mutations locate a job's per-node interval by bisecting on the known
  reservation start instead of scanning the interval list.
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass

import numpy as np
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cluster.nodeset import NodeSet
from repro.obs.prof import NULL_PROFILER, Profiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

#: Scoring callback: (node, start, end) -> sort key; lower is preferred.
NodeScorer = Callable[[int, float, float], float]

#: What ``find_slot`` returns for the chosen partition: a run-length
#: :class:`NodeSet` on the scorerless path, a sorted list when a scorer
#: ranked individual nodes.  Both iterate ascending and compare equal to
#: the legacy list representation.
ChosenNodes = Union[NodeSet, List[int]]


class CapacityProfile:
    """Aggregate usage over time, for cheap infeasibility prefiltering.

    ``max_usage(start, end)`` bounds the nodes simultaneously booked in the
    window from *below* the true per-node constraint: a window can pass the
    capacity test yet still fail node-level availability (two nodes each
    busy for half the window leave zero nodes free *throughout* it), so a
    passing window must still be verified with
    :meth:`ReservationLedger.free_nodes` — but a failing window is failing
    for sure, and in deep-queue phases almost every candidate fails here,
    skipping the expensive per-node scan.

    Storage is two flat ``array`` buffers (``'d'`` boundaries, ``'q'``
    levels) plus per-block maxima: O(k) to build — a million-boundary
    skyline is ~16 MB instead of a forest of boxed floats — and range
    maxima answer from two boundary bisections plus at most two partial
    blocks and one scan over the block-maximum array.

    Construct from a reservation list, or from an already-maintained delta
    map via :meth:`from_deltas` (the ledger's incremental path).
    """

    #: Usage entries per maximum block.  64 keeps partial-block scans
    #: short while the block array stays k/64 long; queries cost ~2·64
    #: element visits regardless of skyline size.
    _BLOCK = 64

    def __init__(self, reservations: Sequence["Reservation"]) -> None:
        deltas: Dict[float, int] = {}
        for r in reservations:
            width = len(r.nodes)
            deltas[r.start] = deltas.get(r.start, 0) + width
            deltas[r.end] = deltas.get(r.end, 0) - width
        self._build(deltas)

    @classmethod
    def from_deltas(cls, deltas: Dict[float, int]) -> "CapacityProfile":
        """Materialise a profile from a ``{time: usage delta}`` map."""
        profile = cls.__new__(cls)
        profile._build(deltas)
        return profile

    def _build(self, deltas: Dict[float, int]) -> None:
        # Vector path pays off once fromiter/argsort amortise their fixed
        # cost; below that the plain loop wins.  Both produce byte-identical
        # arrays (int64 cumsum is exact), so the cutover is invisible.
        if len(deltas) >= 64:
            self._build_vector(deltas)
            return
        # Zero deltas (e.g. one booking ending exactly where another
        # starts) change no level and can be dropped.
        boundaries = sorted(t for t, d in deltas.items() if d)
        self._boundaries = array("d", boundaries)
        usage = array("q", bytes(8 * len(boundaries)))
        level = 0
        for i, t in enumerate(boundaries):
            level += deltas[t]
            usage[i] = level
        # usage[i] holds on [boundaries[i], boundaries[i+1]).
        self._usage = usage
        block = self._BLOCK
        self._block_max = array(
            "q",
            (
                max(usage[i : i + block])
                for i in range(0, len(usage), block)
            ),
        )

    def _build_vector(self, deltas: Dict[float, int]) -> None:
        """Vectorised :meth:`_build`: sort/cumsum/block-max in numpy.

        Boundary times are unique dict keys, so the argsort permutation is
        unambiguous, and the running levels are an exact int64 cumsum —
        the resulting buffers are byte-for-byte the ones the scalar loop
        produces.
        """
        count = len(deltas)
        times = np.fromiter(deltas.keys(), dtype=np.float64, count=count)
        changes = np.fromiter(deltas.values(), dtype=np.int64, count=count)
        live = changes != 0
        times = times[live]
        changes = changes[live]
        order = np.argsort(times)
        times = times[order]
        usage = np.cumsum(changes[order])
        self._boundaries = array("d")
        self._boundaries.frombytes(times.tobytes())
        self._usage = array("q")
        self._usage.frombytes(usage.tobytes())
        self._block_max = array("q")
        if len(usage):
            block_starts = np.arange(0, len(usage), self._BLOCK)
            self._block_max.frombytes(
                np.maximum.reduceat(usage, block_starts).tobytes()
            )

    def max_usage(self, start: float, end: float) -> int:
        """Maximum booked node count over ``[start, end)``."""
        if not self._usage:
            return 0
        # Segment whose interval contains `start` (usage before the first
        # boundary is 0).
        lo = bisect.bisect_right(self._boundaries, start) - 1
        hi = bisect.bisect_left(self._boundaries, end) - 1
        if hi < 0:
            return 0
        lo = max(lo, 0)
        if lo > hi:
            # Window entirely inside one pre-first-boundary gap.
            return self._usage[hi] if hi >= 0 else 0
        return self._range_max(lo, hi)

    def _range_max(self, lo: int, hi: int) -> int:
        """Maximum of ``_usage[lo..hi]`` (inclusive) via block decomposition."""
        block = self._BLOCK
        usage = self._usage
        b_lo = lo // block
        b_hi = hi // block
        if b_hi - b_lo <= 1:
            return max(usage[lo : hi + 1])
        best = max(usage[lo : (b_lo + 1) * block])
        mid = self._block_max[b_lo + 1 : b_hi]
        if mid:
            mid_max = max(mid)
            if mid_max > best:
                best = mid_max
        tail = max(usage[b_hi * block : hi + 1])
        return tail if tail > best else best

    def window_fits(self, start: float, end: float, free_needed: int, total: int) -> bool:
        """Capacity prefilter: can ``free_needed`` nodes possibly be free?"""
        return total - self.max_usage(start, end) >= free_needed


@dataclass
class Reservation:
    """A booked slot: ``job_id`` holds ``nodes`` during ``[start, end)``.

    ``nodes`` is an ascending sequence — the legacy sorted tuple, or a
    run-length :class:`NodeSet` when the booking came through the
    NodeSet-aware fast path; the two compare equal for the same members.
    """

    job_id: int
    nodes: Sequence[int]
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class ReservationLedger:
    """Per-node interval book-keeping over a fixed-width cluster.

    Args:
        node_count: Cluster width N; node indexes are ``0..N-1``.
        registry: Optional obs registry; when live, the ledger records its
            probe volume, prefilter effectiveness, and profile-cache hit
            rate under ``cluster.ledger.*`` (see DESIGN.md
            "Observability").
        profiler: Optional hierarchical profiler (:mod:`repro.obs.prof`);
            when live, ``find_slot``/``reserve`` calls and profile
            rebuilds run inside ``cluster.ledger.*`` zones.
    """

    def __init__(
        self,
        node_count: int,
        registry: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        self._n = node_count
        self._full = NodeSet.full(node_count)
        # Per-node parallel arrays of (start, end, job_id), sorted by start,
        # held only for nodes that actually carry bookings — construction
        # and memory are O(live bookings), not O(cluster width).
        self._starts: Dict[int, List[float]] = {}
        self._ends: Dict[int, List[float]] = {}
        self._jobs: Dict[int, List[int]] = {}
        # Prefix maxima over _ends: _pmax_ends[n][i] = max(_ends[n][:i+1]).
        # Ends are not sorted once extend() has run; the prefix maximum is
        # what makes node_free a single bisection regardless.
        self._pmax_ends: Dict[int, List[float]] = {}
        # Ascending nodes carrying at least one interval; maintained
        # incrementally so free-node scans touch booked nodes only.
        self._booked: List[int] = []
        # Every live booking's node runs, sorted by node interval:
        # (node_lo, node_hi, start, end, job_id).  Free-set queries sweep
        # this when it is shorter than the booked-node list — on a big
        # cluster running wide jobs the run count is an order of magnitude
        # below the booked-node count, and the sweep needs no per-node
        # bisections at all.
        self._busy_runs: List[Tuple[int, int, float, float, int]] = []
        self._by_job: Dict[int, Reservation] = {}
        # Sorted multiset of reservation end times (candidate start points).
        self._end_times: List[float] = []
        # Aggregate usage skyline, maintained incrementally: time -> net
        # change in booked node count at that instant (zero entries pruned).
        self._deltas: Dict[float, int] = {}
        # Cache generations: every mutation bumps _version; the profile and
        # the sorted reservation view rebuild at most once per generation.
        self._version = 0
        self._profile: Optional[CapacityProfile] = None
        self._profile_version = -1
        self._sorted: Optional[List[Reservation]] = None
        # Observability: instruments bound once; hot paths gate on _obs so
        # the default null registry costs a single bool test per call.
        registry = registry if registry is not None else NULL_REGISTRY
        self._obs = registry.enabled
        self._c_find_slot = registry.counter("cluster.ledger.find_slot_calls")
        self._c_probes = registry.counter("cluster.ledger.probes")
        self._c_prefilter_rejects = registry.counter(
            "cluster.ledger.prefilter_rejects"
        )
        self._c_profile_hits = registry.counter("cluster.ledger.profile_cache_hits")
        self._c_profile_misses = registry.counter(
            "cluster.ledger.profile_cache_misses"
        )
        self._c_mutations = registry.counter("cluster.ledger.mutations")
        self._h_probe_depth = registry.histogram("cluster.ledger.probe_depth")
        self._g_reservations = registry.gauge("cluster.ledger.reservations")
        self._g_skyline = registry.gauge("cluster.ledger.skyline_size")
        # Profiling: zones bound once, gated on one bool like the registry.
        profiler = profiler if profiler is not None else NULL_PROFILER
        self._prof = profiler.enabled
        self._z_find_slot = profiler.zone("cluster.ledger.find_slot")
        self._z_reserve = profiler.zone("cluster.ledger.reserve")
        self._z_profile_rebuild = profiler.zone("cluster.ledger.profile_rebuild")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return self._n

    def __len__(self) -> int:
        return len(self._by_job)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_job

    def get(self, job_id: int) -> Optional[Reservation]:
        """The reservation for ``job_id``, or None."""
        return self._by_job.get(job_id)

    def reservations(self) -> List[Reservation]:
        """All live reservations, sorted by start time.

        The sorted view is cached between mutations; callers receive a
        fresh copy they may mutate freely.
        """
        if self._sorted is None:
            self._sorted = sorted(
                self._by_job.values(), key=lambda r: (r.start, r.job_id)
            )
        return list(self._sorted)

    def profile(self) -> CapacityProfile:
        """The current capacity profile (cached between mutations).

        The skyline deltas are maintained incrementally by every mutation;
        this method only pays to materialise boundary/level arrays (and the
        block maxima) on the first call after a mutation.  During a
        negotiation dialogue — hundreds of probes, zero mutations — every
        call after the first is O(1).
        """
        if self._profile is None or self._profile_version != self._version:
            if self._prof:
                with self._z_profile_rebuild:
                    self._profile = CapacityProfile.from_deltas(self._deltas)
            else:
                self._profile = CapacityProfile.from_deltas(self._deltas)
            self._profile_version = self._version
            if self._obs:
                self._c_profile_misses.inc()
        elif self._obs:
            self._c_profile_hits.inc()
        return self._profile

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def reserve(
        self,
        job_id: int,
        nodes: Iterable[int],
        start: float,
        end: float,
        allow_overlap: bool = False,
    ) -> Reservation:
        """Book ``nodes`` for ``job_id`` over ``[start, end)``.

        A :class:`NodeSet` argument is taken as already normalised
        (ascending, duplicate-free) and skips the sort entirely — the hot
        path for placements coming straight out of :meth:`find_slot`.
        Any other iterable pays the legacy ``tuple(sorted(set(...)))``.

        Args:
            allow_overlap: Skip the free-window validation.  Only for
                *restoring* a previously held booking that may legally
                overlap another job's :meth:`extend`-ed interval; overlaps
                resolve at start time in the runtime layer.

        Raises:
            ValueError: On overlap with an existing booking (unless
                ``allow_overlap``), a duplicate job id, an out-of-range
                node, or a degenerate window.
        """
        if not self._prof:
            return self._reserve(job_id, nodes, start, end, allow_overlap)
        with self._z_reserve:
            return self._reserve(job_id, nodes, start, end, allow_overlap)

    def _reserve(
        self,
        job_id: int,
        nodes: Iterable[int],
        start: float,
        end: float,
        allow_overlap: bool,
    ) -> Reservation:
        node_seq: Sequence[int]
        if isinstance(nodes, NodeSet):
            node_seq = nodes
        else:
            node_seq = tuple(sorted(set(nodes)))
        if not node_seq:
            raise ValueError(f"job {job_id}: empty node set")
        if end <= start:
            raise ValueError(f"job {job_id}: end {end} <= start {start}")
        if job_id in self._by_job:
            raise ValueError(f"job {job_id} already has a reservation")
        # Ascending input: bounds-checking the extremes covers every node.
        self._check_node(node_seq[0])
        self._check_node(node_seq[-1])
        if not allow_overlap:
            # Only booked nodes can conflict; unbooked members are free by
            # definition, so validation scans the (sorted) intersection of
            # the request with the booked-node list — sublinear in the
            # partition width on a big, mostly-idle cluster.
            for node in self._booked_within(node_seq):
                if not self.node_free(node, start, end):
                    raise ValueError(
                        f"job {job_id}: node {node} not free over [{start}, {end})"
                    )
        fresh: List[int] = []
        for node in node_seq:
            starts = self._starts.get(node)
            if starts is None:
                self._starts[node] = [start]
                self._ends[node] = [end]
                self._jobs[node] = [job_id]
                self._pmax_ends[node] = [end]
                fresh.append(node)
                continue
            idx = bisect.bisect_left(starts, start)
            starts.insert(idx, start)
            self._ends[node].insert(idx, end)
            self._jobs[node].insert(idx, job_id)
            self._pmax_ends[node].insert(idx, end)
            self._refresh_pmax(node, idx)
        for node in fresh:
            bisect.insort(self._booked, node)
        reservation = Reservation(job_id=job_id, nodes=node_seq, start=start, end=end)
        self._by_job[job_id] = reservation
        for lo, hi in self._node_runs(node_seq):
            bisect.insort(self._busy_runs, (lo, hi, start, end, job_id))
        bisect.insort(self._end_times, end)
        width = len(node_seq)
        self._shift_delta(start, width)
        self._shift_delta(end, -width)
        self._invalidate()
        return reservation

    def release(self, job_id: int) -> Reservation:
        """Drop a job's booking entirely (finish, kill, or cancellation)."""
        reservation = self._by_job.pop(job_id, None)
        if reservation is None:
            raise KeyError(f"job {job_id} has no reservation")
        for node in reservation.nodes:
            idx = self._find_entry(node, job_id, reservation.start)
            starts = self._starts[node]
            del starts[idx]
            del self._ends[node][idx]
            del self._jobs[node][idx]
            del self._pmax_ends[node][idx]
            if starts:
                self._refresh_pmax(node, idx)
            else:
                self._drop_node(node)
        for lo, hi in self._node_runs(reservation.nodes):
            self._remove_busy_run(
                (lo, hi, reservation.start, reservation.end, reservation.job_id)
            )
        self._remove_end_time(reservation.end)
        width = len(reservation.nodes)
        self._shift_delta(reservation.start, -width)
        self._shift_delta(reservation.end, width)
        self._invalidate()
        return reservation

    def truncate(self, job_id: int, new_end: float) -> Reservation:
        """Shrink a booking's end (job finished earlier than estimated).

        The freed tail becomes available to subsequent ``find_slot`` calls —
        this is where skipped checkpoints buy the system schedule slack.
        """
        reservation = self._by_job.get(job_id)
        if reservation is None:
            raise KeyError(f"job {job_id} has no reservation")
        if new_end >= reservation.end:
            return reservation
        if new_end <= reservation.start:
            raise ValueError(
                f"job {job_id}: truncation to {new_end} precedes start "
                f"{reservation.start}"
            )
        return self._resize(reservation, new_end)

    def extend(self, job_id: int, new_end: float) -> Reservation:
        """Grow a booking's end (start delayed by repair, overrun).

        Unlike :meth:`reserve`, overlap with later bookings is tolerated;
        the runtime layer serialises conflicting starts on actual node
        availability.
        """
        reservation = self._by_job.get(job_id)
        if reservation is None:
            raise KeyError(f"job {job_id} has no reservation")
        if new_end <= reservation.end:
            return reservation
        return self._resize(reservation, new_end)

    def _resize(self, reservation: Reservation, new_end: float) -> Reservation:
        """Shared tail of truncate/extend: move ``end`` to ``new_end``."""
        job_id = reservation.job_id
        for node in reservation.nodes:
            idx = self._find_entry(node, job_id, reservation.start)
            self._ends[node][idx] = new_end
            self._refresh_pmax(node, idx)
        for lo, hi in self._node_runs(reservation.nodes):
            self._remove_busy_run(
                (lo, hi, reservation.start, reservation.end, job_id)
            )
            bisect.insort(
                self._busy_runs, (lo, hi, reservation.start, new_end, job_id)
            )
        self._remove_end_time(reservation.end)
        bisect.insort(self._end_times, new_end)
        width = len(reservation.nodes)
        self._shift_delta(reservation.end, width)
        self._shift_delta(new_end, -width)
        self._invalidate()
        updated = Reservation(job_id, reservation.nodes, reservation.start, new_end)
        self._by_job[job_id] = updated
        return updated

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_free(self, node: int, start: float, end: float) -> bool:
        """True if ``node`` has no booking overlapping ``[start, end)``.

        An interval overlaps iff it starts before ``end`` and ends after
        ``start``; the prefix maximum over ends of all intervals starting
        before ``end`` answers "does any end exceed ``start``" in O(1)
        after one bisection.
        """
        self._check_node(node)
        starts = self._starts.get(node)
        if starts is None:
            return True
        idx = bisect.bisect_left(starts, end)
        return idx == 0 or self._pmax_ends[node][idx - 1] <= start

    def free_nodes_set(self, start: float, end: float) -> NodeSet:
        """All nodes free throughout ``[start, end)``, as a run-length set.

        Skyline fast path: a window past the last booking end, or one the
        aggregate profile shows as entirely unbooked, is free on every
        node — no per-node checks at all.  Otherwise only *booked* nodes
        are tested (one bisection each); everything else is free by
        definition, so the cost scales with live bookings, not cluster
        width.
        """
        if not self._end_times or start >= self._end_times[-1]:
            return self._full
        if self.profile().max_usage(start, end) == 0:
            return self._full
        if len(self._busy_runs) < len(self._booked):
            return self._free_set_sweep(start, end)
        starts_map = self._starts
        pmax_map = self._pmax_ends
        busy: List[int] = []
        for node in self._booked:
            starts = starts_map[node]
            idx = bisect.bisect_left(starts, end)
            if idx > 0 and pmax_map[node][idx - 1] > start:
                busy.append(node)
        if not busy:
            return self._full
        return self._full.difference(NodeSet.from_sorted(busy))

    def _free_set_sweep(self, start: float, end: float) -> NodeSet:
        """:meth:`free_nodes_set` via one pass over the sorted booking
        runs: union the time-overlapping runs, complement the union.  No
        per-node work — the cost is the live *run* count, which on wide
        partitions sits far below the booked-node count.
        """
        busy: List[Tuple[int, int]] = []
        for lo, hi, r_start, r_end, _job in self._busy_runs:
            if r_start >= end or r_end <= start:
                continue
            if busy and lo <= busy[-1][1]:
                if hi > busy[-1][1]:
                    busy[-1] = (busy[-1][0], hi)
            else:
                busy.append((lo, hi))
        if not busy:
            return self._full
        return self._full.difference(NodeSet(busy))

    def free_nodes(self, start: float, end: float) -> List[int]:
        """All nodes free throughout ``[start, end)``, ascending (legacy
        list form of :meth:`free_nodes_set`)."""
        return self.free_nodes_set(start, end).to_list()

    def busy_jobs_at(self, time: float) -> List[int]:
        """Ids of jobs whose reservation covers ``time``, ascending."""
        return sorted(
            r.job_id
            for r in self._by_job.values()
            if r.start <= time < r.end
        )

    def candidate_times(self, earliest: float, limit: Optional[int] = None) -> List[float]:
        """Start times worth probing: ``earliest`` plus booking end points.

        Free capacity is piecewise-constant between these points, so the
        earliest feasible slot always begins at one of them.
        """
        idx = bisect.bisect_right(self._end_times, earliest)
        tail = self._end_times[idx:]
        times = [earliest]
        last = earliest
        for t in tail:
            if t > last:
                times.append(t)
                last = t
        if limit is not None:
            times = times[:limit]
        return times

    def iter_candidate_times(self, earliest: float) -> Iterator[float]:
        """Lazy :meth:`candidate_times`: same values, no list materialised.

        The negotiation dialogue usually accepts within the first few
        candidates, so building the full candidate list per dialogue is
        wasted work on deep queues.  Yields from a snapshot of the end-time
        array, so the iterator stays valid even if the ledger is mutated
        mid-iteration (callers still see the candidates of the ledger as it
        was when iteration started, exactly like :meth:`candidate_times`).
        """
        yield earliest
        idx = bisect.bisect_right(self._end_times, earliest)
        tail = self._end_times[idx:]
        last = earliest
        for t in tail:
            if t > last:
                yield t
                last = t

    def horizon(self) -> float:
        """The last booking end (0.0 when the book is empty): beyond it the
        cluster is entirely free and candidate enumeration switches from
        booking end points to failure jumps."""
        return self._end_times[-1] if self._end_times else 0.0

    def find_slot(
        self,
        size: int,
        duration: float,
        earliest: float,
        scorer: Optional[NodeScorer] = None,
    ) -> Tuple[float, ChosenNodes]:
        """Earliest start >= ``earliest`` with ``size`` nodes free for
        ``duration``; picks the ``size`` best-scoring free nodes.

        Args:
            size: Nodes required.
            duration: Window length in seconds.
            scorer: Optional ``(node, start, end) -> key``; lower keys are
                preferred (the fault-aware scheduler passes predicted
                per-node failure probability here).  Ties and the no-scorer
                case fall back to ascending node index, keeping placement
                deterministic.

        Returns:
            ``(start, nodes)`` — ``nodes`` is a :class:`NodeSet` on the
            scorerless (first-fit) path and a sorted list when a scorer
            ranked nodes; both iterate ascending and compare equal to the
            legacy list.

        Raises:
            ValueError: If ``size`` exceeds the cluster width (can never be
                satisfied) or ``duration`` is non-positive.
        """
        if not self._prof:
            return self._find_slot(size, duration, earliest, scorer)
        with self._z_find_slot:
            return self._find_slot(size, duration, earliest, scorer)

    def _find_slot(
        self,
        size: int,
        duration: float,
        earliest: float,
        scorer: Optional[NodeScorer],
    ) -> Tuple[float, ChosenNodes]:
        if size > self._n:
            raise ValueError(f"requested {size} nodes on a {self._n}-node cluster")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")

        obs = self._obs
        probes = rejects = 0
        profile = self.profile()
        for start in self.candidate_times(earliest):
            probes += 1
            if not profile.window_fits(start, start + duration, size, self._n):
                rejects += 1
                continue
            if scorer is None:
                # First-fit wants the lowest `size` free indexes; stop the
                # booked-node walk the moment they are covered instead of
                # materialising the whole free set.
                prefix = self._free_prefix(start, start + duration, size)
                if prefix is not None:
                    if obs:
                        self._record_find_slot(probes, rejects)
                    return start, prefix
                continue
            free = self.free_nodes_set(start, start + duration)
            if len(free) >= size:
                chosen = self._select(free, size, start, start + duration, scorer)
                if obs:
                    self._record_find_slot(probes, rejects)
                return start, chosen
        # Unreachable: the window after the last booking end is always free.
        raise RuntimeError("no feasible slot found past the final booking")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _free_prefix(
        self, start: float, end: float, size: int
    ) -> Optional[NodeSet]:
        """The ``size`` lowest-indexed nodes free over ``[start, end)``,
        or None when fewer than ``size`` are free in total.

        Identical to ``free_nodes_set(start, end)[:size]`` but walks the
        booked-node list front to back and returns as soon as the width is
        covered — on a lightly fragmented cluster that is O(size) run
        arithmetic no matter how wide the machine is.
        """
        if (
            not self._end_times
            or start >= self._end_times[-1]
            or self.profile().max_usage(start, end) == 0
        ):
            return NodeSet.interval(0, size)
        if len(self._busy_runs) < len(self._booked):
            return self._free_prefix_sweep(start, end, size)
        runs: List[Tuple[int, int]] = []
        needed = size
        cursor = 0  # next index not yet classified; everything below is done
        starts_map = self._starts
        pmax_map = self._pmax_ends
        for node in self._booked:
            if node > cursor:
                take = min(node - cursor, needed)
                self._append_run(runs, cursor, cursor + take)
                needed -= take
                if needed == 0:
                    return NodeSet(runs)
            starts = starts_map[node]
            idx = bisect.bisect_left(starts, end)
            if idx == 0 or pmax_map[node][idx - 1] <= start:
                self._append_run(runs, node, node + 1)
                needed -= 1
                if needed == 0:
                    return NodeSet(runs)
            cursor = node + 1
        if cursor < self._n:
            take = min(self._n - cursor, needed)
            self._append_run(runs, cursor, cursor + take)
            needed -= take
            if needed == 0:
                return NodeSet(runs)
        return None

    def _free_prefix_sweep(
        self, start: float, end: float, size: int
    ) -> Optional[NodeSet]:
        """:meth:`_free_prefix` via the sorted booking-run sweep.

        Walks runs in ascending node order keeping a busy high-water mark;
        every gap between the mark and the next time-overlapping run is
        free.  Runs whose time window misses ``[start, end)`` never extend
        the mark, so their nodes fall into gaps unless another booking
        covers them.  Same early exit as the per-node walk.
        """
        runs: List[Tuple[int, int]] = []
        needed = size
        cursor = 0  # lowest node index not yet known busy
        for lo, hi, r_start, r_end, _job in self._busy_runs:
            if r_start >= end or r_end <= start:
                continue
            if lo > cursor:
                take = min(lo - cursor, needed)
                self._append_run(runs, cursor, cursor + take)
                needed -= take
                if needed == 0:
                    return NodeSet(runs)
            if hi > cursor:
                cursor = hi
        if cursor < self._n:
            take = min(self._n - cursor, needed)
            self._append_run(runs, cursor, cursor + take)
            needed -= take
            if needed == 0:
                return NodeSet(runs)
        return None

    @staticmethod
    def _append_run(runs: List[Tuple[int, int]], lo: int, hi: int) -> None:
        """Append ``[lo, hi)`` to a run list, merging adjacency."""
        if runs and runs[-1][1] == lo:
            runs[-1] = (runs[-1][0], hi)
        else:
            runs.append((lo, hi))

    @staticmethod
    def _node_runs(nodes: Sequence[int]) -> List[Tuple[int, int]]:
        """``nodes`` (ascending, duplicate-free) as half-open runs."""
        if isinstance(nodes, NodeSet):
            return list(nodes.runs)
        runs: List[Tuple[int, int]] = []
        for node in nodes:
            if runs and runs[-1][1] == node:
                runs[-1] = (runs[-1][0], node + 1)
            else:
                runs.append((node, node + 1))
        return runs

    def _remove_busy_run(self, entry: Tuple[int, int, float, float, int]) -> None:
        idx = bisect.bisect_left(self._busy_runs, entry)
        del self._busy_runs[idx]

    def _booked_within(self, nodes: Sequence[int]) -> Iterator[int]:
        """Ascending members of ``nodes`` that carry at least one booking."""
        booked = self._booked
        if isinstance(nodes, NodeSet):
            for run_start, run_stop in nodes.runs:
                i = bisect.bisect_left(booked, run_start)
                while i < len(booked) and booked[i] < run_stop:
                    yield booked[i]
                    i += 1
            return
        for node in nodes:
            i = bisect.bisect_left(booked, node)
            if i < len(booked) and booked[i] == node:
                yield node

    def _select(
        self,
        free: Sequence[int],
        size: int,
        start: float,
        end: float,
        scorer: Optional[NodeScorer],
    ) -> List[int]:
        if scorer is None:
            return list(free[:size])
        scored = sorted(free, key=lambda n: (scorer(n, start, end), n))
        return sorted(scored[:size])

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise ValueError(f"node {node} out of range [0, {self._n})")

    def _drop_node(self, node: int) -> None:
        """Forget a node whose last interval was just removed."""
        del self._starts[node]
        del self._ends[node]
        del self._jobs[node]
        del self._pmax_ends[node]
        idx = bisect.bisect_left(self._booked, node)
        del self._booked[idx]

    def _find_entry(self, node: int, job_id: int, start: float) -> int:
        """Index of the job's interval on ``node``, via bisection on the
        reservation's known start (several bookings may share a start only
        through ``allow_overlap`` restores, hence the short equal-run walk).
        """
        starts = self._starts.get(node)
        if starts is None:
            raise KeyError(f"job {job_id} has no interval on node {node}")
        jobs = self._jobs[node]
        idx = bisect.bisect_left(starts, start)
        while idx < len(starts) and starts[idx] == start:
            if jobs[idx] == job_id:
                return idx
            idx += 1
        raise KeyError(f"job {job_id} has no interval on node {node}")

    def _refresh_pmax(self, node: int, from_idx: int) -> None:
        """Recompute the end-time prefix maxima from ``from_idx`` on.

        O(k) in the node's booking count, paid only on mutation; queries
        between mutations read the prefix in O(1).
        """
        ends = self._ends[node]
        pmax = self._pmax_ends[node]
        running = pmax[from_idx - 1] if from_idx > 0 else float("-inf")
        for i in range(from_idx, len(ends)):
            if ends[i] > running:
                running = ends[i]
            pmax[i] = running

    def _shift_delta(self, time: float, change: int) -> None:
        """Apply a usage delta at ``time``; zero entries are pruned."""
        value = self._deltas.get(time, 0) + change
        if value:
            self._deltas[time] = value
        else:
            self._deltas.pop(time, None)

    def _record_find_slot(self, probes: int, rejects: int) -> None:
        """Fold one find_slot call's local tallies into the registry."""
        self._c_find_slot.inc()
        self._c_probes.inc(probes)
        self._c_prefilter_rejects.inc(rejects)
        self._h_probe_depth.observe(probes)

    def _invalidate(self) -> None:
        """Bump the mutation generation; caches rebuild lazily."""
        self._version += 1
        self._sorted = None
        if self._obs:
            self._c_mutations.inc()
            self._g_reservations.set(len(self._by_job))
            self._g_skyline.set(len(self._deltas))

    def _remove_end_time(self, end: float) -> None:
        idx = bisect.bisect_left(self._end_times, end)
        if idx < len(self._end_times) and self._end_times[idx] == end:
            del self._end_times[idx]
