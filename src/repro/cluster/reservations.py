"""Node-level reservation ledger (the scheduler's free-time profile).

Conservative backfilling — which is what a scheduler that *promises
deadlines at submission* must do — books a concrete ``(node set, start,
end)`` reservation for every job the moment it is negotiated.  The ledger
stores those bookings as per-node interval lists and answers the two
questions the scheduler and the negotiation loop ask:

* *"What is the earliest time at or after ``t`` at which ``n`` nodes are
  simultaneously free for ``d`` seconds, and which nodes?"*
  (:meth:`ReservationLedger.find_slot`) — candidate start times only need to
  be examined at ``t`` itself and at reservation end points, because free
  capacity changes nowhere else;
* *"Is this exact window still free on these nodes?"* for requeue placement.

Reservations are immutable once made except for two paper-sanctioned
adjustments: an early *release* when a job finishes ahead of its padded
estimate (skipped checkpoints), and an *extension* when a start is delayed
by a node still in its 120 s repair window.  Extensions may overlap a later
booking; the conflict resolves at start time (the runtime layer starts jobs
only when their nodes are actually free), mirroring how the paper's
scheduler never re-optimises the future schedule.

Performance model
-----------------
The negotiation dialogue probes the ledger up to ``max_offers`` times per
submission while mutating it at most a handful of times per job, so the
ledger is read-dominated by two to three orders of magnitude.  Three
structures exploit that asymmetry (see DESIGN.md "Performance"):

* the aggregate usage *skyline* is kept as an incrementally maintained
  delta map; :meth:`ReservationLedger.profile` materialises it into a
  :class:`CapacityProfile` once per mutation generation and serves every
  later call from cache in O(1);
* each node carries a prefix-maximum over its interval end times, making
  :meth:`ReservationLedger.node_free` a pure O(log k) bisection even after
  :meth:`ReservationLedger.extend` has destroyed the sortedness of ends;
* mutations locate a job's per-node interval by bisecting on the known
  reservation start instead of scanning the interval list.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

#: Scoring callback: (node, start, end) -> sort key; lower is preferred.
NodeScorer = Callable[[int, float, float], float]


class CapacityProfile:
    """Aggregate usage over time, for cheap infeasibility prefiltering.

    ``max_usage(start, end)`` bounds the nodes simultaneously booked in the
    window from *below* the true per-node constraint: a window can pass the
    capacity test yet still fail node-level availability (two nodes each
    busy for half the window leave zero nodes free *throughout* it), so a
    passing window must still be verified with
    :meth:`ReservationLedger.free_nodes` — but a failing window is failing
    for sure, and in deep-queue phases almost every candidate fails here,
    skipping the expensive per-node scan.

    Construct from a reservation list, or from an already-maintained delta
    map via :meth:`from_deltas` (the ledger's incremental path).
    """

    def __init__(self, reservations: Sequence["Reservation"]) -> None:
        deltas: Dict[float, int] = {}
        for r in reservations:
            width = len(r.nodes)
            deltas[r.start] = deltas.get(r.start, 0) + width
            deltas[r.end] = deltas.get(r.end, 0) - width
        self._build(deltas)

    @classmethod
    def from_deltas(cls, deltas: Dict[float, int]) -> "CapacityProfile":
        """Materialise a profile from a ``{time: usage delta}`` map."""
        profile = cls.__new__(cls)
        profile._build(deltas)
        return profile

    def _build(self, deltas: Dict[float, int]) -> None:
        # Zero deltas (e.g. one booking ending exactly where another
        # starts) change no level and can be dropped.
        self._boundaries: List[float] = sorted(t for t, d in deltas.items() if d)
        usage: List[int] = []
        level = 0
        for t in self._boundaries:
            level += deltas[t]
            usage.append(level)
        # usage[i] holds on [boundaries[i], boundaries[i+1]).
        self._usage = usage
        # Sparse table for O(1) range-max queries.
        self._table: List[List[int]] = [usage]
        length = len(usage)
        k = 1
        while (1 << k) <= length:
            prev = self._table[-1]
            half = 1 << (k - 1)
            self._table.append(
                [max(prev[i], prev[i + half]) for i in range(length - (1 << k) + 1)]
            )
            k += 1

    def max_usage(self, start: float, end: float) -> int:
        """Maximum booked node count over ``[start, end)``."""
        if not self._usage:
            return 0
        # Segment whose interval contains `start` (usage before the first
        # boundary is 0).
        lo = bisect.bisect_right(self._boundaries, start) - 1
        hi = bisect.bisect_left(self._boundaries, end) - 1
        if hi < 0:
            return 0
        lo = max(lo, 0)
        if lo > hi:
            # Window entirely inside one pre-first-boundary gap.
            return self._usage[hi] if hi >= 0 else 0
        span = hi - lo + 1
        k = span.bit_length() - 1
        return max(self._table[k][lo], self._table[k][hi - (1 << k) + 1])

    def window_fits(self, start: float, end: float, free_needed: int, total: int) -> bool:
        """Capacity prefilter: can ``free_needed`` nodes possibly be free?"""
        return total - self.max_usage(start, end) >= free_needed


@dataclass
class Reservation:
    """A booked slot: ``job_id`` holds ``nodes`` during ``[start, end)``."""

    job_id: int
    nodes: Tuple[int, ...]
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class ReservationLedger:
    """Per-node interval book-keeping over a fixed-width cluster.

    Args:
        node_count: Cluster width N; node indexes are ``0..N-1``.
        registry: Optional obs registry; when live, the ledger records its
            probe volume, prefilter effectiveness, and profile-cache hit
            rate under ``cluster.ledger.*`` (see DESIGN.md
            "Observability").
    """

    def __init__(
        self, node_count: int, registry: Optional[MetricsRegistry] = None
    ) -> None:
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        self._n = node_count
        # Per-node parallel arrays of (start, end, job_id), sorted by start.
        self._starts: List[List[float]] = [[] for _ in range(node_count)]
        self._ends: List[List[float]] = [[] for _ in range(node_count)]
        self._jobs: List[List[int]] = [[] for _ in range(node_count)]
        # Prefix maxima over _ends: _pmax_ends[n][i] = max(_ends[n][:i+1]).
        # Ends are not sorted once extend() has run; the prefix maximum is
        # what makes node_free a single bisection regardless.
        self._pmax_ends: List[List[float]] = [[] for _ in range(node_count)]
        self._by_job: Dict[int, Reservation] = {}
        # Sorted multiset of reservation end times (candidate start points).
        self._end_times: List[float] = []
        # Aggregate usage skyline, maintained incrementally: time -> net
        # change in booked node count at that instant (zero entries pruned).
        self._deltas: Dict[float, int] = {}
        # Cache generations: every mutation bumps _version; the profile and
        # the sorted reservation view rebuild at most once per generation.
        self._version = 0
        self._profile: Optional[CapacityProfile] = None
        self._profile_version = -1
        self._sorted: Optional[List[Reservation]] = None
        # Observability: instruments bound once; hot paths gate on _obs so
        # the default null registry costs a single bool test per call.
        registry = registry if registry is not None else NULL_REGISTRY
        self._obs = registry.enabled
        self._c_find_slot = registry.counter("cluster.ledger.find_slot_calls")
        self._c_probes = registry.counter("cluster.ledger.probes")
        self._c_prefilter_rejects = registry.counter(
            "cluster.ledger.prefilter_rejects"
        )
        self._c_profile_hits = registry.counter("cluster.ledger.profile_cache_hits")
        self._c_profile_misses = registry.counter(
            "cluster.ledger.profile_cache_misses"
        )
        self._c_mutations = registry.counter("cluster.ledger.mutations")
        self._h_probe_depth = registry.histogram("cluster.ledger.probe_depth")
        self._g_reservations = registry.gauge("cluster.ledger.reservations")
        self._g_skyline = registry.gauge("cluster.ledger.skyline_size")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return self._n

    def __len__(self) -> int:
        return len(self._by_job)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_job

    def get(self, job_id: int) -> Optional[Reservation]:
        """The reservation for ``job_id``, or None."""
        return self._by_job.get(job_id)

    def reservations(self) -> List[Reservation]:
        """All live reservations, sorted by start time.

        The sorted view is cached between mutations; callers receive a
        fresh copy they may mutate freely.
        """
        if self._sorted is None:
            self._sorted = sorted(
                self._by_job.values(), key=lambda r: (r.start, r.job_id)
            )
        return list(self._sorted)

    def profile(self) -> CapacityProfile:
        """The current capacity profile (cached between mutations).

        The skyline deltas are maintained incrementally by every mutation;
        this method only pays to materialise boundary/level arrays (and the
        range-max table) on the first call after a mutation.  During a
        negotiation dialogue — hundreds of probes, zero mutations — every
        call after the first is O(1).
        """
        if self._profile is None or self._profile_version != self._version:
            self._profile = CapacityProfile.from_deltas(self._deltas)
            self._profile_version = self._version
            if self._obs:
                self._c_profile_misses.inc()
        elif self._obs:
            self._c_profile_hits.inc()
        return self._profile

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def reserve(
        self,
        job_id: int,
        nodes: Iterable[int],
        start: float,
        end: float,
        allow_overlap: bool = False,
    ) -> Reservation:
        """Book ``nodes`` for ``job_id`` over ``[start, end)``.

        Args:
            allow_overlap: Skip the free-window validation.  Only for
                *restoring* a previously held booking that may legally
                overlap another job's :meth:`extend`-ed interval; overlaps
                resolve at start time in the runtime layer.

        Raises:
            ValueError: On overlap with an existing booking (unless
                ``allow_overlap``), a duplicate job id, an out-of-range
                node, or a degenerate window.
        """
        node_tuple = tuple(sorted(set(nodes)))
        if not node_tuple:
            raise ValueError(f"job {job_id}: empty node set")
        if end <= start:
            raise ValueError(f"job {job_id}: end {end} <= start {start}")
        if job_id in self._by_job:
            raise ValueError(f"job {job_id} already has a reservation")
        for node in node_tuple:
            self._check_node(node)
            if not allow_overlap and not self.node_free(node, start, end):
                raise ValueError(
                    f"job {job_id}: node {node} not free over [{start}, {end})"
                )
        for node in node_tuple:
            idx = bisect.bisect_left(self._starts[node], start)
            self._starts[node].insert(idx, start)
            self._ends[node].insert(idx, end)
            self._jobs[node].insert(idx, job_id)
            self._pmax_ends[node].insert(idx, end)
            self._refresh_pmax(node, idx)
        reservation = Reservation(job_id=job_id, nodes=node_tuple, start=start, end=end)
        self._by_job[job_id] = reservation
        bisect.insort(self._end_times, end)
        width = len(node_tuple)
        self._shift_delta(start, width)
        self._shift_delta(end, -width)
        self._invalidate()
        return reservation

    def release(self, job_id: int) -> Reservation:
        """Drop a job's booking entirely (finish, kill, or cancellation)."""
        reservation = self._by_job.pop(job_id, None)
        if reservation is None:
            raise KeyError(f"job {job_id} has no reservation")
        for node in reservation.nodes:
            idx = self._find_entry(node, job_id, reservation.start)
            del self._starts[node][idx]
            del self._ends[node][idx]
            del self._jobs[node][idx]
            del self._pmax_ends[node][idx]
            self._refresh_pmax(node, idx)
        self._remove_end_time(reservation.end)
        width = len(reservation.nodes)
        self._shift_delta(reservation.start, -width)
        self._shift_delta(reservation.end, width)
        self._invalidate()
        return reservation

    def truncate(self, job_id: int, new_end: float) -> Reservation:
        """Shrink a booking's end (job finished earlier than estimated).

        The freed tail becomes available to subsequent ``find_slot`` calls —
        this is where skipped checkpoints buy the system schedule slack.
        """
        reservation = self._by_job.get(job_id)
        if reservation is None:
            raise KeyError(f"job {job_id} has no reservation")
        if new_end >= reservation.end:
            return reservation
        if new_end <= reservation.start:
            raise ValueError(
                f"job {job_id}: truncation to {new_end} precedes start "
                f"{reservation.start}"
            )
        return self._resize(reservation, new_end)

    def extend(self, job_id: int, new_end: float) -> Reservation:
        """Grow a booking's end (start delayed by repair, overrun).

        Unlike :meth:`reserve`, overlap with later bookings is tolerated;
        the runtime layer serialises conflicting starts on actual node
        availability.
        """
        reservation = self._by_job.get(job_id)
        if reservation is None:
            raise KeyError(f"job {job_id} has no reservation")
        if new_end <= reservation.end:
            return reservation
        return self._resize(reservation, new_end)

    def _resize(self, reservation: Reservation, new_end: float) -> Reservation:
        """Shared tail of truncate/extend: move ``end`` to ``new_end``."""
        job_id = reservation.job_id
        for node in reservation.nodes:
            idx = self._find_entry(node, job_id, reservation.start)
            self._ends[node][idx] = new_end
            self._refresh_pmax(node, idx)
        self._remove_end_time(reservation.end)
        bisect.insort(self._end_times, new_end)
        width = len(reservation.nodes)
        self._shift_delta(reservation.end, width)
        self._shift_delta(new_end, -width)
        self._invalidate()
        updated = Reservation(job_id, reservation.nodes, reservation.start, new_end)
        self._by_job[job_id] = updated
        return updated

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_free(self, node: int, start: float, end: float) -> bool:
        """True if ``node`` has no booking overlapping ``[start, end)``.

        An interval overlaps iff it starts before ``end`` and ends after
        ``start``; the prefix maximum over ends of all intervals starting
        before ``end`` answers "does any end exceed ``start``" in O(1)
        after one bisection.
        """
        self._check_node(node)
        idx = bisect.bisect_left(self._starts[node], end)
        return idx == 0 or self._pmax_ends[node][idx - 1] <= start

    def free_nodes(self, start: float, end: float) -> List[int]:
        """All nodes free throughout ``[start, end)``, ascending.

        Skyline fast path: a window past the last booking end, or one the
        aggregate profile shows as entirely unbooked, is free on every
        node — no per-node checks at all.  Otherwise each node costs one
        bisection (see :meth:`node_free`).
        """
        if not self._end_times or start >= self._end_times[-1]:
            return list(range(self._n))
        if self.profile().max_usage(start, end) == 0:
            return list(range(self._n))
        starts = self._starts
        pmax = self._pmax_ends
        result = []
        for n in range(self._n):
            idx = bisect.bisect_left(starts[n], end)
            if idx == 0 or pmax[n][idx - 1] <= start:
                result.append(n)
        return result

    def busy_jobs_at(self, time: float) -> List[int]:
        """Ids of jobs whose reservation covers ``time``, ascending."""
        return sorted(
            r.job_id
            for r in self._by_job.values()
            if r.start <= time < r.end
        )

    def candidate_times(self, earliest: float, limit: Optional[int] = None) -> List[float]:
        """Start times worth probing: ``earliest`` plus booking end points.

        Free capacity is piecewise-constant between these points, so the
        earliest feasible slot always begins at one of them.
        """
        idx = bisect.bisect_right(self._end_times, earliest)
        tail = self._end_times[idx:]
        times = [earliest]
        last = earliest
        for t in tail:
            if t > last:
                times.append(t)
                last = t
        if limit is not None:
            times = times[:limit]
        return times

    def iter_candidate_times(self, earliest: float) -> Iterator[float]:
        """Lazy :meth:`candidate_times`: same values, no list materialised.

        The negotiation dialogue usually accepts within the first few
        candidates, so building the full candidate list per dialogue is
        wasted work on deep queues.  Yields from a snapshot of the end-time
        array, so the iterator stays valid even if the ledger is mutated
        mid-iteration (callers still see the candidates of the ledger as it
        was when iteration started, exactly like :meth:`candidate_times`).
        """
        yield earliest
        idx = bisect.bisect_right(self._end_times, earliest)
        tail = self._end_times[idx:]
        last = earliest
        for t in tail:
            if t > last:
                yield t
                last = t

    def horizon(self) -> float:
        """The last booking end (0.0 when the book is empty): beyond it the
        cluster is entirely free and candidate enumeration switches from
        booking end points to failure jumps."""
        return self._end_times[-1] if self._end_times else 0.0

    def find_slot(
        self,
        size: int,
        duration: float,
        earliest: float,
        scorer: Optional[NodeScorer] = None,
    ) -> Tuple[float, List[int]]:
        """Earliest start >= ``earliest`` with ``size`` nodes free for
        ``duration``; picks the ``size`` best-scoring free nodes.

        Args:
            size: Nodes required.
            duration: Window length in seconds.
            scorer: Optional ``(node, start, end) -> key``; lower keys are
                preferred (the fault-aware scheduler passes predicted
                per-node failure probability here).  Ties and the no-scorer
                case fall back to ascending node index, keeping placement
                deterministic.

        Returns:
            ``(start, nodes)``.

        Raises:
            ValueError: If ``size`` exceeds the cluster width (can never be
                satisfied) or ``duration`` is non-positive.
        """
        if size > self._n:
            raise ValueError(f"requested {size} nodes on a {self._n}-node cluster")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")

        obs = self._obs
        probes = rejects = 0
        profile = self.profile()
        for start in self.candidate_times(earliest):
            probes += 1
            if not profile.window_fits(start, start + duration, size, self._n):
                rejects += 1
                continue
            free = self.free_nodes(start, start + duration)
            if len(free) >= size:
                chosen = self._select(free, size, start, start + duration, scorer)
                if obs:
                    self._record_find_slot(probes, rejects)
                return start, chosen
        # Unreachable: the window after the last booking end is always free.
        raise RuntimeError("no feasible slot found past the final booking")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _select(
        self,
        free: Sequence[int],
        size: int,
        start: float,
        end: float,
        scorer: Optional[NodeScorer],
    ) -> List[int]:
        if scorer is None:
            return list(free[:size])
        scored = sorted(free, key=lambda n: (scorer(n, start, end), n))
        return sorted(scored[:size])

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise ValueError(f"node {node} out of range [0, {self._n})")

    def _find_entry(self, node: int, job_id: int, start: float) -> int:
        """Index of the job's interval on ``node``, via bisection on the
        reservation's known start (several bookings may share a start only
        through ``allow_overlap`` restores, hence the short equal-run walk).
        """
        starts = self._starts[node]
        jobs = self._jobs[node]
        idx = bisect.bisect_left(starts, start)
        while idx < len(starts) and starts[idx] == start:
            if jobs[idx] == job_id:
                return idx
            idx += 1
        raise KeyError(f"job {job_id} has no interval on node {node}")

    def _refresh_pmax(self, node: int, from_idx: int) -> None:
        """Recompute the end-time prefix maxima from ``from_idx`` on.

        O(k) in the node's booking count, paid only on mutation; queries
        between mutations read the prefix in O(1).
        """
        ends = self._ends[node]
        pmax = self._pmax_ends[node]
        running = pmax[from_idx - 1] if from_idx > 0 else float("-inf")
        for i in range(from_idx, len(ends)):
            if ends[i] > running:
                running = ends[i]
            pmax[i] = running

    def _shift_delta(self, time: float, change: int) -> None:
        """Apply a usage delta at ``time``; zero entries are pruned."""
        value = self._deltas.get(time, 0) + change
        if value:
            self._deltas[time] = value
        else:
            self._deltas.pop(time, None)

    def _record_find_slot(self, probes: int, rejects: int) -> None:
        """Fold one find_slot call's local tallies into the registry."""
        self._c_find_slot.inc()
        self._c_probes.inc(probes)
        self._c_prefilter_rejects.inc(rejects)
        self._h_probe_depth.observe(probes)

    def _invalidate(self) -> None:
        """Bump the mutation generation; caches rebuild lazily."""
        self._version += 1
        self._sorted = None
        if self._obs:
            self._c_mutations.inc()
            self._g_reservations.set(len(self._by_job))
            self._g_skyline.set(len(self._deltas))

    def _remove_end_time(self, end: float) -> None:
        idx = bisect.bisect_left(self._end_times, end)
        if idx < len(self._end_times) and self._end_times[idx] == end:
            del self._end_times[idx]
