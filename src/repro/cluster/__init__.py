"""Cluster substrate: nodes, machine state, reservations, topologies."""

from repro.cluster.machine import Cluster
from repro.cluster.node import Node, NodeState
from repro.cluster.nodeset import NodeSet, freeze_nodes
from repro.cluster.reference import SeedReservationLedger
from repro.cluster.reservations import CapacityProfile, Reservation, ReservationLedger
from repro.cluster.topology import (
    FlatTopology,
    RingTopology,
    Topology,
    topology_by_name,
)

__all__ = [
    "Cluster",
    "Node",
    "NodeSet",
    "NodeState",
    "CapacityProfile",
    "freeze_nodes",
    "Reservation",
    "ReservationLedger",
    "SeedReservationLedger",
    "FlatTopology",
    "RingTopology",
    "Topology",
    "topology_by_name",
]
