"""Cluster substrate: nodes, machine state, reservations, topologies."""

from repro.cluster.machine import Cluster
from repro.cluster.node import Node, NodeState
from repro.cluster.reservations import Reservation, ReservationLedger
from repro.cluster.topology import (
    FlatTopology,
    RingTopology,
    Topology,
    topology_by_name,
)

__all__ = [
    "Cluster",
    "Node",
    "NodeState",
    "Reservation",
    "ReservationLedger",
    "FlatTopology",
    "RingTopology",
    "Topology",
    "topology_by_name",
]
