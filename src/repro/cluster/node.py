"""Node state tracking for the simulated cluster.

Nodes are homogeneous but fail independently (paper Section 4.1).  A node is
either up or down; while down it finishes its fixed repair ("downtime",
120 s in the paper's configuration — the restart time of a BG/L node) and
then recovers.  Each node can host at most one job — "only one job may run
on a given node at a time; there is no co-scheduling or multitasking."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class NodeState(enum.Enum):
    """Operational state of a node."""

    UP = "up"
    DOWN = "down"


@dataclass
class Node:
    """One compute node.

    Attributes:
        index: Node index in ``[0, N)``.
        state: UP or DOWN.
        down_until: Time the current repair completes (meaningful when
            DOWN).
        running_job: Id of the job currently executing here, or None.
        failure_count: Failures suffered so far (statistics).
    """

    index: int
    state: NodeState = NodeState.UP
    down_until: float = 0.0
    running_job: Optional[int] = None
    failure_count: int = 0

    @property
    def is_up(self) -> bool:
        return self.state is NodeState.UP

    @property
    def is_busy(self) -> bool:
        return self.running_job is not None

    def fail(self, now: float, downtime: float) -> float:
        """Mark the node failed at ``now``; returns its recovery time.

        The occupying job (if any) is *not* cleared here — the cluster layer
        owns job bookkeeping and clears the assignment when it kills the
        job.
        """
        if downtime < 0:
            raise ValueError(f"downtime must be >= 0, got {downtime}")
        self.state = NodeState.DOWN
        self.down_until = now + downtime
        self.failure_count += 1
        return self.down_until

    def recover(self, now: float) -> None:
        """Bring the node back up (recovery event handler).

        Stale recoveries are ignored: if the node failed *again* during its
        repair window, ``down_until`` moved later and only the recovery
        scheduled for the new time takes effect.
        """
        if self.state is NodeState.UP:
            return  # already recovered (double failure inside one downtime)
        if now + 1e-9 < self.down_until:
            return  # stale recovery from before a repeat failure
        self.state = NodeState.UP

    def assign(self, job_id: int) -> None:
        """Place a job on the node; the node must be up and idle."""
        if not self.is_up:
            raise ValueError(f"cannot assign job {job_id} to down node {self.index}")
        if self.running_job is not None:
            raise ValueError(
                f"node {self.index} already runs job {self.running_job}; "
                f"cannot assign job {job_id}"
            )
        self.running_job = job_id

    def release(self, job_id: int) -> None:
        """Remove a job from the node (finish or kill)."""
        if self.running_job != job_id:
            raise ValueError(
                f"node {self.index} runs {self.running_job}, not job {job_id}"
            )
        self.running_job = None
