"""The simulated cluster: N homogeneous nodes with independent failures.

Owns live node state (up/down, which job runs where) and the failure/
recovery mechanics; scheduling-time bookings live in
:class:`~repro.cluster.reservations.ReservationLedger`, which the cluster
also hosts so callers deal with a single façade.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.node import Node, NodeState
from repro.cluster.reservations import ReservationLedger
from repro.obs.prof import Profiler
from repro.obs.registry import MetricsRegistry


class Cluster:
    """A fixed-width cluster of homogeneous, independently failing nodes.

    Args:
        node_count: Cluster width N (the paper simulates 128).
        downtime: Repair time after a failure, seconds (paper: 120, the
            BG/L node restart time).
        registry: Optional obs registry forwarded to the hosted ledger.
            Only passed through when live, so drop-in ledger replacements
            (e.g. the frozen seed baseline in perf benchmarks) keep their
            single-argument constructor.
        profiler: Optional hierarchical profiler forwarded to the hosted
            ledger, under the same only-when-live rule as ``registry``.
    """

    def __init__(
        self,
        node_count: int = 128,
        downtime: float = 120.0,
        registry: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        if downtime < 0:
            raise ValueError(f"downtime must be >= 0, got {downtime}")
        self.downtime = float(downtime)
        self._nodes: List[Node] = [Node(index=i) for i in range(node_count)]
        live_registry = registry is not None and registry.enabled
        live_profiler = profiler is not None and profiler.enabled
        if live_registry or live_profiler:
            self.ledger = ReservationLedger(
                node_count,
                registry=registry if live_registry else None,
                profiler=profiler if live_profiler else None,
            )
        else:
            self.ledger = ReservationLedger(node_count)
        self._job_nodes: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def node(self, index: int) -> Node:
        return self._nodes[index]

    @property
    def nodes(self) -> Sequence[Node]:
        return self._nodes

    def up_nodes(self) -> List[int]:
        """Indexes of nodes currently up."""
        return [n.index for n in self._nodes if n.is_up]

    def running_jobs(self) -> List[int]:
        """Ids of jobs currently executing, in ascending id order.

        Sorted so callers iterating it (e.g. the EASY backfill release
        scan) see an order independent of job start/removal history.
        """
        return sorted(self._job_nodes)

    def nodes_of(self, job_id: int) -> List[int]:
        """Node indexes the running job occupies."""
        try:
            return list(self._job_nodes[job_id])
        except KeyError:
            raise KeyError(f"job {job_id} is not running") from None

    def job_on(self, node_index: int) -> Optional[int]:
        """Id of the job running on ``node_index``, or None."""
        return self._nodes[node_index].running_job

    def nodes_available(self, node_indexes: Sequence[int]) -> bool:
        """True if every listed node is up and idle (start precondition)."""
        for index in node_indexes:
            node = self._nodes[index]
            if not node.is_up or node.is_busy:
                return False
        return True

    def busy_node_count(self) -> int:
        """Number of nodes currently occupied by jobs."""
        return sum(1 for n in self._nodes if n.is_busy)

    # ------------------------------------------------------------------
    # Job placement
    # ------------------------------------------------------------------
    def start_job(self, job_id: int, node_indexes: Sequence[int]) -> None:
        """Occupy ``node_indexes`` with ``job_id`` (all must be up+idle)."""
        if job_id in self._job_nodes:
            raise ValueError(f"job {job_id} is already running")
        if not node_indexes:
            raise ValueError(f"job {job_id}: empty node list")
        if not self.nodes_available(node_indexes):
            raise ValueError(
                f"job {job_id}: nodes {list(node_indexes)} not all up and idle"
            )
        for index in node_indexes:
            self._nodes[index].assign(job_id)
        self._job_nodes[job_id] = sorted(node_indexes)

    def remove_job(self, job_id: int) -> List[int]:
        """Release a job's nodes (finish or kill); returns the node list."""
        node_indexes = self._job_nodes.pop(job_id, None)
        if node_indexes is None:
            raise KeyError(f"job {job_id} is not running")
        for index in node_indexes:
            node = self._nodes[index]
            # A node that failed may already have been force-released.
            if node.running_job == job_id:
                node.release(job_id)
        return node_indexes

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def fail_node(self, node_index: int, now: float) -> tuple:
        """Fail a node at ``now``.

        Returns:
            ``(victim_job_id_or_None, recovery_time)``.  The victim job is
            *not* removed — the system layer decides how to kill it (lost
            work accounting) and then calls :meth:`remove_job`.
        """
        node = self._nodes[node_index]
        victim = node.running_job
        recovery = node.fail(now, self.downtime)
        return victim, recovery

    def recover_node(self, node_index: int, now: float) -> None:
        """Recovery-event handler: bring a node back up."""
        self._nodes[node_index].recover(now)

    def down_until(self, node_index: int) -> float:
        """Repair completion time for a down node (0.0 if up)."""
        node = self._nodes[node_index]
        return node.down_until if not node.is_up else 0.0

    def latest_recovery(self, node_indexes: Sequence[int]) -> float:
        """Latest ``down_until`` among the listed nodes (0.0 if all up)."""
        return max((self.down_until(i) for i in node_indexes), default=0.0)
