"""Communication topologies and their allocation constraints.

The paper's experiments use "a flat (all-to-all) communication architecture"
— any set of free nodes forms a valid partition.  Machines like BlueGene/L
instead carve partitions out of a torus, constraining which node sets are
allocatable.  The topology abstraction lets placement honour such
constraints; the torus here is the 1-D ring simplification (contiguous
blocks with wraparound), enough to study the fragmentation effects the
paper attributes to size mix (Section 5.1) without modelling full 3-D
midplane allocation.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.cluster.nodeset import NodeSet
from repro.cluster.reservations import NodeScorer


class Topology(abc.ABC):
    """Allocation-shape constraint over node indexes ``0..N-1``."""

    def __init__(self, node_count: int) -> None:
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        self.node_count = node_count

    @abc.abstractmethod
    def select_partition(
        self,
        free_nodes: Sequence[int],
        size: int,
        start: float,
        end: float,
        scorer: Optional[NodeScorer] = None,
    ) -> Optional[Sequence[int]]:
        """Choose a valid partition of ``size`` from ``free_nodes``.

        Args:
            free_nodes: Ascending node indexes free over the window.
            size: Required partition size.
            start: Window start (passed to the scorer).
            end: Window end (passed to the scorer).
            scorer: Optional per-node badness; the topology picks the valid
                partition minimising total score, breaking ties toward
                lower indexes.

        Returns:
            An ascending node sequence (a sorted list, or a run-length
            :class:`NodeSet` on the flat scorerless fast path — the two
            compare equal for the same members), or None if no valid
            partition exists (even though enough nodes may be free, their
            *shape* may not fit).
        """


class FlatTopology(Topology):
    """All-to-all network: every node subset is a valid partition."""

    def select_partition(
        self,
        free_nodes: Sequence[int],
        size: int,
        start: float,
        end: float,
        scorer: Optional[NodeScorer] = None,
    ) -> Optional[Sequence[int]]:
        if len(free_nodes) < size:
            return None
        if scorer is None:
            # First-fit keeps a NodeSet in run-length form: on a 100k-node
            # cluster the partition stays O(runs), never a boxed-int list.
            if isinstance(free_nodes, NodeSet):
                return free_nodes[:size]
            return list(free_nodes[:size])
        ranked = sorted(free_nodes, key=lambda n: (scorer(n, start, end), n))
        return sorted(ranked[:size])


class RingTopology(Topology):
    """1-D torus: partitions are contiguous blocks (with wraparound).

    Models allocation-shape pressure: odd-sized jobs fragment the ring, so
    a request can fail even when enough nodes are free in total — the
    effect the paper credits for SDSC's extra "temporal fragmentation".
    """

    def select_partition(
        self,
        free_nodes: Sequence[int],
        size: int,
        start: float,
        end: float,
        scorer: Optional[NodeScorer] = None,
    ) -> Optional[List[int]]:
        if len(free_nodes) < size:
            return None
        free_set = set(free_nodes)
        best: Optional[List[int]] = None
        best_score = float("inf")
        for origin in free_nodes:
            block = [(origin + k) % self.node_count for k in range(size)]
            if not all(n in free_set for n in block):
                continue
            if scorer is None:
                return sorted(block)
            score = sum(scorer(n, start, end) for n in block)
            if score < best_score or (
                score == best_score and best is not None and block < best
            ):
                best, best_score = sorted(block), score
        return best


class MeshTopology(Topology):
    """2-D mesh: partitions are contiguous axis-aligned rectangles.

    The closest planar analogue of BlueGene-style allocation: a job of size
    ``s`` needs an ``h x w`` rectangle of free nodes with ``h * w >= s``
    (the smallest such rectangle by area, then by perimeter).  Rectangles
    cannot wrap.  Node ``(r, c)`` has index ``r * width + c``.

    Note the mesh may return *more* than ``size`` nodes (the whole
    rectangle): that surplus is the machine's internal fragmentation, which
    the job occupies but cannot use — exactly how rectangular allocators
    waste capacity on awkward sizes.

    Args:
        node_count: Total nodes; must factor as ``height * width``.
        width: Mesh width; defaults to the largest divisor of
            ``node_count`` not exceeding its square root's complement
            (i.e. the most square arrangement).
    """

    def __init__(self, node_count: int, width: Optional[int] = None) -> None:
        super().__init__(node_count)
        if width is None:
            width = 1
            for candidate in range(1, int(node_count**0.5) + 1):
                if node_count % candidate == 0:
                    width = node_count // candidate
        if width < 1 or node_count % width != 0:
            raise ValueError(
                f"width {width} does not tile {node_count} nodes"
            )
        self.width = width
        self.height = node_count // width

    def _candidate_shapes(self, size: int) -> List[tuple]:
        """(h, w) rectangles with h*w >= size, smallest waste first."""
        shapes = []
        for h in range(1, self.height + 1):
            w = -(-size // h)  # ceil(size / h)
            if w <= self.width:
                shapes.append((h * w - size, h + w, h, w))
        shapes.sort()
        return [(h, w) for _, _, h, w in shapes]

    def select_partition(
        self,
        free_nodes: Sequence[int],
        size: int,
        start: float,
        end: float,
        scorer: Optional[NodeScorer] = None,
    ) -> Optional[List[int]]:
        if len(free_nodes) < size:
            return None
        free_set = set(free_nodes)
        best: Optional[List[int]] = None
        best_score = float("inf")
        for h, w in self._candidate_shapes(size):
            for top in range(self.height - h + 1):
                for left in range(self.width - w + 1):
                    block = [
                        (top + dr) * self.width + (left + dc)
                        for dr in range(h)
                        for dc in range(w)
                    ]
                    if not all(n in free_set for n in block):
                        continue
                    if scorer is None:
                        return sorted(block)
                    score = sum(scorer(n, start, end) for n in block)
                    if score < best_score:
                        best, best_score = sorted(block), score
            if best is not None and scorer is None:
                break
        return best


def topology_by_name(name: str, node_count: int) -> Topology:
    """Factory: ``"flat"`` (paper default), ``"ring"`` or ``"mesh"``
    (BG/L-style contiguity constraints)."""
    builders = {"flat": FlatTopology, "ring": RingTopology, "mesh": MeshTopology}
    try:
        builder = builders[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; available: {sorted(builders)}"
        ) from None
    return builder(node_count)
