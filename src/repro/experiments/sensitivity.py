"""Sensitivity analyses over the parameters the paper holds fixed.

The paper pins ``C = 720 s``, ``I = 3600 s`` and the AIX failure rate
(Table 2) and sweeps only ``a`` and ``U``.  Its companion studies — the
periodic-checkpointing analysis it cites for choosing ``C ≈ L`` and the
cooperative-checkpointing thesis — are all about how those fixed choices
move the outcome, so this module provides the corresponding sweeps:

* :func:`sweep_checkpoint_interval` — the classic overhead-vs-risk
  trade-off: small ``I`` wastes overhead, large ``I`` loses more work per
  failure;
* :func:`sweep_checkpoint_overhead` — how expensive checkpoints must get
  before cooperative skipping stops paying;
* :func:`sweep_failure_rate` — outcome versus failure intensity at fixed
  prediction quality (regenerating the failure trace per point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.metrics import SimulationMetrics
from repro.core.system import SystemConfig, simulate
from repro.experiments.runner import ExperimentContext, estimate_horizon
from repro.failures.generator import FailureModelSpec, generate_failure_trace


@dataclass(frozen=True)
class SensitivityPoint:
    """One sensitivity-sweep sample: the varied value and its metrics."""

    value: float
    metrics: SimulationMetrics


def sweep_checkpoint_interval(
    ctx: ExperimentContext,
    intervals: Sequence[float],
    accuracy: float = 0.7,
    user_threshold: float = 0.5,
    checkpoint_policy: str = "periodic",
) -> List[SensitivityPoint]:
    """Outcomes versus the checkpoint interval ``I``.

    Defaults to the *periodic* policy because that is where ``I`` bites
    hardest (cooperative skipping hides mild mis-tuning — itself a finding
    worth demonstrating by passing ``checkpoint_policy="cooperative"``).
    """
    points = []
    for interval in intervals:
        metrics = ctx.run_point(
            accuracy,
            user_threshold,
            checkpoint_interval=float(interval),
            checkpoint_policy=checkpoint_policy,
        )
        points.append(SensitivityPoint(value=float(interval), metrics=metrics))
    return points


def sweep_checkpoint_overhead(
    ctx: ExperimentContext,
    overheads: Sequence[float],
    accuracy: float = 0.7,
    user_threshold: float = 0.5,
    checkpoint_policy: str = "cooperative",
) -> List[SensitivityPoint]:
    """Outcomes versus the checkpoint overhead ``C``."""
    points = []
    for overhead in overheads:
        metrics = ctx.run_point(
            accuracy,
            user_threshold,
            checkpoint_overhead=float(overhead),
            checkpoint_policy=checkpoint_policy,
        )
        points.append(SensitivityPoint(value=float(overhead), metrics=metrics))
    return points


def sweep_failure_rate(
    ctx: ExperimentContext,
    rates_per_day: Sequence[float],
    accuracy: float = 0.7,
    user_threshold: float = 0.5,
) -> List[SensitivityPoint]:
    """Outcomes versus cluster failure intensity.

    Each point regenerates the failure trace (same seed, different rate) so
    burst structure is held statistically constant while intensity scales.
    """
    points = []
    horizon = estimate_horizon(ctx.log, ctx.setup.node_count)
    for rate in rates_per_day:
        failures = generate_failure_trace(
            horizon,
            spec=FailureModelSpec(nodes=ctx.setup.node_count, rate_per_day=rate),
            seed=ctx.setup.seed,
        )
        config = ctx.config(accuracy, user_threshold)
        result = simulate(config, ctx.log, failures)
        points.append(SensitivityPoint(value=float(rate), metrics=result.metrics))
    return points


def optimal_interval(points: Sequence[SensitivityPoint]) -> SensitivityPoint:
    """The sweep point with the highest utilization (lowest total waste)."""
    if not points:
        raise ValueError("empty sensitivity sweep")
    return max(points, key=lambda p: p.metrics.utilization)
