"""Sensitivity analyses over the parameters the paper holds fixed.

The paper pins ``C = 720 s``, ``I = 3600 s`` and the AIX failure rate
(Table 2) and sweeps only ``a`` and ``U``.  Its companion studies — the
periodic-checkpointing analysis it cites for choosing ``C ≈ L`` and the
cooperative-checkpointing thesis — are all about how those fixed choices
move the outcome, so this module provides the corresponding sweeps:

* :func:`sweep_checkpoint_interval` — the classic overhead-vs-risk
  trade-off: small ``I`` wastes overhead, large ``I`` loses more work per
  failure;
* :func:`sweep_checkpoint_overhead` — how expensive checkpoints must get
  before cooperative skipping stops paying;
* :func:`sweep_failure_rate` — outcome versus failure intensity at fixed
  prediction quality (regenerating the failure trace per point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.metrics import SimulationMetrics
from repro.core.system import SystemConfig, simulate
from repro.experiments.runner import ExperimentContext, estimate_horizon
from repro.failures.generator import FailureModelSpec, generate_failure_trace


@dataclass(frozen=True)
class SensitivityPoint:
    """One sensitivity-sweep sample: the varied value and its metrics."""

    value: float
    metrics: SimulationMetrics


def sweep_checkpoint_interval(
    ctx: ExperimentContext,
    intervals: Sequence[float],
    accuracy: float = 0.7,
    user_threshold: float = 0.5,
    checkpoint_policy: str = "periodic",
) -> List[SensitivityPoint]:
    """Outcomes versus the checkpoint interval ``I``.

    Defaults to the *periodic* policy because that is where ``I`` bites
    hardest (cooperative skipping hides mild mis-tuning — itself a finding
    worth demonstrating by passing ``checkpoint_policy="cooperative"``).

    The sweep is submitted as one ``run_points`` batch (one point per
    interval, via per-point overrides), so contexts configured with
    ``jobs > 1`` or a persistent cache accelerate it like any figure grid.
    """
    batch = [
        (
            accuracy,
            user_threshold,
            dict(
                checkpoint_interval=float(interval),
                checkpoint_policy=checkpoint_policy,
            ),
        )
        for interval in intervals
    ]
    return [
        SensitivityPoint(value=float(interval), metrics=metrics)
        for interval, metrics in zip(intervals, ctx.run_points(batch))
    ]


def sweep_checkpoint_overhead(
    ctx: ExperimentContext,
    overheads: Sequence[float],
    accuracy: float = 0.7,
    user_threshold: float = 0.5,
    checkpoint_policy: str = "cooperative",
) -> List[SensitivityPoint]:
    """Outcomes versus the checkpoint overhead ``C`` (one batch)."""
    batch = [
        (
            accuracy,
            user_threshold,
            dict(
                checkpoint_overhead=float(overhead),
                checkpoint_policy=checkpoint_policy,
            ),
        )
        for overhead in overheads
    ]
    return [
        SensitivityPoint(value=float(overhead), metrics=metrics)
        for overhead, metrics in zip(overheads, ctx.run_points(batch))
    ]


def sweep_failure_rate(
    ctx: ExperimentContext,
    rates_per_day: Sequence[float],
    accuracy: float = 0.7,
    user_threshold: float = 0.5,
) -> List[SensitivityPoint]:
    """Outcomes versus cluster failure intensity.

    Each point regenerates the failure trace (same seed, different rate) so
    burst structure is held statistically constant while intensity scales.
    Because the *trace* — not the config — varies, these points are outside
    what a :class:`~repro.experiments.parallel.PointSpec` can describe and
    the sweep stays sequential and uncached.
    """
    points = []
    horizon = estimate_horizon(ctx.log, ctx.setup.node_count)
    for rate in rates_per_day:
        failures = generate_failure_trace(
            horizon,
            spec=FailureModelSpec(nodes=ctx.setup.node_count, rate_per_day=rate),
            seed=ctx.setup.seed,
        )
        config = ctx.config(accuracy, user_threshold)
        result = simulate(config, ctx.log, failures)
        points.append(SensitivityPoint(value=float(rate), metrics=result.metrics))
    return points


def optimal_interval(points: Sequence[SensitivityPoint]) -> SensitivityPoint:
    """The sweep point with the highest utilization (lowest total waste)."""
    if not points:
        raise ValueError("empty sensitivity sweep")
    return max(points, key=lambda p: p.metrics.utilization)
