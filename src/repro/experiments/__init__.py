"""Experiment harness: configs, memoised runner, sweeps, figures, tables."""

from repro.experiments.config import (
    BENCH_JOB_COUNT,
    CHECKPOINT_INTERVAL,
    CHECKPOINT_OVERHEAD,
    CLUSTER_NODES,
    FULL_JOB_COUNT,
    HIGHLIGHT_USERS,
    NODE_DOWNTIME,
    SWEEP_GRID,
    ExperimentSetup,
    bench_job_count,
    bench_seed,
    bench_setup,
)
from repro.experiments.figures import FigureCatalog, FigureResult
from repro.experiments.reporting import (
    format_figure,
    format_headline,
    format_pairs,
    format_table1,
    sparkline,
)
from repro.experiments.replication import (
    ReplicatedExperiment,
    ReplicatedMetric,
    significant_improvement,
)
from repro.experiments.runner import ExperimentContext, estimate_horizon
from repro.experiments.sensitivity import (
    SensitivityPoint,
    optimal_interval,
    sweep_checkpoint_interval,
    sweep_checkpoint_overhead,
    sweep_failure_rate,
)
from repro.experiments.sweeps import (
    METRIC_EXTRACTORS,
    Series,
    accuracy_sweep,
    endpoint_comparison,
    user_sweep,
)
from repro.experiments.tables import PAPER_TABLE1, Table1Row, table_1, table_2

__all__ = [
    "BENCH_JOB_COUNT",
    "CHECKPOINT_INTERVAL",
    "CHECKPOINT_OVERHEAD",
    "CLUSTER_NODES",
    "FULL_JOB_COUNT",
    "HIGHLIGHT_USERS",
    "NODE_DOWNTIME",
    "SWEEP_GRID",
    "ExperimentSetup",
    "bench_job_count",
    "bench_seed",
    "bench_setup",
    "FigureCatalog",
    "FigureResult",
    "format_figure",
    "format_headline",
    "format_pairs",
    "format_table1",
    "sparkline",
    "ExperimentContext",
    "estimate_horizon",
    "ReplicatedExperiment",
    "ReplicatedMetric",
    "significant_improvement",
    "SensitivityPoint",
    "optimal_interval",
    "sweep_checkpoint_interval",
    "sweep_checkpoint_overhead",
    "sweep_failure_rate",
    "METRIC_EXTRACTORS",
    "Series",
    "accuracy_sweep",
    "endpoint_comparison",
    "user_sweep",
    "PAPER_TABLE1",
    "Table1Row",
    "table_1",
    "table_2",
]
