"""Plain-text rendering of figures and tables (the harness' output format).

Benchmarks and the CLI print the regenerated series as aligned text tables
— the same rows/series the paper plots — plus a coarse ASCII sparkline per
series for eyeballing shape.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.figures import FigureResult
from repro.experiments.sweeps import Series
from repro.experiments.tables import Table1Row

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Eight-level ASCII sparkline of a numeric series."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (hi - lo)
    return "".join(_SPARK_LEVELS[int((v - lo) * scale)] for v in values)


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e5:
        return f"{value:.3e}"
    if abs(value) >= 100:
        return f"{value:.1f}"
    return f"{value:.4f}"


def format_figure(figure: FigureResult) -> str:
    """Render a figure's series as an aligned text table."""
    lines = [f"Figure {figure.figure_id}: {figure.title}"]
    xs = figure.series[0].xs
    header = [figure.x_label] + [s.label for s in figure.series]
    rows: List[List[str]] = [header]
    for i, x in enumerate(xs):
        row = [f"{x:g}"]
        for s in figure.series:
            row.append(_format_value(s.ys[i]))
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    for r_index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
        if r_index == 0:
            lines.append("  ".join("-" * w for w in widths))
    for s in figure.series:
        lines.append(f"shape {s.label:>8}: {sparkline(s.ys)}")
    return "\n".join(lines)


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table 1 with the paper's values alongside the measured ones."""
    lines = ["Table 1: Job log characteristics (measured vs paper)"]
    header = [
        "Job Log",
        "jobs",
        "avg n_j",
        "paper",
        "avg e_j (s)",
        "paper",
        "max e_j (h)",
        "paper",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.log_name,
                str(row.job_count),
                f"{row.avg_nodes:.1f}",
                f"{row.paper_avg_nodes:g}" if row.paper_avg_nodes else "-",
                f"{row.avg_runtime:.0f}",
                f"{row.paper_avg_runtime:g}" if row.paper_avg_runtime else "-",
                f"{row.max_runtime_hours:.0f}",
                (
                    f"{row.paper_max_runtime_hours:g}"
                    if row.paper_max_runtime_hours
                    else "-"
                ),
            ]
        )
    table = [header] + body
    widths = [max(len(r[c]) for r in table) for c in range(len(header))]
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_pairs(title: str, pairs: Sequence[Tuple[str, str]]) -> str:
    """Render (name, value) pairs (Table 2 and ad-hoc parameter dumps)."""
    width = max(len(name) for name, _ in pairs)
    lines = [title]
    lines.extend(f"  {name.ljust(width)}  {value}" for name, value in pairs)
    return "\n".join(lines)


def format_headline(comparison: Dict[str, Tuple[float, float]]) -> str:
    """Render the a=0 vs a=1 endpoint comparison with improvement factors."""
    lines = ["Headline comparison (no prediction vs perfect prediction, U=0.9)"]
    for metric, (baseline, perfect) in comparison.items():
        if metric == "lost_work":
            factor = baseline / perfect if perfect > 0 else float("inf")
            lines.append(
                f"  {metric:>12}: {_format_value(baseline)} -> "
                f"{_format_value(perfect)}  (x{factor:.1f} reduction)"
            )
        else:
            delta = (perfect - baseline) * 100.0
            lines.append(
                f"  {metric:>12}: {_format_value(baseline)} -> "
                f"{_format_value(perfect)}  (+{delta:.1f} points)"
            )
    return "\n".join(lines)
