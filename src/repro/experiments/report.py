"""One-call regeneration of the paper's entire evaluation as a text report.

``generate_report`` runs everything — both tables, all twelve figures, the
headline endpoints and the promise-honesty audit — against freshly prepared
(or caller-supplied) contexts, and renders one plain-text document.  It is
what ``probqos report`` prints and what an archival run would check in next
to EXPERIMENTS.md.

The returned report is byte-identical across runs with the same inputs —
that is the point of an archival artifact.  Wall-clock timing therefore
never enters the document: the elapsed line goes to ``elapsed_to`` (the
CLI passes stderr), not into the report.  The flow linter enforces this
(QOS201 tracks wall-clock taint into library return values).
"""

from __future__ import annotations

import time
from typing import List, Optional, TextIO

from repro.core.calibration import brier_score, calibration_gap
from repro.core.system import simulate
from repro.experiments.config import ExperimentSetup
from repro.experiments.figures import FigureCatalog
from repro.experiments.reporting import (
    format_figure,
    format_headline,
    format_pairs,
    format_table1,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import table_1, table_2

_RULE = "=" * 72


def generate_report(
    job_count: int = 1500,
    seed: int = 20050628,
    figures: Optional[List[int]] = None,
    catalog: Optional[FigureCatalog] = None,
    jobs: int = 1,
    cache=None,
    elapsed_to: Optional[TextIO] = None,
) -> str:
    """Regenerate tables, figures and audits; return the full text report.

    Args:
        job_count: Jobs per synthetic log (10,000 = paper size).
        seed: Master seed for all synthetic inputs.
        figures: Figure numbers to include (default: all twelve).
        catalog: Optional pre-warmed catalog (its memoised contexts are
            reused; ``job_count``/``seed`` are ignored for workloads it
            already holds).
        jobs: Worker processes for the sweep grids (1 = sequential).
        cache: Optional persistent :class:`~repro.experiments.cache
            .PointCache` making reruns of the whole report nearly free.
        elapsed_to: Where to write the human-facing "generated in Ns"
            line, or None to skip it.  Kept out of the returned report so
            identical inputs yield byte-identical artifacts.

    Returns:
        The report as one string (stable across reruns).
    """
    started = time.time()  # qoslint: disable=QOS102 -- report progress timing: written to elapsed_to only, never into the artifact
    if catalog is None:
        catalog = FigureCatalog(
            sdsc=ExperimentContext.prepare(
                ExperimentSetup(workload="sdsc", job_count=job_count, seed=seed),
                jobs=jobs,
                cache=cache,
            ),
            nasa=ExperimentContext.prepare(
                ExperimentSetup(workload="nasa", job_count=job_count, seed=seed),
                jobs=jobs,
                cache=cache,
            ),
        )
    figure_ids = figures if figures is not None else list(range(1, 13))

    sections: List[str] = []
    sections.append(_RULE)
    sections.append(
        "probqos evaluation report — Probabilistic QoS Guarantees for "
        "Supercomputing Systems (DSN 2005)"
    )
    sections.append(f"jobs per log: {job_count}   seed: {seed}")
    sections.append(_RULE)

    sections.append(format_table1(table_1(seed=seed, job_count=job_count)))
    sections.append("")
    sections.append(format_pairs("Table 2: Simulation parameters", table_2()))

    for figure_id in figure_ids:
        sections.append("")
        sections.append(format_figure(catalog.figure(figure_id)))

    sections.append("")
    sections.append(format_headline(catalog.headline_comparison("sdsc")))

    # Promise honesty at the endpoints.
    ctx = catalog.context("sdsc")
    sections.append("")
    sections.append("Promise honesty (work-weighted |promised - kept|, Brier):")
    for accuracy in (0.0, 1.0):
        result = simulate(ctx.config(accuracy, 0.5), ctx.log, ctx.failures)
        gap = calibration_gap(result.outcomes)
        score = brier_score(result.outcomes)
        sections.append(
            f"  a={accuracy:3.1f}: gap={gap:.4f}  brier={score:.4f}"
        )

    sections.append(_RULE)
    if elapsed_to is not None:
        elapsed = time.time() - started  # qoslint: disable=QOS102 -- report progress timing: written to elapsed_to only, never into the artifact
        elapsed_to.write(f"(report generated in {elapsed:.1f}s)\n")
    return "\n".join(sections)
