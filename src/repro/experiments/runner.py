"""Experiment execution with memoised simulation points.

One figure needs dozens of ``(a, U)`` simulation points and several figures
share points (e.g. every "vs accuracy" figure uses the same 33-run grid).
:class:`ExperimentContext` prepares the workload and a failure trace long
enough to cover any makespan the sweep can produce, then memoises
:meth:`run_point` results, so regenerating all twelve figures costs one
simulation per distinct parameter combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.tracelog import TraceRecorder
from repro.core.metrics import SimulationMetrics
from repro.core.system import SimulationResult, SystemConfig, simulate
from repro.experiments.cache import PointCache
from repro.experiments.config import ExperimentSetup
from repro.failures.events import FailureTrace
from repro.failures.generator import FailureModelSpec, generate_failure_trace
from repro.obs.audit import GuaranteeAudit
from repro.obs.prof import Profiler
from repro.obs.registry import MetricsRegistry
from repro.workload.job import JobLog
from repro.workload.synthetic import log_by_name

#: One batched sweep point: ``(a, U)`` or ``(a, U, overrides)``.
Point = Union[Tuple[float, float], Tuple[float, float, Dict]]

#: Pessimistic utilization floor used to bound the worst-case makespan when
#: sizing the failure trace (a = 0 with heavy failure churn runs longest).
_WORST_CASE_UTILIZATION = 0.25

#: Safety factor on top of the worst-case makespan estimate.
_TRACE_MARGIN = 1.5


def estimate_horizon(log: JobLog, node_count: int) -> float:
    """Upper-bound the simulated makespan for failure-trace sizing.

    The makespan is at least the arrival span and at most roughly
    ``total work / (N * worst-case utilization)`` past it; the margin
    covers restart churn beyond even that.
    """
    stats = log.stats()
    tail = stats.total_work / (node_count * _WORST_CASE_UTILIZATION)
    return (stats.span + tail) * _TRACE_MARGIN


@dataclass
class ExperimentContext:
    """A prepared (workload, failure trace) pair with a result cache.

    Attributes:
        setup: The experiment environment description.
        log: The synthesized (or loaded) job log.
        failures: A failure trace covering the worst-case horizon.
        registry: Optional obs registry threaded into every simulation this
            context executes.  Counters then aggregate across the distinct
            (non-memoised) points a sweep runs — the "what did producing
            this figure actually do" view.
        jobs: Worker processes :meth:`run_points` fans cache misses out
            across (1 = fully sequential, the default and the byte-exact
            pre-parallel behaviour).
        cache: Optional persistent :class:`~repro.experiments.cache
            .PointCache` consulted before, and populated after, every
            simulated point.
        recorder: Optional trace recorder threaded into every simulation
            this context executes in-process (``--trace`` on batch
            commands).  Memo/cache hits skip simulation and therefore
            contribute no records; recorders do not cross process
            boundaries, so callers should keep ``jobs=1`` when tracing.
        audit: Optional :class:`~repro.obs.audit.GuaranteeAudit` threaded
            into every simulation this context executes in-process
            (``--audit`` on batch commands).  Same caveats as
            ``recorder``: cache hits contribute no promises and audits do
            not cross process boundaries — keep ``jobs=1`` when auditing.
        profiler: Optional :class:`~repro.obs.prof.Profiler` threaded into
            every simulation this context executes.  Unlike recorders and
            audits, profiles *do* cross process boundaries: pooled workers
            profile into private instances and the parent folds their
            snapshots with :meth:`~repro.obs.prof.Profiler.merge_snapshot`
            (the registry model).  Cache hits skip simulation and
            contribute no zones.
    """

    setup: ExperimentSetup
    log: JobLog
    failures: FailureTrace
    _cache: Dict[Tuple, SimulationMetrics] = field(default_factory=dict)
    registry: Optional[MetricsRegistry] = None
    jobs: int = 1
    cache: Optional[PointCache] = None
    recorder: Optional[TraceRecorder] = None
    audit: Optional[GuaranteeAudit] = None
    profiler: Optional[Profiler] = None

    @classmethod
    def prepare(
        cls,
        setup: ExperimentSetup,
        log: Optional[JobLog] = None,
        failures: Optional[FailureTrace] = None,
        registry: Optional[MetricsRegistry] = None,
        jobs: int = 1,
        cache: Optional[PointCache] = None,
        recorder: Optional[TraceRecorder] = None,
        audit: Optional[GuaranteeAudit] = None,
        profiler: Optional[Profiler] = None,
    ) -> "ExperimentContext":
        """Build the context, synthesising whatever is not supplied.

        Passing an explicit ``log`` (e.g. a parsed SWF archive trace) swaps
        the synthetic workload out of the entire harness.
        """
        if log is None:
            log = log_by_name(
                setup.workload, seed=setup.seed, job_count=setup.job_count
            )
        log = log.scaled_sizes(setup.node_count)
        if failures is None:
            duration = estimate_horizon(log, setup.node_count)
            failures = generate_failure_trace(
                duration,
                spec=FailureModelSpec(nodes=setup.node_count),
                seed=setup.seed,
            )
        return cls(
            setup=setup, log=log, failures=failures, registry=registry,
            jobs=jobs, cache=cache, recorder=recorder, audit=audit,
            profiler=profiler,
        )

    # ------------------------------------------------------------------
    # Simulation points
    # ------------------------------------------------------------------
    def config(self, accuracy: float, user_threshold: float, **overrides) -> SystemConfig:
        """The system configuration for one sweep point."""
        parameters = dict(
            node_count=self.setup.node_count,
            downtime=self.setup.downtime,
            checkpoint_overhead=self.setup.checkpoint_overhead,
            checkpoint_interval=self.setup.checkpoint_interval,
            accuracy=accuracy,
            user_threshold=user_threshold,
            seed=self.setup.seed,
        )
        parameters.update(overrides)
        return SystemConfig(**parameters)

    def run_point(
        self, accuracy: float, user_threshold: float, **overrides
    ) -> SimulationMetrics:
        """Simulate one ``(a, U)`` point (memoised).

        Keyword overrides (checkpoint policy, placement, topology, ...)
        participate in the cache key, so ablations coexist safely in one
        context.
        """
        key = (
            round(accuracy, 6),
            round(user_threshold, 6),
            tuple(sorted(overrides.items())),
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        config = self.config(accuracy, user_threshold, **overrides)
        if self.profiler is not None and self.profiler.enabled:
            with self.profiler.zone("experiments.runner.point"):
                result = simulate(
                    config, self.log, self.failures, registry=self.registry,
                    recorder=self.recorder, audit=self.audit,
                    profiler=self.profiler,
                )
        else:
            result = simulate(
                config, self.log, self.failures, registry=self.registry,
                recorder=self.recorder, audit=self.audit,
            )
        self._cache[key] = result.metrics
        return result.metrics

    def run_points(
        self,
        points: Sequence[Point],
        jobs: Optional[int] = None,
        cache: Optional[PointCache] = None,
        **overrides,
    ) -> List[SimulationMetrics]:
        """Resolve a batch of sweep points, in order (memoised).

        Each point is ``(a, U)`` or ``(a, U, per_point_overrides)``; the
        keyword ``overrides`` apply to every point (per-point entries
        win).  Resolution order per point: the in-memory memo, then the
        persistent cache, then simulation — misses fan out across
        ``jobs`` worker processes when ``jobs > 1``.  Results are
        identical to calling :meth:`run_point` sequentially regardless of
        worker count, completion order, or cache warmth; with ``jobs=1``
        and no cache the execution path *is* the sequential one.
        """
        from repro.experiments.parallel import PointSpec, run_specs

        jobs = self.jobs if jobs is None else jobs
        cache = self.cache if cache is None else cache

        keys = []
        specs = []
        for point in points:
            accuracy, user_threshold = point[0], point[1]
            merged = dict(overrides, **point[2]) if len(point) > 2 else overrides
            spec = PointSpec.create(
                self.setup, accuracy, user_threshold, merged
            )
            specs.append(spec)
            keys.append(spec.memo_key())

        results: List[Optional[SimulationMetrics]] = [
            self._cache.get(key) for key in keys
        ]
        todo = [i for i, metrics in enumerate(results) if metrics is None]
        if todo:
            computed = run_specs(
                [specs[i] for i in todo],
                jobs=jobs,
                cache=cache,
                registry=self.registry,
                contexts={self.setup: self},
                profiler=self.profiler,
            )
            for i, metrics in zip(todo, computed):
                self._cache[keys[i]] = metrics
                results[i] = metrics
        return results  # type: ignore[return-value]

    def run_instrumented(
        self,
        accuracy: float,
        user_threshold: float,
        registry: Optional[MetricsRegistry] = None,
        sample_interval: Optional[float] = None,
        recorder: Optional[TraceRecorder] = None,
        audit: Optional[GuaranteeAudit] = None,
        profiler: Optional[Profiler] = None,
        **overrides,
    ):
        """Simulate one point with live instrumentation (never memoised).

        Instrumented runs bypass the cache in both directions: a cached
        metrics object carries no counters or records, and the output of a
        fresh run must reflect exactly one simulation, not whichever point
        happened to run first.  Any of a metrics ``registry``, a trace
        ``recorder`` (e.g. a :class:`~repro.obs.trace.SpanBuilder`), or a
        guarantee ``audit`` may be attached.

        Returns:
            ``(result, sampler)`` — the full :class:`SimulationResult`
            (with ``.obs``/``.spans``/``.audit`` attached as applicable)
            and the system's sampler (None unless ``sample_interval`` was
            given with a live registry).
        """
        from repro.core.system import ProbabilisticQoSSystem

        config = self.config(accuracy, user_threshold, **overrides)
        system = ProbabilisticQoSSystem(
            config, self.log, self.failures,
            registry=registry, sample_interval=sample_interval,
            recorder=recorder, audit=audit, profiler=profiler,
        )
        return system.run(), system.sampler

    @property
    def cached_points(self) -> int:
        """Number of memoised simulation results."""
        return len(self._cache)
