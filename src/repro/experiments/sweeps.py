"""Parameter sweeps over prediction accuracy ``a`` and user threshold ``U``.

Thin, typed wrappers around :class:`~repro.experiments.runner
.ExperimentContext` that produce the (x, metric) series the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.metrics import SimulationMetrics
from repro.experiments.config import SWEEP_GRID
from repro.experiments.runner import ExperimentContext

#: Extractors for the paper's three metrics.
METRIC_EXTRACTORS: Dict[str, Callable[[SimulationMetrics], float]] = {
    "qos": lambda m: m.qos,
    "utilization": lambda m: m.utilization,
    "lost_work": lambda m: m.lost_work,
}


@dataclass(frozen=True)
class Series:
    """One plotted curve: a label and its (x, y) points."""

    label: str
    points: Tuple[Tuple[float, float], ...]

    @property
    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    @property
    def ys(self) -> List[float]:
        return [y for _, y in self.points]


def accuracy_sweep(
    ctx: ExperimentContext,
    metric: str,
    user_thresholds: Sequence[float],
    accuracies: Sequence[float] = tuple(SWEEP_GRID),
    **overrides,
) -> List[Series]:
    """``metric`` versus prediction accuracy, one series per ``U``.

    This is the engine behind Figures 1-6: for each highlighted user
    strategy, simulate every accuracy on the grid.  The whole grid is
    submitted as one :meth:`~repro.experiments.runner.ExperimentContext
    .run_points` batch, so a context configured with ``jobs > 1`` runs
    the misses in parallel.
    """
    extract = METRIC_EXTRACTORS[metric]
    grid = [(a, u) for u in user_thresholds for a in accuracies]
    metrics = ctx.run_points(grid, **overrides)
    series = []
    for row, u in enumerate(user_thresholds):
        offset = row * len(accuracies)
        points = tuple(
            (a, extract(metrics[offset + col]))
            for col, a in enumerate(accuracies)
        )
        series.append(Series(label=f"U={u:g}", points=points))
    return series


def user_sweep(
    ctx: ExperimentContext,
    metric: str,
    accuracy: float,
    user_thresholds: Sequence[float] = tuple(SWEEP_GRID),
    **overrides,
) -> Series:
    """``metric`` versus user threshold at fixed accuracy (Figures 7-12)."""
    extract = METRIC_EXTRACTORS[metric]
    metrics = ctx.run_points(
        [(accuracy, u) for u in user_thresholds], **overrides
    )
    points = tuple(
        (u, extract(m)) for u, m in zip(user_thresholds, metrics)
    )
    return Series(label=f"a={accuracy:g}", points=points)


def endpoint_comparison(
    ctx: ExperimentContext, user_threshold: float = 0.9, **overrides
) -> Dict[str, Tuple[float, float]]:
    """The headline no-prediction vs perfect-prediction comparison.

    Returns ``{metric: (value at a=0, value at a=1)}`` — the paper's "as
    much as 6% QoS/utilization improvement, ~9x lost-work reduction".
    """
    baseline, perfect = ctx.run_points(
        [(0.0, user_threshold), (1.0, user_threshold)], **overrides
    )
    return {
        name: (extract(baseline), extract(perfect))
        for name, extract in METRIC_EXTRACTORS.items()
    }
