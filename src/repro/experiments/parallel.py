"""Process-pool execution of independent simulation points.

The evaluation is embarrassingly parallel: every figure is a grid of
``(a, U)`` points, every replication multiplies the grid by seeds, and no
point depends on any other.  This module fans point *misses* (after the
in-memory memo and the on-disk :class:`~repro.experiments.cache.PointCache`
have been consulted) out across worker processes:

* :class:`PointSpec` is the picklable, hermetic description of one point —
  the full :class:`~repro.experiments.config.ExperimentSetup` plus the
  sweep coordinates and config overrides — from which a worker can rebuild
  the exact :class:`~repro.experiments.runner.ExperimentContext`
  (workload synthesis and failure-trace generation are deterministic in
  the setup's seed) and simulate without talking to the parent.
* :func:`run_specs` resolves a batch of specs in order: disk cache first,
  then a :class:`concurrent.futures.ProcessPoolExecutor` for the misses
  (``jobs > 1``) or the plain in-process path (``jobs == 1``, exactly the
  pre-parallel behaviour).  Results are returned in *submission* order
  regardless of worker count or completion order, so callers observe
  bit-identical output either way.

Workers cache their rebuilt contexts in a module global keyed by setup, so
one worker pays workload/trace preparation once per distinct setup, not
once per point.  On platforms that fork (Linux), the parent additionally
registers its own prepared contexts before spawning the pool, so workers
inherit them copy-on-write and usually rebuild nothing at all.

Observability: each worker runs its points against a fresh private
:class:`~repro.obs.registry.MetricsRegistry` and ships the final snapshot
back; the parent folds the snapshots into its registry with
:meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot` in submission
order.  Counter totals therefore match a sequential instrumented run up to
float summation order; cache hits (memo or disk) contribute no counters in
either mode.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import SimulationMetrics
from repro.experiments.cache import PointCache
from repro.experiments.config import ExperimentSetup
from repro.obs.prof import Profiler
from repro.obs.registry import MetricsRegistry

#: Precision at which sweep coordinates are considered the same point —
#: must match ``ExperimentContext.run_point``'s memo key rounding.
KEY_DECIMALS = 6


@dataclass(frozen=True)
class PointSpec:
    """Hermetic description of one simulation point.

    The spec carries the *exact* sweep coordinates it was created with
    (so a worker reproduces the caller's arithmetic to the bit) while its
    :meth:`canonical` form rounds them exactly like the in-memory memo
    key, so near-identical floats address one cache entry.
    """

    setup: ExperimentSetup
    accuracy: float
    user_threshold: float
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        setup: ExperimentSetup,
        accuracy: float,
        user_threshold: float,
        overrides: Optional[Dict[str, Any]] = None,
    ) -> "PointSpec":
        return cls(
            setup=setup,
            accuracy=accuracy,
            user_threshold=user_threshold,
            overrides=tuple(sorted((overrides or {}).items())),
        )

    def memo_key(self) -> Tuple:
        """The context-local memo key (see ``ExperimentContext.run_point``)."""
        return (
            round(self.accuracy, KEY_DECIMALS),
            round(self.user_threshold, KEY_DECIMALS),
            self.overrides,
        )

    def canonical(self) -> Dict[str, Any]:
        """A JSON-serialisable form stable across processes and sessions."""
        import dataclasses

        return {
            "setup": dataclasses.asdict(self.setup),
            "accuracy": round(self.accuracy, KEY_DECIMALS),
            "user_threshold": round(self.user_threshold, KEY_DECIMALS),
            "overrides": [[k, v] for k, v in self.overrides],
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process context store: one prepared (workload, failures) pair per
#: distinct setup.  In the parent it is pre-seeded by ``register_context``
#: so forked workers inherit prepared contexts copy-on-write.
_WORKER_CONTEXTS: Dict[ExperimentSetup, Any] = {}


def register_context(context: Any) -> None:
    """Make a prepared context inheritable by forked pool workers."""
    _WORKER_CONTEXTS.setdefault(context.setup, context)


def _worker_context(setup: ExperimentSetup):
    from repro.experiments.runner import ExperimentContext

    context = _WORKER_CONTEXTS.get(setup)
    if context is None:
        context = ExperimentContext.prepare(setup)
        _WORKER_CONTEXTS[setup] = context
    return context


def _run_spec_task(
    spec: PointSpec, instrument: bool, prof_bucket_width: Optional[float]
) -> Tuple[SimulationMetrics, Optional[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Simulate one spec hermetically inside a pool worker.

    Returns the metrics plus, when ``instrument`` is set, the worker-local
    registry snapshot, and, when ``prof_bucket_width`` is given, the
    worker-local profile snapshot — both for the parent to fold in.
    """
    from repro.core.system import simulate

    context = _worker_context(spec.setup)
    registry = MetricsRegistry() if instrument else None
    profiler = (
        Profiler(bucket_width=prof_bucket_width)
        if prof_bucket_width is not None
        else None
    )
    config = context.config(
        spec.accuracy, spec.user_threshold, **dict(spec.overrides)
    )
    if profiler is not None:
        # Same zone the in-process path opens in run_point, so folded
        # trees have the same shape regardless of jobs.
        with profiler.zone("experiments.runner.point"):
            result = simulate(
                config, context.log, context.failures, registry=registry,
                profiler=profiler,
            )
    else:
        result = simulate(
            config, context.log, context.failures, registry=registry
        )
    snapshot = registry.snapshot() if registry is not None else None
    prof_snapshot = profiler.snapshot() if profiler is not None else None
    return result.metrics, snapshot, prof_snapshot


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def run_specs(
    specs: Sequence[PointSpec],
    jobs: int = 1,
    cache: Optional[PointCache] = None,
    registry: Optional[MetricsRegistry] = None,
    contexts: Optional[Dict[ExperimentSetup, Any]] = None,
    profiler: Optional[Profiler] = None,
) -> List[SimulationMetrics]:
    """Resolve every spec to its metrics, in input order.

    Resolution per spec: the on-disk ``cache`` (if given), then one
    simulation — pooled across ``jobs`` worker processes when ``jobs > 1``
    and more than one distinct point misses, in-process otherwise.
    Duplicate specs (same canonical key) are simulated once.

    Args:
        specs: Points to resolve.
        jobs: Worker processes; 1 keeps everything in this process and is
            byte-identical to the pre-parallel sequential path.
        cache: Optional persistent cache consulted before, and populated
            after, every simulation.
        registry: Parent obs registry.  In-process runs thread it through
            the simulation directly; pooled runs fold per-worker snapshots
            into it in submission order.
        contexts: Optional mutable ``{setup: ExperimentContext}`` map for
            in-process execution; prepared contexts are reused and fresh
            ones are stored back for the caller (lazy construction).
        profiler: Parent profiler, handled exactly like ``registry``:
            in-process runs profile into it directly, pooled workers
            profile into private instances (same bucket width) and the
            parent folds their snapshots in submission order.
    """
    results: List[Optional[SimulationMetrics]] = [None] * len(specs)

    missing: List[int] = []
    for index, spec in enumerate(specs):
        cached = cache.get(spec) if cache is not None else None
        if cached is not None:
            results[index] = cached
        else:
            missing.append(index)

    # Deduplicate misses on the canonical key; first occurrence wins,
    # mirroring the in-memory memo's first-call-wins semantics.
    order: Dict[Tuple, List[int]] = {}
    unique: List[PointSpec] = []
    for index in missing:
        spec = specs[index]
        key = (spec.setup, spec.memo_key())
        slot = order.get(key)
        if slot is None:
            order[key] = [index]
            unique.append(spec)
        else:
            slot.append(index)

    if not unique:
        return results  # type: ignore[return-value]

    if jobs > 1 and len(unique) > 1:
        for context in (contexts or {}).values():
            register_context(context)  # inherited by forked workers
        computed = _run_pooled(unique, jobs, registry, profiler)
    else:
        computed = _run_local(unique, registry, contexts, profiler)

    for spec, metrics in zip(unique, computed):
        if cache is not None:
            cache.put(spec, metrics)
        for index in order[(spec.setup, spec.memo_key())]:
            results[index] = metrics
    return results  # type: ignore[return-value]


def _run_local(
    specs: Sequence[PointSpec],
    registry: Optional[MetricsRegistry],
    contexts: Optional[Dict[ExperimentSetup, Any]],
    profiler: Optional[Profiler],
) -> List[SimulationMetrics]:
    """The sequential path: run through (possibly shared) live contexts."""
    from repro.experiments.runner import ExperimentContext

    contexts = contexts if contexts is not None else {}
    computed = []
    for spec in specs:
        context = contexts.get(spec.setup)
        if context is None:
            context = ExperimentContext.prepare(
                spec.setup, registry=registry, profiler=profiler
            )
            contexts[spec.setup] = context
        computed.append(
            context.run_point(
                spec.accuracy, spec.user_threshold, **dict(spec.overrides)
            )
        )
    return computed


def _run_pooled(
    specs: Sequence[PointSpec],
    jobs: int,
    registry: Optional[MetricsRegistry],
    profiler: Optional[Profiler],
) -> List[SimulationMetrics]:
    """Fan specs out across a process pool; gather in submission order."""
    instrument = registry is not None and registry.enabled
    profile = profiler is not None and profiler.enabled
    prof_bucket_width = profiler.bucket_width if profile else None
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_spec_task, spec, instrument, prof_bucket_width)
            for spec in specs
        ]
        outcomes = [future.result() for future in futures]
    computed = []
    for metrics, snapshot, prof_snapshot in outcomes:
        computed.append(metrics)
        if instrument and snapshot is not None:
            registry.merge_snapshot(snapshot)
        if profile and prof_snapshot is not None:
            profiler.merge_snapshot(prof_snapshot)
    return computed
