"""Persistent, content-addressed cache of simulation-point results.

One ``(setup, a, U, overrides)`` point is a pure function of its spec —
the simulator is fully deterministic — so its
:class:`~repro.core.metrics.SimulationMetrics` can be stored on disk and
reused across CLI invocations: regenerating a figure, table, or
replication against a warm cache costs file reads instead of simulations.

Keying and invalidation rules (see DESIGN.md "Parallel execution &
caching"):

* The key is the SHA-256 of the canonical JSON form of the
  :class:`~repro.experiments.parallel.PointSpec` — every
  :class:`~repro.experiments.config.ExperimentSetup` field, the sweep
  coordinates rounded exactly as the in-memory memo rounds them, and the
  sorted override items — prefixed with :data:`CACHE_FORMAT_VERSION`.
* Bumping :data:`CACHE_FORMAT_VERSION` (whenever simulation semantics or
  the metrics schema change) orphans every old entry; stale files are
  never misread, merely ignored.
* Values are exact: floats round-trip bit-identically through
  ``json`` (``repr`` shortest-round-trip), so a cache hit equals the
  fresh simulation to the last bit.

Corrupt or truncated entries (interrupted writes from a previous crash,
concurrent CLI invocations) are treated as misses and overwritten;
writes go through a temp file + ``os.replace`` so readers never observe
a partial entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core.metrics import SimulationMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.parallel import PointSpec

#: Bump whenever the simulator's observable behaviour or the
#: SimulationMetrics schema changes; old entries become unreachable.
CACHE_FORMAT_VERSION = 1

#: Fan the flat key space out over 256 subdirectories so huge sweeps do
#: not produce one directory with tens of thousands of entries.
_SHARD_CHARS = 2


def metrics_to_dict(metrics: SimulationMetrics) -> Dict[str, Any]:
    """A JSON-serialisable form of one metrics record."""
    return dataclasses.asdict(metrics)


def metrics_from_dict(data: Dict[str, Any]) -> SimulationMetrics:
    """Inverse of :func:`metrics_to_dict` (raises on schema drift)."""
    return SimulationMetrics(**data)


def spec_key(spec: "PointSpec") -> str:
    """The stable content hash addressing one simulation point."""
    canonical = {"format": CACHE_FORMAT_VERSION, "spec": spec.canonical()}
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PointCache:
    """On-disk store mapping point specs to their simulation metrics.

    Args:
        root: Cache directory (created on first write).  Safe to share
            between concurrent processes: writes are atomic renames and
            the worst case for a racing miss is one redundant simulation.

    Attributes:
        hits / misses / writes: Access statistics since construction,
            surfaced by the CLI's ``point cache:`` summary line and the
            perf harness' ``figures_grid`` scenario.
    """

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:_SHARD_CHARS] / f"{key}.json"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, spec: "PointSpec") -> Optional[SimulationMetrics]:
        """The cached metrics for ``spec``, or None on a miss."""
        path = self._path(spec_key(spec))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            metrics = metrics_from_dict(entry["metrics"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt/truncated/stale-schema entry: a miss, not an error.
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def put(self, spec: "PointSpec", metrics: SimulationMetrics) -> None:
        """Store one result (atomic; last writer wins)."""
        key = spec_key(spec)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "spec": spec.canonical(),
            "metrics": metrics_to_dict(metrics),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)
        self.writes += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob(f"*/*.json"))

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/write counts since this handle was created."""
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    def summary(self) -> str:
        """The one-line summary the CLI prints after a cached run."""
        looked_up = self.hits + self.misses
        rate = (self.hits / looked_up * 100.0) if looked_up else 0.0
        return (
            f"point cache: {self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes (hit rate {rate:.1f}%) at {self.root}"
        )
