"""Regeneration of the paper's tables.

* **Table 1** — job-log characteristics: average size (nodes), average
  runtime (s) and maximum runtime (h) for the NASA and SDSC logs.
* **Table 2** — simulation parameters: N, C, I, the a/U sweep ranges and
  the node downtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.config import (
    CHECKPOINT_INTERVAL,
    CHECKPOINT_OVERHEAD,
    CLUSTER_NODES,
    NODE_DOWNTIME,
)
from repro.workload.job import JobLog
from repro.workload.synthetic import log_by_name

#: The paper's Table 1 values, for side-by-side comparison.
PAPER_TABLE1 = {
    "nasa": {"avg_nodes": 6.3, "avg_runtime": 381.0, "max_runtime_hours": 12.0},
    "sdsc": {"avg_nodes": 9.7, "avg_runtime": 7722.0, "max_runtime_hours": 132.0},
}


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: a log's aggregate characteristics."""

    log_name: str
    job_count: int
    avg_nodes: float
    avg_runtime: float
    max_runtime_hours: float
    paper_avg_nodes: Optional[float]
    paper_avg_runtime: Optional[float]
    paper_max_runtime_hours: Optional[float]


def table_1(
    logs: Optional[List[JobLog]] = None,
    seed: Optional[int] = None,
    job_count: Optional[int] = None,
) -> List[Table1Row]:
    """Compute Table 1 for the given (or bundled synthetic) logs.

    Tables are pure workload statistics — no simulation points run — so
    the ``probqos table`` subcommand accepts ``--jobs``/``--cache-dir``
    only for batch-pipeline uniformity; neither affects this function.
    """
    if logs is None:
        logs = [
            log_by_name("nasa", seed=seed, job_count=job_count),
            log_by_name("sdsc", seed=seed, job_count=job_count),
        ]
    rows = []
    for log in logs:
        stats = log.stats()
        reference = PAPER_TABLE1.get(log.name.split("[")[0], {})
        rows.append(
            Table1Row(
                log_name=log.name.upper(),
                job_count=stats.job_count,
                avg_nodes=stats.mean_size,
                avg_runtime=stats.mean_runtime,
                max_runtime_hours=stats.max_runtime_hours,
                paper_avg_nodes=reference.get("avg_nodes"),
                paper_avg_runtime=reference.get("avg_runtime"),
                paper_max_runtime_hours=reference.get("max_runtime_hours"),
            )
        )
    return rows


def table_2() -> List[Tuple[str, str]]:
    """The simulation-parameter table as (name, value) pairs."""
    return [
        ("N (nodes)", f"{CLUSTER_NODES}"),
        ("C (s)", f"{CHECKPOINT_OVERHEAD:g}"),
        ("I (s)", f"{CHECKPOINT_INTERVAL:g}"),
        ("a", "[0, 1]"),
        ("U", "[0, 1]"),
        ("downtime (s)", f"{NODE_DOWNTIME:g}"),
    ]
