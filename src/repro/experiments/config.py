"""Experiment configuration (the paper's Table 2 and environment knobs).

The evaluation fixes the system parameters of Table 2 — ``N = 128`` nodes,
``C = 720 s``, ``I = 3600 s``, node downtime 120 s — and sweeps the
prediction accuracy ``a`` and the user risk threshold ``U`` from 0 to 1 in
steps of 0.1, over the NASA and SDSC job logs with AIX-cluster failure
characteristics.  This module pins those constants and resolves the
environment-variable overrides the benchmark harness uses to trade fidelity
for speed.

Environment variables:

* ``REPRO_FULL=1`` — run the paper-size experiments (10,000-job logs).
* ``REPRO_BENCH_JOBS=<n>`` — explicit job-count override for benches.
* ``REPRO_SEED=<n>`` — master seed override.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.rng import DEFAULT_SEED

#: Table 2 constants.
CLUSTER_NODES = 128
CHECKPOINT_OVERHEAD = 720.0
CHECKPOINT_INTERVAL = 3600.0
NODE_DOWNTIME = 120.0

#: The paper's sweep grid: 0 to 1 in increments of 0.1.
SWEEP_GRID: List[float] = [round(0.1 * k, 1) for k in range(11)]

#: The three user strategies highlighted in Figures 1-6.
HIGHLIGHT_USERS: List[float] = [0.1, 0.5, 0.9]

#: Paper-size workload (jobs per log).
FULL_JOB_COUNT = 10_000

#: Reduced size used by default in benchmarks (keeps a full figure sweep in
#: tens of seconds while preserving every qualitative shape).
BENCH_JOB_COUNT = 1_500


@dataclass(frozen=True)
class ExperimentSetup:
    """Reproducible description of one experiment environment.

    Attributes:
        workload: ``"nasa"`` or ``"sdsc"``.
        job_count: Jobs in the replayed log.
        seed: Master seed for workload/failure/detectability substreams.
        node_count: Cluster width N.
        checkpoint_overhead: C, seconds.
        checkpoint_interval: I, seconds.
        downtime: Node repair time, seconds.
    """

    workload: str
    job_count: int = FULL_JOB_COUNT
    seed: int = DEFAULT_SEED
    node_count: int = CLUSTER_NODES
    checkpoint_overhead: float = CHECKPOINT_OVERHEAD
    checkpoint_interval: float = CHECKPOINT_INTERVAL
    downtime: float = NODE_DOWNTIME


def bench_job_count(default: Optional[int] = None) -> int:
    """Job count for benchmark runs, honouring the environment overrides."""
    if os.environ.get("REPRO_FULL", "") == "1":  # qoslint: disable=QOS109 -- documented bench knob (module docstring); affects harness sizing only, never sim results at a given size
        return FULL_JOB_COUNT
    explicit = os.environ.get("REPRO_BENCH_JOBS")  # qoslint: disable=QOS109 -- documented bench knob (module docstring); affects harness sizing only
    if explicit:
        return max(1, int(explicit))
    return default if default is not None else BENCH_JOB_COUNT


def bench_seed(default: int = DEFAULT_SEED) -> int:
    """Seed for benchmark runs, honouring ``REPRO_SEED``."""
    explicit = os.environ.get("REPRO_SEED")  # qoslint: disable=QOS109 -- documented bench knob (module docstring); explicit seed override for archival runs
    return int(explicit) if explicit else default


def bench_setup(workload: str) -> ExperimentSetup:
    """The benchmark harness' setup for one of the paper's logs."""
    return ExperimentSetup(
        workload=workload, job_count=bench_job_count(), seed=bench_seed()
    )
